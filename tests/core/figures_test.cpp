// Reproductions of the paper's worked examples: the Fig. 2 predicate
// learning run on the b04 fragment and the Fig. 4 structural decision
// trace. These tests assert the *published* outcomes (which clauses are
// learned; which values/intervals the search settles on).
#include <gtest/gtest.h>

#include "core/deduce.h"
#include "core/hdpll.h"
#include "core/predicate_learning.h"

namespace rtlsat::core {
namespace {

using ir::Circuit;
using ir::NetId;

// The Fig. 2(a) fragment (from ITC'99 b04): two AND-combined predicate
// pairs feeding OR gates that select two data-path muxes.
struct Figure2Circuit {
  Circuit c{"fig2"};
  NetId w0 = c.add_input("w0", 3);
  NetId w1 = c.add_input("w1", 3);
  NetId w2 = c.add_input("w2", 3);
  NetId w3 = c.add_input("w3", 3);
  NetId w4 = c.add_input("w4", 3);
  NetId b0 = c.add_input("b0", 1);
  // b1 ⊨ w1 ≥ 1 and b2 ⊨ w1 > 0 — semantically equal but structurally
  // distinct comparators, as in the synthesized b04 netlist where the
  // fragment's duplicated comparator logic is what makes the correlation
  // worth learning. Either one false pins w1 = ⟨0⟩.
  NetId b1 = c.add_le(c.add_const(1, 3), w1);
  NetId b2 = c.add_lt(c.add_const(0, 3), w1);
  // b3 ⊨ w2 ≥ 1, b4 ⊨ w2 ≤ 1: together they pin w2 = ⟨1⟩.
  NetId b3 = c.add_le(c.add_const(1, 3), w2);
  NetId b4 = c.add_le(w2, c.add_const(1, 3));
  NetId b5 = c.add_and(b1, b0);
  NetId b6 = c.add_and(b2, b0);
  NetId b7 = c.add_and(b3, b4);
  NetId b8 = c.add_or(b5, b7);
  NetId b9 = c.add_or(b6, b7);
  // The muxes make b8/b9 data-path predicates (selects).
  NetId w5 = c.add_mux(b8, w3, w0);
  NetId w6 = c.add_mux(b9, w4, w0);
};

bool has_binary(const ClauseDb& db, NetId x, bool xv, NetId y, bool yv) {
  for (const HybridClause& c : db.all()) {
    if (c.lits.size() != 2) continue;
    bool found_x = false, found_y = false;
    for (const HybridLit& l : c.lits) {
      if (l.is_bool && l.net == x && (l.interval.lo() == 1) == xv)
        found_x = true;
      if (l.is_bool && l.net == y && (l.interval.lo() == 1) == yv)
        found_y = true;
    }
    if (found_x && found_y) return true;
  }
  return false;
}

TEST(Figure2, PredicateLearningLearnsThePaperClauses) {
  Figure2Circuit f;
  prop::Engine engine(f.c);
  ClauseDb db(f.c);
  std::size_t cursor = 0;
  const auto report = run_predicate_learning(engine, db, &cursor, {});
  EXPECT_FALSE(report.proven_unsat);
  EXPECT_GE(report.relations_learned, 4);

  // Step 1: b5 = 0 ⟹ b6 = 0, learned as (b5 ∨ b6̄).
  EXPECT_TRUE(has_binary(db, f.b5, true, f.b6, false));
  // Step 2: b6 = 0 ⟹ b5 = 0, learned as (b6 ∨ b5̄).
  EXPECT_TRUE(has_binary(db, f.b6, true, f.b5, false));
  // Step 3: b8 = 1 ⟹ b9 = 1, learned as (b8̄ ∨ b9).
  EXPECT_TRUE(has_binary(db, f.b8, false, f.b9, true));
  // Step 4: b9 = 1 ⟹ b8 = 1, learned as (b9̄ ∨ b8).
  EXPECT_TRUE(has_binary(db, f.b9, false, f.b8, true));
}

TEST(Figure2, ProbeImplicationsMatchPaperStep1) {
  // Under b5 = 0 with the way b1 = 0: w1 collapses to ⟨0⟩ and b2, b6
  // follow — the first row of Fig. 2(b).
  Figure2Circuit f;
  prop::Engine engine(f.c);
  ASSERT_TRUE(engine.propagate());
  engine.push_level();
  ASSERT_TRUE(engine.narrow(f.b1, Interval::point(0),
                            prop::ReasonKind::kDecision));
  ASSERT_TRUE(engine.propagate());
  EXPECT_EQ(engine.interval(f.w1), Interval::point(0));
  EXPECT_EQ(engine.bool_value(f.b2), 0);
  EXPECT_EQ(engine.bool_value(f.b6), 0);
}

TEST(Figure2, ProbeImplicationsMatchPaperStep3) {
  // Under b8 = 1 with the way b5 = 1: w1 ∈ ⟨1,7⟩ and b0 = 1; with the
  // learned clause (b6 ∨ b5̄) present, also b6 = 1 and b9 = 1.
  Figure2Circuit f;
  prop::Engine engine(f.c);
  ClauseDb db(f.c);
  std::size_t cursor = 0;
  db.add({{HybridLit::boolean(f.b5, false), HybridLit::boolean(f.b6, true)},
          true, HybridClause::Origin::kPredicateLearning});
  ASSERT_TRUE(deduce(engine, db, &cursor));
  engine.push_level();
  ASSERT_TRUE(engine.narrow(f.b5, Interval::point(1),
                            prop::ReasonKind::kDecision));
  ASSERT_TRUE(deduce(engine, db, &cursor));
  EXPECT_EQ(engine.interval(f.w1), Interval(1, 7));
  EXPECT_EQ(engine.bool_value(f.b0), 1);
  EXPECT_EQ(engine.bool_value(f.b6), 1);
  EXPECT_EQ(engine.bool_value(f.b9), 1);
}

// Fig. 4: justification walks the mux chain backwards, pinning w3 and w1
// to ⟨5⟩ and choosing the select values b1 = 0, b2 = 0.
struct Figure4Circuit {
  Circuit c{"fig4"};
  NetId w0 = c.add_input("w0", 3);
  NetId w1 = c.add_input("w1", 3);
  NetId a1 = c.add_input("a1", 3);
  NetId a2 = c.add_input("a2", 3);
  NetId x0 = c.add_input("x0", 1);
  // w2 ∈ ⟨6,7⟩ by construction (high bits pinned to 11).
  NetId w2 = c.add_concat(c.add_const(3, 2), c.add_zext(x0, 1));
  // Comparator-driven selects, as in the figure's "Comp" boxes.
  NetId b1 = c.add_lt(a1, a2);
  NetId b2 = c.add_lt(a2, a1);
  NetId w3 = c.add_mux(b2, w2, w1);
  NetId w4 = c.add_mux(b1, w2, w3);
  // Proposition: b7 ⊨ (w4 ≡ 5).
  NetId b7 = c.add_eq(w4, c.add_const(5, 3));
};

TEST(Figure4, StructuralSearchReachesThePaperAssignment) {
  Figure4Circuit f;
  HdpllOptions options;
  options.structural_decisions = true;
  HdpllSolver solver(f.c, options);
  solver.assume_bool(f.b7, true);
  const SolveResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kSat);
  // The published end state: both selects at 0 and the data chain pinned
  // to ⟨5⟩ down to w1.
  EXPECT_EQ(solver.engine().bool_value(f.b1), 0);
  EXPECT_EQ(solver.engine().bool_value(f.b2), 0);
  EXPECT_EQ(solver.engine().interval(f.w4), Interval::point(5));
  EXPECT_EQ(solver.engine().interval(f.w3), Interval::point(5));
  EXPECT_EQ(solver.engine().interval(f.w1), Interval::point(5));
  // And the model really does set w1 = 5.
  EXPECT_EQ(result.input_model.at(f.w1), 5);
}

TEST(Figure4, DeadBranchSelectsAreImpliedNotDecided) {
  // Our interval propagation performs the figure's w4 ∩ w2 = ∅ analysis as
  // an implication (rule_mux's dead-branch case), so the selects resolve
  // without consuming decisions.
  Figure4Circuit f;
  HdpllOptions options;
  options.structural_decisions = true;
  HdpllSolver solver(f.c, options);
  solver.assume_bool(f.b7, true);
  const SolveResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kSat);
  // Only the free Boolean x0 can require a decision.
  EXPECT_LE(solver.stats().get("hdpll.decisions"), 2);
}

TEST(Figure4, JConflictLearnsFromBlockedJustification)  {
  // §4.3's variant: with b2 = 1 pre-asserted, w3 = ⟨6,7⟩ and the
  // justification of w4 = ⟨5⟩ dead-ends; the solver must refute.
  Figure4Circuit f;
  HdpllOptions options;
  options.structural_decisions = true;
  HdpllSolver solver(f.c, options);
  solver.assume_bool(f.b7, true);
  solver.assume_bool(f.b2, true);
  const SolveResult result = solver.solve();
  EXPECT_EQ(result.status, SolveStatus::kUnsat);
}

}  // namespace
}  // namespace rtlsat::core
