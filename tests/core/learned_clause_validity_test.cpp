// Property test on the learning machinery itself: every clause the solver
// learns — by conflict analysis, predicate learning, or justification —
// must be implied by the circuit plus the level-0 assumptions. On small
// circuits we check this by brute force: enumerate all input assignments,
// keep those satisfying the assumptions, and evaluate every learnt clause.
// This is the test that catches subtly-wrong implication-graph cuts.
#include <gtest/gtest.h>

#include "core/hdpll.h"
#include "util/rng.h"

namespace rtlsat::core {
namespace {

using ir::Circuit;
using ir::NetId;

Circuit small_random_circuit(Rng& rng, NetId* goal) {
  Circuit c("rand");
  std::vector<NetId> words;
  std::vector<NetId> bools;
  words.push_back(c.add_input("w0", 3));
  words.push_back(c.add_input("w1", 3));
  bools.push_back(c.add_input("c0", 1));
  bools.push_back(c.add_input("c1", 1));
  words.push_back(c.add_const(rng.range(0, 7), 3));
  auto word = [&]() { return words[rng.below(words.size())]; };
  auto boolean = [&]() { return bools[rng.below(bools.size())]; };
  for (int step = 0; step < 14; ++step) {
    switch (rng.below(9)) {
      case 0: words.push_back(c.add_add(word(), word())); break;
      case 1: words.push_back(c.add_sub(word(), word())); break;
      case 2: words.push_back(c.add_mux(boolean(), word(), word())); break;
      case 3: bools.push_back(c.add_lt(word(), word())); break;
      case 4: bools.push_back(c.add_le(word(), word())); break;
      case 5: bools.push_back(c.add_and(boolean(), boolean())); break;
      case 6: bools.push_back(c.add_or(boolean(), boolean())); break;
      case 7: bools.push_back(c.add_not(boolean())); break;
      case 8: bools.push_back(c.add_xor(boolean(), boolean())); break;
    }
  }
  std::vector<NetId> conj;
  for (int i = 0; i < 3; ++i) {
    const NetId b = boolean();
    conj.push_back(rng.flip() ? b : c.add_not(b));
  }
  *goal = c.add_and(std::move(conj));
  return c;
}

bool lit_holds(const HybridLit& l, const std::vector<std::int64_t>& values) {
  const std::int64_t v = values[l.net];
  const bool inside = l.interval.contains(v);
  return l.positive ? inside : !inside;
}

class LearnedClauseValidity : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LearnedClauseValidity, EveryLearntClauseIsImplied) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 10; ++iter) {
    NetId goal = ir::kNoNet;
    const Circuit c = small_random_circuit(rng, &goal);
    if (c.node(goal).op == ir::Op::kConst) continue;

    // Configurations that exercise all three clause origins.
    for (int config = 0; config < 3; ++config) {
      HdpllOptions options;
      options.structural_decisions = config >= 1;
      options.predicate_learning = config >= 2;
      options.analyze.hybrid_word_literals = config != 1;
      options.timeout_seconds = 20;
      HdpllSolver solver(c, options);
      solver.assume_bool(goal, true);
      const SolveResult result = solver.solve();
      ASSERT_NE(result.status, SolveStatus::kTimeout);
      if (solver.clauses().size() == 0) continue;

      // Enumerate all input assignments (2 word inputs × 3 bits + 2 bools).
      std::vector<NetId> inputs = c.inputs();
      std::vector<std::int64_t> limits;
      for (const NetId in : inputs) limits.push_back(c.domain(in).hi() + 1);
      std::vector<std::int64_t> assignment(inputs.size(), 0);
      bool carry = false;
      while (!carry) {
        std::unordered_map<NetId, std::int64_t> input_map;
        for (std::size_t i = 0; i < inputs.size(); ++i)
          input_map[inputs[i]] = assignment[i];
        const auto values = c.evaluate(input_map);
        if (values[goal] == 1) {
          // Under the assumption, every learnt clause must hold.
          for (const HybridClause& clause : solver.clauses().all()) {
            bool holds = false;
            for (const HybridLit& l : clause.lits)
              holds = holds || lit_holds(l, values);
            ASSERT_TRUE(holds)
                << "seed " << GetParam() << " iter " << iter << " cfg "
                << config << " invalid clause " << clause.to_string(c);
          }
        }
        // Increment the mixed-radix assignment vector.
        carry = true;
        for (std::size_t i = 0; i < assignment.size() && carry; ++i) {
          if (++assignment[i] < limits[i]) {
            carry = false;
          } else {
            assignment[i] = 0;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearnedClauseValidity,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

}  // namespace
}  // namespace rtlsat::core
