#include "core/hybrid_clause.h"

#include <gtest/gtest.h>

namespace rtlsat::core {
namespace {

TEST(HybridLit, BooleanEvaluation) {
  const HybridLit l = HybridLit::boolean(3, true);  // net3 = 1
  EXPECT_EQ(l.value(Interval::point(1)), LitValue::kTrue);
  EXPECT_EQ(l.value(Interval::point(0)), LitValue::kFalse);
  EXPECT_EQ(l.value(Interval::booleans()), LitValue::kUnknown);
}

TEST(HybridLit, PositiveWordLiteral) {
  // {w, ⟨3,7⟩}: true when w ⊆ ⟨3,7⟩, false when disjoint (§2.1).
  const HybridLit l = HybridLit::word_in(5, Interval(3, 7));
  EXPECT_EQ(l.value(Interval(4, 6)), LitValue::kTrue);
  EXPECT_EQ(l.value(Interval(8, 12)), LitValue::kFalse);
  EXPECT_EQ(l.value(Interval(5, 9)), LitValue::kUnknown);
}

TEST(HybridLit, NegativeWordLiteral) {
  // {w, ⟨3,7⟩}̄: w takes values in D\⟨3,7⟩.
  const HybridLit l = HybridLit::word_not_in(5, Interval(3, 7));
  EXPECT_EQ(l.value(Interval(8, 12)), LitValue::kTrue);
  EXPECT_EQ(l.value(Interval(4, 6)), LitValue::kFalse);
  EXPECT_EQ(l.value(Interval(5, 9)), LitValue::kUnknown);
}

TEST(HybridLit, ImpliedIntervalPositive) {
  const HybridLit l = HybridLit::word_in(5, Interval(3, 7));
  EXPECT_EQ(l.implied_interval(Interval(0, 5)), Interval(3, 5));
}

TEST(HybridLit, ImpliedIntervalNegativeTrimsEnd) {
  const HybridLit l = HybridLit::word_not_in(5, Interval(0, 3));
  EXPECT_EQ(l.implied_interval(Interval(0, 10)), Interval(4, 10));
}

TEST(HybridLit, ImpliedIntervalNegativeMidHoleIsNoOp) {
  const HybridLit l = HybridLit::word_not_in(5, Interval(4, 6));
  // The complement is not one interval: sound no-op.
  EXPECT_EQ(l.implied_interval(Interval(0, 10)), Interval(0, 10));
}

TEST(HybridClause, ToStringReadable) {
  ir::Circuit c("t");
  const ir::NetId b = c.add_input("b5", 1);
  const ir::NetId w = c.add_input("w1", 3);
  HybridClause clause;
  clause.lits = {HybridLit::boolean(b, false),
                 HybridLit::word_in(w, Interval(1, 7))};
  const std::string text = clause.to_string(c);
  EXPECT_NE(text.find("!b5"), std::string::npos);
  EXPECT_NE(text.find("w1 in <1,7>"), std::string::npos);
}

}  // namespace
}  // namespace rtlsat::core
