// Incremental solve(assumptions) on the hybrid solver: per-call (net,
// interval) assumptions are retracted between calls while learned clauses,
// predicate relations, activities, and level-0 facts persist. Every test
// runs under all four paper configurations (including chronological mode,
// whose flip search must never flip an assumption pseudo-decision).
#include <gtest/gtest.h>

#include "core/hdpll.h"

namespace rtlsat::core {
namespace {

using ir::Circuit;
using ir::NetId;

std::vector<HdpllOptions> all_configs() {
  HdpllOptions base;
  HdpllOptions s = base;
  s.structural_decisions = true;
  HdpllOptions sp = s;
  sp.predicate_learning = true;
  HdpllOptions chrono = base;
  chrono.conflict_learning = false;
  return {base, s, sp, chrono};
}

class IncrementalAllConfigs : public ::testing::TestWithParam<int> {
 protected:
  HdpllOptions options() const { return all_configs()[GetParam()]; }
};

// a + b == 100 ∧ a < 20, with p = (x < y) and q = (y < x) as retractable
// propositions on a second pair of inputs.
struct Instance {
  Circuit c{"inc"};
  NetId a, b, x, y, goal, p, q;
  Instance() {
    a = c.add_input("a", 8);
    b = c.add_input("b", 8);
    x = c.add_input("x", 8);
    y = c.add_input("y", 8);
    goal = c.add_and(c.add_eq(c.add_add(a, b), c.add_const(100, 8)),
                     c.add_lt(a, c.add_const(20, 8)));
    p = c.add_lt(x, y);
    q = c.add_lt(y, x);
  }
};

TEST_P(IncrementalAllConfigs, BackToBackAssumptionCallsAreIndependent) {
  Instance inst;
  HdpllSolver solver(inst.c, options());
  solver.assume_bool(inst.goal, true);

  // Call 1: additionally force p. Call 2 retracts p and forces q — the two
  // are individually satisfiable but jointly contradictory, so any leak of
  // call 1's assumption into call 2 turns it kUnsat.
  SolveResult r1 = solver.solve({{inst.p, Interval::point(1)}});
  ASSERT_EQ(r1.status, SolveStatus::kSat);
  auto v1 = inst.c.evaluate(r1.input_model);
  EXPECT_EQ(v1[inst.goal], 1);
  EXPECT_LT(v1[inst.x], v1[inst.y]);

  SolveResult r2 = solver.solve({{inst.q, Interval::point(1)}});
  ASSERT_EQ(r2.status, SolveStatus::kSat);
  auto v2 = inst.c.evaluate(r2.input_model);
  EXPECT_EQ(v2[inst.goal], 1);
  EXPECT_LT(v2[inst.y], v2[inst.x]);
}

TEST_P(IncrementalAllConfigs, AssumptionUnsatDoesNotPoisonSolver) {
  Instance inst;
  HdpllSolver solver(inst.c, options());
  solver.assume_bool(inst.goal, true);

  // p ∧ q is x < y ∧ y < x: unsatisfiable, but only under these
  // assumptions.
  SolveResult r1 = solver.solve(
      {{inst.p, Interval::point(1)}, {inst.q, Interval::point(1)}});
  EXPECT_EQ(r1.status, SolveStatus::kUnsat);
  EXPECT_FALSE(solver.root_unsat());

  SolveResult r2 = solver.solve({{inst.p, Interval::point(1)}});
  ASSERT_EQ(r2.status, SolveStatus::kSat);
  EXPECT_EQ(inst.c.evaluate(r2.input_model)[inst.goal], 1);

  SolveResult r3 = solver.solve();
  EXPECT_EQ(r3.status, SolveStatus::kSat);
}

TEST_P(IncrementalAllConfigs, WordIntervalAssumptions) {
  Instance inst;
  HdpllSolver solver(inst.c, options());
  solver.assume_bool(inst.goal, true);

  // a ∈ [5, 10] is compatible with a < 20; the witness must respect it.
  SolveResult r1 = solver.solve({{inst.a, Interval(5, 10)}});
  ASSERT_EQ(r1.status, SolveStatus::kSat);
  const auto v1 = inst.c.evaluate(r1.input_model);
  EXPECT_GE(v1[inst.a], 5);
  EXPECT_LE(v1[inst.a], 10);
  EXPECT_EQ(v1[inst.goal], 1);

  // a ∈ [200, 250] contradicts the persistent a < 20 — per-call kUnsat.
  SolveResult r2 = solver.solve({{inst.a, Interval(200, 250)}});
  EXPECT_EQ(r2.status, SolveStatus::kUnsat);
  EXPECT_FALSE(solver.root_unsat());

  EXPECT_EQ(solver.solve().status, SolveStatus::kSat);
}

TEST_P(IncrementalAllConfigs, RootUnsatSticksAcrossCalls) {
  Circuit c("root_unsat");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId goal = c.add_and(c.add_lt(x, y), c.add_lt(y, x));
  HdpllSolver solver(c, options());
  solver.assume_bool(goal, true);
  EXPECT_EQ(solver.solve().status, SolveStatus::kUnsat);
  EXPECT_TRUE(solver.root_unsat());
  // The refutation is of the instance itself: every later call answers
  // kUnsat immediately, whatever it assumes.
  EXPECT_EQ(solver.solve({{x, Interval::point(3)}}).status,
            SolveStatus::kUnsat);
  EXPECT_TRUE(solver.root_unsat());
}

TEST_P(IncrementalAllConfigs, LearnedStatePersistsAcrossCalls) {
  // g ⇒ (x < y ∧ y < x): forcing g is unsatisfiable; retracting it is not.
  Circuit c("persist");
  const NetId g = c.add_input("g", 1);
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId top =
      c.add_implies(g, c.add_and(c.add_lt(x, y), c.add_lt(y, x)));
  HdpllSolver solver(c, options());
  solver.assume_bool(top, true);

  const auto g1 = Interval::point(1);
  EXPECT_EQ(solver.solve({{g, g1}}).status, SolveStatus::kUnsat);
  EXPECT_FALSE(solver.root_unsat());
  const std::size_t learnt_after_first = solver.clauses().learnt_count();

  // Clauses learned under the assumption carry ¬g and survive retraction.
  EXPECT_EQ(solver.solve({{g, g1}}).status, SolveStatus::kUnsat);
  EXPECT_GE(solver.clauses().learnt_count(), learnt_after_first);

  SolveResult sat = solver.solve();
  ASSERT_EQ(sat.status, SolveStatus::kSat);
  EXPECT_EQ(c.evaluate(sat.input_model)[top], 1);
}

TEST_P(IncrementalAllConfigs, SyncCircuitAdoptsAppendedLogic) {
  Circuit c("grow");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId p = c.add_lt(x, y);
  HdpllSolver solver(c, options());
  solver.assume_bool(p, true);
  ASSERT_EQ(solver.solve().status, SolveStatus::kSat);

  // Grow the circuit underneath the live solver (append-only), then adopt.
  const NetId q = c.add_lt(y, x);
  solver.sync_circuit();
  EXPECT_EQ(solver.solve({{q, Interval::point(1)}}).status,
            SolveStatus::kUnsat);
  EXPECT_FALSE(solver.root_unsat());

  SolveResult r = solver.solve({{q, Interval::point(0)}});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  const auto v = r.input_model;
  EXPECT_LT(c.evaluate(v)[q], 1);
}

TEST_P(IncrementalAllConfigs, CancelledCallLeavesSolverReusable) {
  Instance inst;
  HdpllOptions opts = options();
  StopSource source;
  source.request_stop();  // already fired: the call must bail out cleanly
  opts.stop = source.token();
  HdpllSolver solver(inst.c, opts);
  solver.assume_bool(inst.goal, true);
  EXPECT_EQ(solver.solve().status, SolveStatus::kCancelled);

  // Re-arm with no budget limits; the dirty exit must not corrupt bounds
  // consistency (the engine re-seeds its propagation queue).
  solver.set_budget(/*timeout_seconds=*/0);
  SolveResult r = solver.solve({{inst.p, Interval::point(1)}});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  const auto v = inst.c.evaluate(r.input_model);
  EXPECT_EQ(v[inst.goal], 1);
  EXPECT_LT(v[inst.x], v[inst.y]);
}

TEST_P(IncrementalAllConfigs, AlternatingSequenceStaysSound) {
  Instance inst;
  HdpllSolver solver(inst.c, options());
  solver.assume_bool(inst.goal, true);
  for (int round = 0; round < 6; ++round) {
    const bool want_unsat = round % 2 == 1;
    std::vector<std::pair<NetId, Interval>> assumptions;
    assumptions.emplace_back(inst.p, Interval::point(1));
    if (want_unsat) assumptions.emplace_back(inst.q, Interval::point(1));
    const SolveResult r = solver.solve(assumptions);
    if (want_unsat) {
      EXPECT_EQ(r.status, SolveStatus::kUnsat) << "round " << round;
      EXPECT_FALSE(solver.root_unsat());
    } else {
      ASSERT_EQ(r.status, SolveStatus::kSat) << "round " << round;
      const auto v = inst.c.evaluate(r.input_model);
      EXPECT_EQ(v[inst.goal], 1);
      EXPECT_LT(v[inst.x], v[inst.y]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, IncrementalAllConfigs,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace rtlsat::core
