#include "core/predicate_learning.h"

#include <gtest/gtest.h>

#include "core/deduce.h"

namespace rtlsat::core {
namespace {

using ir::Circuit;
using ir::NetId;

// True if the db contains a learnt binary clause ≡ (lhs=lv → rhs=rv),
// i.e. (¬(lhs=lv) ∨ (rhs=rv)).
bool has_relation(const ClauseDb& db, NetId lhs, bool lv, NetId rhs, bool rv) {
  for (const HybridClause& c : db.all()) {
    if (!c.learnt || c.lits.size() != 2) continue;
    for (int flip = 0; flip < 2; ++flip) {
      const HybridLit& a = c.lits[flip];
      const HybridLit& b = c.lits[1 - flip];
      if (a.is_bool && a.net == lhs && (a.interval.lo() == 1) == !lv &&
          b.is_bool && b.net == rhs && (b.interval.lo() == 1) == rv) {
        return true;
      }
    }
  }
  return false;
}

// Paper Figure 1: e = or(c, d), c = and(a, b), d = and(a, b̄-ish)… the
// figure's essential content is: every way of setting e = 1 implies a = 1
// and b = 1, so recursive learning of level 1 learns e→a and e→b.
TEST(PredicateLearning, Figure1RecursiveLearning) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId extra1 = c.add_input("x1", 1);
  const NetId extra2 = c.add_input("x2", 1);
  const NetId cc = c.add_and({a, b, extra1});
  const NetId dd = c.add_and({a, b, extra2});
  const NetId e = c.add_or(cc, dd);
  // Make e a data-path predicate so it lands in the candidate list.
  const NetId w1 = c.add_input("w1", 4);
  const NetId w2 = c.add_input("w2", 4);
  c.add_mux(e, w1, w2);

  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  PredicateLearningOptions options;
  const auto report = run_predicate_learning(engine, db, &cursor, options);
  EXPECT_FALSE(report.proven_unsat);
  EXPECT_GT(report.relations_learned, 0);
  // e = 1 → a = 1 and e = 1 → b = 1 (the Fig. 1 result).
  EXPECT_TRUE(has_relation(db, e, true, a, true));
  EXPECT_TRUE(has_relation(db, e, true, b, true));
}

TEST(PredicateLearning, UnitFromConflictingProbe) {
  // g = or(x, ¬x) cannot be 0: the probe conflicts and the learner records
  // the unit fact g = 1 (the paper's step 3, via the implication graph).
  Circuit c("t");
  const NetId x = c.add_input("x", 1);
  const NetId g = c.add_or(x, c.add_not(x));
  const NetId w1 = c.add_input("w1", 4);
  const NetId w2 = c.add_input("w2", 4);
  c.add_mux(g, w1, w2);

  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  const auto report = run_predicate_learning(engine, db, &cursor, {});
  EXPECT_GE(report.units_learned, 1);
  EXPECT_EQ(engine.bool_value(g), 1);  // asserted at level 0 afterwards
}

TEST(PredicateLearning, ThresholdCapsRelations) {
  // A wide OR fan-in creates many learnable pairs; the threshold must cap
  // the count (§3.1: "a threshold on the number of relations learned is
  // used to control run-time").
  Circuit c("t");
  std::vector<NetId> ins;
  for (int i = 0; i < 6; ++i)
    ins.push_back(c.add_input("i" + std::to_string(i), 1));
  const NetId shared = c.add_input("s", 1);
  std::vector<NetId> gates;
  for (int i = 0; i < 6; ++i) gates.push_back(c.add_and(ins[i], shared));
  // Several ORs whose 1-ways all imply `shared`.
  const NetId w1 = c.add_input("w1", 4);
  const NetId w2 = c.add_input("w2", 4);
  for (int i = 0; i + 1 < 6; ++i) {
    const NetId g = c.add_or(gates[i], gates[i + 1]);
    c.add_mux(g, w1, w2);
  }
  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  PredicateLearningOptions options;
  options.max_relations = 2;
  const auto report = run_predicate_learning(engine, db, &cursor, options);
  EXPECT_LE(report.relations_learned, 2);
}

TEST(PredicateLearning, DisabledWhenBudgetZero) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  c.add_mux(c.add_or(a, b), c.add_input("w1", 4), c.add_input("w2", 4));
  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  PredicateLearningOptions options;
  options.max_relations = 0;
  const auto report = run_predicate_learning(engine, db, &cursor, options);
  EXPECT_EQ(report.probes, 0);
  EXPECT_EQ(db.size(), 0u);
}

TEST(PredicateLearning, WordRelationFromCommonNarrowing) {
  // Both ways of producing g = 1 force w into ⟨1,7⟩ (via two comparators),
  // so a hybrid relation (¬g ∨ {w ∈ …}) should be learned.
  Circuit c("t");
  const NetId w = c.add_input("w", 3);
  const NetId one = c.add_const(1, 3);
  const NetId b1 = c.add_le(one, w);            // w ≥ 1
  const NetId b2 = c.add_lt(c.add_const(0, 3), w);  // w > 0 (same meaning)
  const NetId g = c.add_or(c.add_and(b1, c.add_input("p", 1)),
                           c.add_and(b2, c.add_input("q", 1)));
  c.add_mux(g, c.add_input("w1", 4), c.add_input("w2", 4));

  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  PredicateLearningOptions options;
  const auto report = run_predicate_learning(engine, db, &cursor, options);
  EXPECT_FALSE(report.proven_unsat);
  bool found = false;
  for (const HybridClause& clause : db.all()) {
    if (clause.lits.size() != 2) continue;
    for (const HybridLit& l : clause.lits) {
      if (!l.is_bool && l.net == w && l.positive &&
          l.interval == Interval(1, 7)) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(PredicateLearning, LearnedClausesGuideLaterProbes) {
  // The paper's Fig. 2 mechanism in miniature: a relation learned from an
  // early probe provides the extra implication that makes a later probe's
  // ways agree.
  Circuit c("t");
  const NetId p = c.add_input("p", 1);
  const NetId q = c.add_input("q", 1);
  const NetId r = c.add_input("r", 1);
  // g1 = p∧q, g2 = p∧r; h1 = g1∨g2 (h1=1 ⟹ p=1 via both ways).
  const NetId g1 = c.add_and(p, q);
  const NetId g2 = c.add_and(p, r);
  const NetId h1 = c.add_or(g1, g2);
  c.add_mux(h1, c.add_input("w1", 4), c.add_input("w2", 4));
  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  const auto report = run_predicate_learning(engine, db, &cursor, {});
  EXPECT_FALSE(report.proven_unsat);
  EXPECT_TRUE(has_relation(db, h1, true, p, true));
}


TEST(PredicateLearning, WordProbingShavesBounds) {
  // z = mux(s, w, w+1) with the goal forcing lt(z, 4): both halves of w's
  // domain imply z-side facts only where they agree. The sharper check:
  // y = w >> 2 — both halves of w ∈ ⟨0,7⟩ agree y ∈ ⟨0,1⟩ only if split
  // at mid; construct a case where a common unit interval emerges:
  // x = mux(c, w, 5) with w ∈ ⟨4,6⟩ from context ⟹ both halves keep
  // x ∈ ⟨4,6⟩.
  ir::Circuit c("t");
  const ir::NetId w = c.add_input("w", 3);
  const ir::NetId lo_ok = c.add_le(c.add_const(4, 3), w);
  const ir::NetId hi_ok = c.add_le(w, c.add_const(6, 3));
  const ir::NetId sel = c.add_input("s", 1);
  const ir::NetId shifted = c.add_shr(w, 1);  // field of w, probe target
  const ir::NetId m = c.add_mux(sel, shifted, c.add_const(2, 3));
  (void)m;
  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  // Context: w ∈ ⟨4,6⟩ at level 0.
  ASSERT_TRUE(engine.narrow(lo_ok, Interval::point(1),
                            prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(hi_ok, Interval::point(1),
                            prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(engine, db, &cursor));
  ASSERT_EQ(engine.interval(w), Interval(4, 6));
  // shifted ∈ ⟨2,3⟩ by direct propagation; both probe halves of w
  // (⟨4,5⟩ and ⟨6,6⟩) give shifted ∈ ⟨2⟩ ∪ ⟨3⟩ — hull ⟨2,3⟩: no news.
  // The interesting case: probe w itself splits nothing further, so just
  // assert the pass runs cleanly and stays sound.
  PredicateLearningOptions options;
  options.word_probing = true;
  const auto report = run_predicate_learning(engine, db, &cursor, options);
  EXPECT_FALSE(report.proven_unsat);
}

TEST(PredicateLearning, WordProbingDetectsEmptyDomainSplit) {
  // Context forcing contradictory bounds through a mux chain that plain
  // propagation keeps only as an over-approximation: both halves of the
  // probe conflict ⟹ the instance is refuted during preprocessing.
  ir::Circuit c("t");
  const ir::NetId w = c.add_input("w", 3);
  const ir::NetId s = c.add_input("s", 1);
  // m = mux(s, w+1, w-1); require m == w  (impossible: ±1 never equal).
  const ir::NetId plus = c.add_add(w, c.add_const(1, 3));
  const ir::NetId minus = c.add_sub(w, c.add_const(1, 3));
  const ir::NetId m = c.add_mux(s, plus, minus);
  const ir::NetId goal = c.add_eq(m, w);
  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  ASSERT_TRUE(engine.narrow(goal, Interval::point(1),
                            prop::ReasonKind::kAssumption));
  const bool consistent = deduce(engine, db, &cursor);
  if (consistent) {
    PredicateLearningOptions options;
    options.word_probing = true;
    options.max_relations = 100;
    const auto report = run_predicate_learning(engine, db, &cursor, options);
    // Either the Boolean probes or the word probes refute it outright, or
    // learning simply terminates cleanly — in no case may it claim SAT
    // facts that contradict the instance (checked by the solver suite).
    (void)report;
    SUCCEED();
  } else {
    SUCCEED();  // propagation alone refuted it
  }
}

}  // namespace
}  // namespace rtlsat::core
