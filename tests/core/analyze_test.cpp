#include "core/analyze.h"

#include <gtest/gtest.h>

#include "core/deduce.h"

namespace rtlsat::core {
namespace {

using ir::Circuit;
using ir::NetId;

TEST(Analyze, DecisionConflictLearnsNegation) {
  // g = a ∧ ¬a-ish structure: deciding a=1 with ¬a already forced conflicts
  // and must learn the unit (¬a).
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId g = c.add_and(a, b);
  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  // Level 0: g must be 0 and b must be 1 (so a must be 0).
  ASSERT_TRUE(engine.narrow(g, Interval::point(0), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(b, Interval::point(1), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(engine, db, &cursor));
  EXPECT_EQ(engine.bool_value(a), 0);  // already implied — no decision room
}

TEST(Analyze, OneUipOverBooleanChain) {
  // d (decision) implies x via clause-free circuit logic; x and an
  // assumption together conflict. Learned clause should be unit (¬d)
  // because d is the 1UIP.
  Circuit c("t");
  const NetId d = c.add_input("d", 1);
  const NetId e = c.add_input("e", 1);
  const NetId x = c.add_and(d, e);
  const NetId y = c.add_not(x);
  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  ASSERT_TRUE(engine.narrow(e, Interval::point(1), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(y, Interval::point(0), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(engine, db, &cursor));
  // y=0 ⟹ x=1 ⟹ d=1 ∧ e=1 — actually x is already forced; decide d=0 to
  // conflict with the forced d=1.
  if (engine.bool_value(d) == -1) {
    engine.push_level();
    ASSERT_TRUE(engine.narrow(d, Interval::point(0), prop::ReasonKind::kDecision));
    const bool ok = deduce(engine, db, &cursor);
    ASSERT_FALSE(ok);
    const AnalysisResult result = analyze_conflict(engine);
    ASSERT_FALSE(result.empty_clause);
    ASSERT_EQ(result.clause.lits.size(), 1u);
    EXPECT_EQ(result.clause.lits[0].net, d);
    EXPECT_EQ(result.clause.lits[0].interval, Interval::point(1));  // learn d=1
    EXPECT_EQ(result.backtrack_level, 0u);
  } else {
    // Propagation already pinned d: equally fine (stronger deduction).
    EXPECT_EQ(engine.bool_value(d), 1);
  }
}

TEST(Analyze, LevelZeroConflictYieldsEmptyClause) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId na = c.add_not(a);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(a, Interval::point(1), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(na, Interval::point(1), prop::ReasonKind::kAssumption));
  ASSERT_FALSE(engine.propagate());
  const AnalysisResult result = analyze_conflict(engine);
  EXPECT_TRUE(result.empty_clause);
}

TEST(Analyze, BacktrackLevelIsSecondHighest) {
  // Two decisions; conflict depends on both ⟹ clause has literals from
  // both levels and backtracks to level 1.
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId g = c.add_and(a, b);   // g = a∧b
  const NetId ng = c.add_not(g);
  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  ASSERT_TRUE(engine.narrow(ng, Interval::point(1), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(engine, db, &cursor));  // g = 0
  engine.push_level();
  ASSERT_TRUE(engine.narrow(a, Interval::point(1), prop::ReasonKind::kDecision));
  ASSERT_TRUE(deduce(engine, db, &cursor));  // forces b = 0
  EXPECT_EQ(engine.bool_value(b), 0);
  engine.push_level();
  const bool ok = engine.narrow(b, Interval::point(1), prop::ReasonKind::kDecision);
  EXPECT_FALSE(ok);  // direct contradiction with the implied b=0
  const AnalysisResult result = analyze_conflict(engine);
  ASSERT_FALSE(result.empty_clause);
  EXPECT_LE(result.backtrack_level, 1u);
}

TEST(Analyze, WordEventsBecomeNegativeWordLiterals) {
  // A data-path narrowing at a lower level shows up as a negative word
  // literal when hybrid learning is on, and is resolved to Boolean causes
  // when off.
  Circuit c("t");
  const NetId s = c.add_input("s", 1);
  const NetId w = c.add_input("w", 8);
  const NetId t = c.add_const(6, 8);
  const NetId e = c.add_const(2, 8);
  const NetId m = c.add_mux(s, t, e);
  const NetId cmp = c.add_lt(m, w);  // m < w
  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  ASSERT_TRUE(engine.narrow(cmp, Interval::point(1), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(engine, db, &cursor));
  engine.push_level();
  ASSERT_TRUE(engine.narrow(s, Interval::point(1), prop::ReasonKind::kDecision));
  ASSERT_TRUE(deduce(engine, db, &cursor));  // m=6 ⟹ w ∈ ⟨7,255⟩
  EXPECT_EQ(engine.interval(w), Interval(7, 255));
  engine.push_level();
  // Decide w's upper region away via a narrowing that contradicts: force a
  // conflict by pinning w below 7 — not a Boolean decision, so do it as an
  // assumption-style narrowing on a second level.
  const bool ok =
      engine.narrow(w, Interval(0, 6), prop::ReasonKind::kDecision);
  EXPECT_FALSE(ok);
  const AnalysisResult with_words = analyze_conflict(engine, {true});
  ASSERT_FALSE(with_words.empty_clause);
  bool has_word_lit = false;
  for (const HybridLit& l : with_words.clause.lits)
    has_word_lit = has_word_lit || !l.is_bool;
  EXPECT_TRUE(has_word_lit);
}

}  // namespace
}  // namespace rtlsat::core
