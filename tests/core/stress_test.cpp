// Stress configurations: aggressive clause-database reduction and very
// frequent restarts must not change any verdict. These settings exercise
// the interactions that only show up under load (fresh-clause protection
// in reduce(), watch-list cleanup of deleted clauses, restart at level 0
// with pending asserting clauses).
#include <gtest/gtest.h>

#include "bitblast/bitblast.h"
#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "itc99/itc99.h"

namespace rtlsat::core {
namespace {

struct StressCase {
  const char* circuit;
  const char* property;
  int bound;
};

class StressConfig : public ::testing::TestWithParam<StressCase> {};

TEST_P(StressConfig, AggressiveHousekeepingKeepsVerdicts) {
  const auto param = GetParam();
  const ir::SeqCircuit seq = itc99::build(param.circuit);
  const bmc::BmcInstance instance =
      bmc::unroll(seq, param.property, param.bound);
  const auto oracle = bitblast::check_sat(instance.circuit, instance.goal);
  ASSERT_NE(oracle.result, sat::Result::kTimeout);

  HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = true;
  options.learning.word_probing = true;
  options.reduction_base = 8;      // reduce almost every conflict
  options.reduction_grow = 1.01;
  options.restart_interval = 4;    // restart constantly
  options.timeout_seconds = 60;
  HdpllSolver solver(instance.circuit, options);
  solver.assume_bool(instance.goal, true);
  const SolveResult result = solver.solve();
  ASSERT_NE(result.status, SolveStatus::kTimeout);
  EXPECT_EQ(result.status == SolveStatus::kSat,
            oracle.result == sat::Result::kSat)
      << instance.name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, StressConfig,
    ::testing::Values(StressCase{"b01", "1", 10}, StressCase{"b01", "1", 20},
                      StressCase{"b02", "1", 12}, StressCase{"b04", "1", 6},
                      StressCase{"b04", "2", 5}, StressCase{"b06", "2", 10},
                      StressCase{"b10", "1", 9}, StressCase{"b13", "1", 12},
                      StressCase{"b13", "5", 12}, StressCase{"b13", "40", 13}),
    [](const auto& info) {
      return std::string(info.param.circuit) + "_p" + info.param.property +
             "_k" + std::to_string(info.param.bound);
    });

TEST(Stress, ReductionNeverDeletesReasons) {
  // Long UNSAT run with tiny reduction budget: if reduce() ever deleted a
  // clause acting as a reason, conflict analysis would dereference a
  // deleted event source and the internal assertions would fire.
  const ir::SeqCircuit seq = itc99::build("b13");
  const auto instance = bmc::unroll(seq, "5", 25);
  HdpllOptions options;
  options.reduction_base = 4;
  options.reduction_grow = 1.0;
  options.timeout_seconds = 60;
  HdpllSolver solver(instance.circuit, options);
  solver.assume_bool(instance.goal, true);
  EXPECT_EQ(solver.solve().status, SolveStatus::kUnsat);
  EXPECT_GT(solver.stats().get("hdpll.clauses_deleted"), 0);
}

}  // namespace
}  // namespace rtlsat::core
