#include "core/justify.h"

#include <gtest/gtest.h>

#include "core/deduce.h"

namespace rtlsat::core {
namespace {

using ir::Circuit;
using ir::NetId;

TEST(Justify, AndGateAtZeroNeedsJustification) {
  // Fig. 3(a): o = i1 ∧ i2 with o = 0 cannot be satisfied by implication.
  Circuit c("t");
  const NetId i1 = c.add_input("i1", 1);
  const NetId i2 = c.add_input("i2", 1);
  const NetId o = c.add_and(i1, i2);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(o, Interval::point(0), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  Justifier justifier(c);
  EXPECT_EQ(justifier.frontier_size(engine), 1u);
  const auto decision = justifier.pick(engine, nullptr);
  ASSERT_TRUE(decision.has_value());
  EXPECT_TRUE(decision->net == i1 || decision->net == i2);
  EXPECT_FALSE(decision->value);  // controlling value for AND is 0
}

TEST(Justify, AndGateAtOneIsImplied) {
  Circuit c("t");
  const NetId i1 = c.add_input("i1", 1);
  const NetId i2 = c.add_input("i2", 1);
  const NetId o = c.add_and(i1, i2);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(o, Interval::point(1), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  Justifier justifier(c);
  EXPECT_EQ(justifier.frontier_size(engine), 0u);  // inputs already forced
  EXPECT_FALSE(justifier.pick(engine, nullptr).has_value());
}

TEST(Justify, OrGateAtOnePicksHighFanoutInput) {
  Circuit c("t");
  const NetId i1 = c.add_input("i1", 1);
  const NetId i2 = c.add_input("i2", 1);
  const NetId o = c.add_or(i1, i2);
  // Give i2 extra fanout so the §4.2 heuristic prefers it.
  c.add_and(i2, c.add_input("other", 1));
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(o, Interval::point(1), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  Justifier justifier(c);
  const auto decision = justifier.pick(engine, nullptr);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->net, i2);
  EXPECT_TRUE(decision->value);
}

TEST(Justify, MuxConstrainedOutputIsFrontier) {
  // Fig. 3(b): mux with required output interval and free select.
  Circuit c("t");
  const NetId sel = c.add_input("sel", 1);
  const NetId i1 = c.add_input("i1", 8);
  const NetId i2 = c.add_input("i2", 8);
  const NetId o = c.add_mux(sel, i2, i1);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(i1, Interval(0, 4), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(i2, Interval(10, 14), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(o, Interval(12, 20), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  // ⟨12,20⟩ ∩ i1 = ∅, so propagation already forces sel = 1: the operator
  // justifies itself by implication (Def. 4.1's "uniquely determined").
  EXPECT_EQ(engine.bool_value(sel), 1);
}

TEST(Justify, MuxFreeChoiceDecidesSelect) {
  Circuit c("t");
  const NetId sel = c.add_input("sel", 1);
  const NetId i1 = c.add_input("i1", 8);
  const NetId i2 = c.add_input("i2", 8);
  const NetId o = c.add_mux(sel, i2, i1);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(i1, Interval(0, 10), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(i2, Interval(5, 14), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(o, Interval(6, 8), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  Justifier justifier(c);
  EXPECT_GE(justifier.frontier_size(engine), 1u);
  const auto decision = justifier.pick(engine, nullptr);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->net, sel);
}

TEST(Justify, UnconstrainedMuxNotInFrontier) {
  // Output ⊇ hull(branches): any select works, no urgency (Def. 4.1).
  Circuit c("t");
  const NetId sel = c.add_input("sel", 1);
  const NetId i1 = c.add_input("i1", 8);
  const NetId i2 = c.add_input("i2", 8);
  c.add_mux(sel, i2, i1);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.propagate());
  Justifier justifier(c);
  EXPECT_EQ(justifier.frontier_size(engine), 0u);
}

TEST(Justify, XorWithAssignedOutput) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId x = c.add_xor(a, b);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(x, Interval::point(1), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  Justifier justifier(c);
  const auto decision = justifier.pick(engine, nullptr);
  ASSERT_TRUE(decision.has_value());
  EXPECT_TRUE(decision->net == a || decision->net == b);
}

TEST(Justify, DeepestGateFirst) {
  // Frontier scanning starts at the highest level (closest to the goal).
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId d = c.add_input("d", 1);
  const NetId inner = c.add_or(a, b);
  const NetId outer = c.add_and(inner, d);
  prop::Engine engine(c);
  // outer = 0 with d = 1 ⟹ inner = 0 ⟹ a=b=0 by implication: frontier
  // empty. Instead assert outer = 0 only: the AND is the deepest
  // unjustified gate.
  ASSERT_TRUE(engine.narrow(outer, Interval::point(0), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  Justifier justifier(c);
  const auto decision = justifier.pick(engine, nullptr);
  ASSERT_TRUE(decision.has_value());
  // Justifying the outer AND decides one of its free inputs.
  EXPECT_TRUE(decision->net == inner || decision->net == d);
}

TEST(RelationSatisfaction, CountsMatchingLearntClauses) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  ClauseDb db(c);
  db.add({{HybridLit::boolean(a, true), HybridLit::boolean(b, false)},
          true, HybridClause::Origin::kPredicateLearning});
  db.add({{HybridLit::boolean(a, true), HybridLit::boolean(b, true)},
          true, HybridClause::Origin::kPredicateLearning});
  db.add({{HybridLit::boolean(a, false)}, false, HybridClause::Origin::kProblem});
  EXPECT_EQ(relation_satisfaction(db, a, true), 2);
  EXPECT_EQ(relation_satisfaction(db, a, false), 0);  // problem clause skipped
  EXPECT_EQ(relation_satisfaction(db, b, false), 1);
}

}  // namespace
}  // namespace rtlsat::core
