#include "core/clause_db.h"

#include <gtest/gtest.h>

#include "core/deduce.h"

namespace rtlsat::core {
namespace {

using ir::Circuit;
using ir::NetId;

struct Fixture {
  Circuit c{"t"};
  NetId a = c.add_input("a", 1);
  NetId b = c.add_input("b", 1);
  NetId w = c.add_input("w", 8);
  prop::Engine engine{c};
  ClauseDb db{c};
  std::size_t cursor = 0;
};

TEST(ClauseDb, UnitBooleanImplication) {
  Fixture f;
  // (¬a ∨ b), assert a ⟹ b implied.
  f.db.add({{HybridLit::boolean(f.a, false), HybridLit::boolean(f.b, true)},
            true,
            HybridClause::Origin::kConflict});
  ASSERT_TRUE(f.engine.narrow(f.a, Interval::point(1),
                              prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(f.engine, f.db, &f.cursor));
  EXPECT_EQ(f.engine.bool_value(f.b), 1);
  // The implication carries the clause id as reason.
  const auto& ev = f.engine.trail()[f.engine.latest_event(f.b)];
  EXPECT_EQ(ev.kind, prop::ReasonKind::kClause);
}

TEST(ClauseDb, UnitWordImplication) {
  Fixture f;
  // (¬a ∨ {w ∈ ⟨1,7⟩}).
  f.db.add({{HybridLit::boolean(f.a, false),
             HybridLit::word_in(f.w, Interval(1, 7))},
            true,
            HybridClause::Origin::kPredicateLearning});
  ASSERT_TRUE(f.engine.narrow(f.a, Interval::point(1),
                              prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(f.engine, f.db, &f.cursor));
  EXPECT_EQ(f.engine.interval(f.w), Interval(1, 7));
}

TEST(ClauseDb, SatisfiedClauseDoesNothing) {
  Fixture f;
  f.db.add({{HybridLit::boolean(f.a, true), HybridLit::boolean(f.b, true)},
            false,
            HybridClause::Origin::kProblem});
  ASSERT_TRUE(f.engine.narrow(f.a, Interval::point(1),
                              prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(f.engine, f.db, &f.cursor));
  EXPECT_EQ(f.engine.bool_value(f.b), -1);
}

TEST(ClauseDb, ConflictWhenAllFalse) {
  Fixture f;
  f.db.add({{HybridLit::boolean(f.a, true), HybridLit::boolean(f.b, true)},
            false,
            HybridClause::Origin::kProblem});
  ASSERT_TRUE(f.engine.narrow(f.a, Interval::point(0),
                              prop::ReasonKind::kAssumption));
  ASSERT_TRUE(f.engine.narrow(f.b, Interval::point(0),
                              prop::ReasonKind::kAssumption));
  EXPECT_FALSE(deduce(f.engine, f.db, &f.cursor));
  EXPECT_TRUE(f.engine.in_conflict());
  EXPECT_EQ(f.engine.conflict().kind, prop::ReasonKind::kClause);
  // Both falsifying events are antecedents.
  EXPECT_EQ(f.engine.conflict().antecedents.size(), 2u);
}

TEST(ClauseDb, WordLiteralFalsifiedByDisjointInterval) {
  Fixture f;
  // ({w ∈ ⟨0,3⟩} ∨ b): narrow w to ⟨10,20⟩ ⟹ b implied.
  f.db.add({{HybridLit::word_in(f.w, Interval(0, 3)),
             HybridLit::boolean(f.b, true)},
            true,
            HybridClause::Origin::kConflict});
  ASSERT_TRUE(f.engine.narrow(f.w, Interval(10, 20),
                              prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(f.engine, f.db, &f.cursor));
  EXPECT_EQ(f.engine.bool_value(f.b), 1);
}

TEST(ClauseDb, NegativeWordUnitTrimsInterval) {
  Fixture f;
  // (a ∨ {w ∉ ⟨0,4⟩}): with a false, w must avoid ⟨0,4⟩.
  f.db.add({{HybridLit::boolean(f.a, true),
             HybridLit::word_not_in(f.w, Interval(0, 4))},
            true,
            HybridClause::Origin::kConflict});
  ASSERT_TRUE(f.engine.narrow(f.a, Interval::point(0),
                              prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(f.engine, f.db, &f.cursor));
  EXPECT_EQ(f.engine.interval(f.w), Interval(5, 255));
}

TEST(ClauseDb, NetWeightCountsOccurrences) {
  Fixture f;
  f.db.add({{HybridLit::boolean(f.a, true), HybridLit::boolean(f.b, true)},
            true, HybridClause::Origin::kPredicateLearning});
  f.db.add({{HybridLit::boolean(f.a, false),
             HybridLit::word_in(f.w, Interval(0, 1))},
            true, HybridClause::Origin::kPredicateLearning});
  EXPECT_EQ(f.db.net_weight(f.a), 2);
  EXPECT_EQ(f.db.net_weight(f.b), 1);
  EXPECT_EQ(f.db.net_weight(f.w), 1);
  EXPECT_EQ(f.db.learnt_count(), 2u);
}

TEST(ClauseDb, FreshClauseCheckedWithoutNewEvents) {
  Fixture f;
  ASSERT_TRUE(f.engine.narrow(f.a, Interval::point(1),
                              prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(f.engine, f.db, &f.cursor));
  // Clause added after the events it depends on — must still fire.
  f.db.add({{HybridLit::boolean(f.a, false), HybridLit::boolean(f.b, true)},
            true, HybridClause::Origin::kConflict});
  ASSERT_TRUE(deduce(f.engine, f.db, &f.cursor));
  EXPECT_EQ(f.engine.bool_value(f.b), 1);
}

TEST(ClauseDb, CursorClampAfterRollback) {
  Fixture f;
  f.db.add({{HybridLit::boolean(f.a, false), HybridLit::boolean(f.b, true)},
            true, HybridClause::Origin::kConflict});
  const std::size_t mark = f.engine.mark();
  f.engine.push_level();
  ASSERT_TRUE(f.engine.narrow(f.a, Interval::point(1),
                              prop::ReasonKind::kDecision));
  ASSERT_TRUE(deduce(f.engine, f.db, &f.cursor));
  EXPECT_EQ(f.engine.bool_value(f.b), 1);
  f.engine.rollback_to(mark);
  f.engine.backtrack_to_level(0);
  // Re-assert; the clause must re-fire despite the rollback.
  ASSERT_TRUE(f.engine.narrow(f.a, Interval::point(1),
                              prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(f.engine, f.db, &f.cursor));
  EXPECT_EQ(f.engine.bool_value(f.b), 1);
}

}  // namespace
}  // namespace rtlsat::core
