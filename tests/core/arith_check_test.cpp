#include "core/arith_check.h"

#include <gtest/gtest.h>

#include "core/clause_db.h"
#include "core/deduce.h"

namespace rtlsat::core {
namespace {

using ir::Circuit;
using ir::NetId;

// Convenience: propagate to fixpoint, then run the end-game check.
ArithCheckResult check(const Circuit& c, prop::Engine& engine) {
  ClauseDb db(c);
  std::size_t cursor = 0;
  EXPECT_TRUE(deduce(engine, db, &cursor));
  fme::Solver solver;
  return arith_check(engine, solver);
}

TEST(ArithCheck, AdderWitness) {
  // a + b = 300 at width 9 with a ≥ 200: a point solution must exist.
  Circuit c("t");
  const NetId a = c.add_input("a", 9);
  const NetId b = c.add_input("b", 9);
  const NetId sum = c.add_add(a, b);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(sum, Interval::point(300), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(a, Interval(200, 511), prop::ReasonKind::kAssumption));
  const auto result = check(c, engine);
  ASSERT_TRUE(result.sat);
  const std::int64_t av = result.values[a];
  const std::int64_t bv = result.values[b];
  EXPECT_EQ((av + bv) % 512, 300);
  EXPECT_GE(av, 200);
}

TEST(ArithCheck, ComparatorRelationEnforced) {
  // x < y ∧ y < x is bounds-consistent per variable but has no point.
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId l1 = c.add_lt(x, y);
  const NetId l2 = c.add_lt(y, x);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(l1, Interval::point(1), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(l2, Interval::point(1), prop::ReasonKind::kAssumption));
  ClauseDb db(c);
  std::size_t cursor = 0;
  if (deduce(engine, db, &cursor)) {
    fme::Solver solver;
    EXPECT_FALSE(arith_check(engine, solver).sat);
  }
  // (Propagation refuting it directly is also a correct outcome.)
}

TEST(ArithCheck, MuxResolvedBySelect) {
  Circuit c("t");
  const NetId s = c.add_input("s", 1);
  const NetId t = c.add_input("t", 8);
  const NetId e = c.add_input("e", 8);
  const NetId m = c.add_mux(s, t, e);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(s, Interval::point(0), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(m, Interval(100, 120), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(t, Interval(0, 10), prop::ReasonKind::kAssumption));
  const auto result = check(c, engine);
  ASSERT_TRUE(result.sat);
  EXPECT_EQ(result.values[m], result.values[e]);
  EXPECT_GE(result.values[m], 100);
}

TEST(ArithCheck, WiringOpsExact) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId hi = c.add_extract(x, 7, 4);
  const NetId lo = c.add_extract(x, 3, 0);
  const NetId back = c.add_concat(hi, lo);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(x, Interval(37, 99), prop::ReasonKind::kAssumption));
  const auto result = check(c, engine);
  ASSERT_TRUE(result.sat);
  EXPECT_EQ(result.values[back], result.values[x]);
  EXPECT_EQ(result.values[hi], result.values[x] >> 4);
}

TEST(ArithCheck, SubWithWrapWitness) {
  Circuit c("t");
  const NetId a = c.add_input("a", 8);
  const NetId b = c.add_input("b", 8);
  const NetId d = c.add_sub(a, b);
  prop::Engine engine(c);
  // d = 250 with a small: wrap must be used.
  ASSERT_TRUE(engine.narrow(d, Interval::point(250), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(a, Interval(0, 5), prop::ReasonKind::kAssumption));
  const auto result = check(c, engine);
  ASSERT_TRUE(result.sat);
  EXPECT_EQ(((result.values[a] - result.values[b]) % 256 + 256) % 256, 250);
}

TEST(ArithCheck, PointOnlyCircuitSkipsFme) {
  Circuit c("t");
  const NetId a = c.add_input("a", 8);
  const NetId s = c.add_inc(a);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(a, Interval::point(41), prop::ReasonKind::kAssumption));
  const auto result = check(c, engine);
  ASSERT_TRUE(result.sat);
  EXPECT_EQ(result.values[s], 42);
}

TEST(ArithCheck, MulcAndShifts) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId m = c.add_mulc(x, 3);
  const NetId sh = c.add_shr(x, 1);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(m, Interval::point(30), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(x, Interval(0, 60), prop::ReasonKind::kAssumption));
  const auto result = check(c, engine);
  ASSERT_TRUE(result.sat);
  EXPECT_EQ(result.values[x] * 3 % 256, 30);
  EXPECT_EQ(result.values[sh], result.values[x] / 2);
}

}  // namespace
}  // namespace rtlsat::core
