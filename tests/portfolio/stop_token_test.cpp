#include "util/stop_token.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace rtlsat {
namespace {

TEST(StopTokenTest, DefaultTokenIsInert) {
  const StopToken token;
  EXPECT_FALSE(token.armed());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.deadline_armed());
  EXPECT_FALSE(token.deadline_expired());
  EXPECT_FALSE(token.stop_requested());
}

TEST(StopTokenTest, RequestStopFlipsEveryToken) {
  StopSource source;
  const StopToken a = source.token();
  const StopToken b = source.token();
  EXPECT_TRUE(a.armed());
  EXPECT_FALSE(a.stop_requested());
  source.request_stop();
  EXPECT_TRUE(source.stop_requested());
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_TRUE(a.stop_requested());
}

TEST(StopTokenTest, TokenOutlivesSource) {
  StopToken token;
  {
    StopSource source;
    token = source.token();
    source.request_stop();
  }
  EXPECT_TRUE(token.cancelled());  // shared ownership of the flag
}

TEST(StopTokenTest, DeadlineExpires) {
  const StopToken token = StopToken::after(0.01);
  EXPECT_TRUE(token.armed());
  EXPECT_TRUE(token.deadline_armed());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(token.deadline_expired());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_FALSE(token.cancelled());  // deadline ≠ cancellation
}

TEST(StopTokenTest, NonPositiveDeadlineIsNoLimit) {
  // The solvers' "timeout_seconds = 0 ⟹ no limit" convention.
  EXPECT_FALSE(StopToken::after(0).armed());
  EXPECT_FALSE(StopToken::after(-1).armed());
  StopSource source;
  const StopToken token = source.token().with_deadline(0);
  EXPECT_TRUE(token.armed());  // still carries the cancellation flag
  EXPECT_FALSE(token.deadline_armed());
}

TEST(StopTokenTest, WithDeadlineKeepsSoonerDeadline) {
  const StopToken token = StopToken::after(0.01).with_deadline(3600);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(token.deadline_expired());  // min-combined, not replaced
}

TEST(StopTokenTest, WithDeadlineTightens) {
  const StopToken token = StopToken::after(3600).with_deadline(0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(token.deadline_expired());
}

TEST(StopTokenTest, CrossThreadStopIsObserved) {
  StopSource source;
  const StopToken token = source.token();
  std::thread t([&source] { source.request_stop(); });
  t.join();
  EXPECT_TRUE(token.stop_requested());
}

}  // namespace
}  // namespace rtlsat
