#include "portfolio/portfolio.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>

#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "itc99/itc99.h"
#include "util/stop_token.h"
#include "util/timer.h"

namespace rtlsat::portfolio {
namespace {

// A b13 BMC instance; bound picks the difficulty (UNSAT at every bound).
bmc::BmcInstance b13(int bound) {
  return bmc::unroll(itc99::build("b13"), "1", bound);
}

// a + b == 100 ∧ a < 20 — satisfiable, with an independently checkable goal.
struct SatProblem {
  ir::Circuit circuit{"sat"};
  ir::NetId a = ir::kNoNet;
  ir::NetId b = ir::kNoNet;
  ir::NetId goal = ir::kNoNet;
  SatProblem() {
    a = circuit.add_input("a", 8);
    b = circuit.add_input("b", 8);
    goal = circuit.add_and(
        circuit.add_eq(circuit.add_add(a, b), circuit.add_const(100, 8)),
        circuit.add_lt(a, circuit.add_const(20, 8)));
  }
};

TEST(PortfolioTest, CancellationStopsLongWorkerQuickly) {
  // Run the slowest configuration on an instance it needs many seconds
  // for, with no timeout; request_stop from outside must bring it back as
  // kCancelled almost immediately (the acceptance bar for the in-race
  // latency is 50 ms; the test bound is looser to absorb sanitizer and
  // CI-machine slowdowns).
  const bmc::BmcInstance instance = b13(200);
  StopSource source;
  core::HdpllOptions options;
  options.stop = source.token();

  core::SolveResult result;
  std::thread worker([&] {
    core::HdpllSolver solver(instance.circuit, options);
    solver.assume_bool(instance.goal, true);
    result = solver.solve();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Timer latency;
  source.request_stop();
  worker.join();
  EXPECT_EQ(result.status, core::SolveStatus::kCancelled);
  EXPECT_LT(latency.seconds(), 2.0);
}

TEST(PortfolioTest, TimeoutHonoredDuringPredicateLearning) {
  // Regression: timeout_seconds used to be polled only between conflicts,
  // so the up-front predicate-learning probe phase (and FME-heavy
  // instances) could overshoot a small timeout by orders of magnitude.
  // Routing the timeout through StopToken bounds the overshoot.
  const bmc::BmcInstance instance = b13(100);
  core::HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = true;
  options.learning.max_relations = 2000;
  options.timeout_seconds = 0.01;
  Timer timer;
  core::HdpllSolver solver(instance.circuit, options);
  solver.assume_bool(instance.goal, true);
  const core::SolveResult result = solver.solve();
  EXPECT_EQ(result.status, core::SolveStatus::kTimeout);
  EXPECT_LT(timer.seconds(), 2.0);
}

TEST(PortfolioTest, OneWorkerPortfolioMatchesDirectSolve) {
  const bmc::BmcInstance instance = b13(20);
  PortfolioOptions options;
  options.jobs = 1;
  Portfolio race(instance.circuit, instance.goal, true, options);
  const PortfolioResult result = race.solve();
  EXPECT_EQ(result.status, core::SolveStatus::kUnsat);
  EXPECT_EQ(result.winner, 0);
  ASSERT_EQ(result.workers.size(), 1u);
  EXPECT_EQ(result.workers[0].verdict, 'U');
  EXPECT_TRUE(result.crosscheck_violations.empty());
}

TEST(PortfolioTest, UnsatRaceAgreesAndCancelsLosers) {
  const bmc::BmcInstance instance = b13(50);
  PortfolioOptions options;
  options.jobs = 4;
  options.self_check = true;
  Portfolio race(instance.circuit, instance.goal, true, options);
  const PortfolioResult result = race.solve();
  EXPECT_EQ(result.status, core::SolveStatus::kUnsat);
  ASSERT_GE(result.winner, 0);
  EXPECT_EQ(result.workers[result.winner].verdict, 'U');
  // Any loser that still finished decisively must agree with the winner —
  // the crosscheck turns disagreement into violations.
  EXPECT_TRUE(result.crosscheck_violations.empty())
      << result.crosscheck_violations.front();
  for (const WorkerReport& worker : result.workers) {
    EXPECT_TRUE(worker.verdict == 'U' || worker.verdict == 'C' ||
                worker.verdict == 'T')
        << worker.name << " returned " << worker.verdict;
    if (worker.verdict == 'C') {
      EXPECT_GE(worker.cancel_latency, 0);
    }
  }
  EXPECT_EQ(result.stats.get("portfolio.workers"), 4);
}

TEST(PortfolioTest, SatRaceModelCrosschecksAgainstLosers) {
  SatProblem problem;
  PortfolioOptions options;
  options.jobs = 4;
  options.self_check = true;
  // Deterministic mode runs every worker to completion, so the SAT model
  // is replayed against each HDPLL worker's level-0 interval store.
  options.deterministic = true;
  Portfolio race(problem.circuit, problem.goal, true, options);
  const PortfolioResult result = race.solve();
  ASSERT_EQ(result.status, core::SolveStatus::kSat);
  EXPECT_TRUE(result.crosscheck_violations.empty())
      << result.crosscheck_violations.front();
  const auto values = problem.circuit.evaluate(result.input_model);
  EXPECT_EQ(values.at(problem.goal), 1);  // model verified independently
}

TEST(PortfolioTest, RaceUnderRetractableAssumptions) {
  // The race accepts the same per-call (net, interval) assumptions as
  // core::HdpllSolver::solve(assumptions). One Portfolio object answers a
  // sequence of differently-assumed questions: the strengthened instance
  // stays SAT, an assumption contradicting the goal yields UNSAT without
  // poisoning the next call, and bit-blast workers (no word-level
  // assumption channel) sit assumed races out as '?'.
  SatProblem problem;
  PortfolioOptions options;
  options.jobs = 4;
  options.self_check = true;
  options.deterministic = true;
  Portfolio race(problem.circuit, problem.goal, true, options);

  // a in [5, 10]: compatible with a < 20, still SAT.
  const PortfolioResult sat =
      race.solve({{problem.a, Interval(5, 10)}});
  ASSERT_EQ(sat.status, core::SolveStatus::kSat);
  EXPECT_TRUE(sat.crosscheck_violations.empty())
      << sat.crosscheck_violations.front();
  const auto values = problem.circuit.evaluate(sat.input_model);
  EXPECT_EQ(values.at(problem.goal), 1);
  EXPECT_GE(values.at(problem.a), 5);
  EXPECT_LE(values.at(problem.a), 10);
  for (const WorkerReport& worker : sat.workers) {
    if (worker.name.find("bitblast") != std::string::npos ||
        worker.name.find("cdcl") != std::string::npos) {
      EXPECT_EQ(worker.verdict, '?') << worker.name;
    }
  }

  // a in [30, 50]: contradicts a < 20 — UNSAT under the assumption only.
  const PortfolioResult unsat =
      race.solve({{problem.a, Interval(30, 50)}});
  EXPECT_EQ(unsat.status, core::SolveStatus::kUnsat);

  // No assumptions again: back to the full lineup and a SAT verdict.
  const PortfolioResult plain = race.solve();
  ASSERT_EQ(plain.status, core::SolveStatus::kSat);
  EXPECT_TRUE(plain.crosscheck_violations.empty())
      << plain.crosscheck_violations.front();
}

TEST(PortfolioTest, SharedClauseImportPreservesSoundness) {
  // Deterministic sequential mode maximizes sharing (later workers import
  // everything earlier workers proved); with self-checks on, an unsound
  // import would abort or surface as a crosscheck violation.
  const bmc::BmcInstance instance = b13(30);
  PortfolioOptions options;
  options.jobs = 4;
  options.deterministic = true;
  options.share_clauses = true;
  options.self_check = true;
  Portfolio race(instance.circuit, instance.goal, true, options);
  const PortfolioResult result = race.solve();
  EXPECT_EQ(result.status, core::SolveStatus::kUnsat);
  EXPECT_TRUE(result.crosscheck_violations.empty())
      << result.crosscheck_violations.front();
  // The race is only meaningful if clauses actually moved between workers.
  std::int64_t imported = 0;
  for (std::size_t w = 0; w < result.workers.size(); ++w) {
    const WorkerReport& worker = result.workers[w];
    imported += worker.clauses_imported;
    // Every import is attributed to its exporting worker
    // (hdpll.imported_from.<id>), and the attribution must account for
    // exactly the imports this worker reports — word certificates lean on
    // this provenance for cross-worker `import` records (docs/proofs.md).
    std::int64_t attributed = 0;
    for (std::size_t other = 0; other < result.workers.size(); ++other) {
      const std::int64_t n =
          worker.stats.get("hdpll.imported_from." + std::to_string(other));
      if (other == w) {
        EXPECT_EQ(n, 0) << "worker " << w << " self-import";
      }
      attributed += n;
    }
    EXPECT_EQ(attributed, worker.clauses_imported) << "worker " << w;
  }
  EXPECT_GT(result.stats.get("portfolio.pool_clauses"), 0);
  EXPECT_GT(imported, 0);
}

TEST(PortfolioTest, DeterministicModeIsReproducible) {
  const bmc::BmcInstance instance = b13(25);

  auto run = [&instance] {
    PortfolioOptions options;
    options.jobs = 3;
    options.deterministic = true;
    Portfolio race(instance.circuit, instance.goal, true, options);
    return race.solve();
  };

  const PortfolioResult first = run();
  ASSERT_GE(first.winner, 0);

  // Wall-time counters vary run to run; everything else must not.
  auto fingerprint = [](const PortfolioResult& r) {
    std::map<std::string, std::int64_t> out;
    for (const auto& [name, value] : r.stats.all()) {
      if (name.rfind("time.", 0) == 0) continue;
      out[name] = value;
    }
    return out;
  };
  const auto baseline = fingerprint(first);

  for (int i = 0; i < 4; ++i) {
    const PortfolioResult again = run();
    EXPECT_EQ(again.winner, first.winner);
    EXPECT_EQ(again.winner_name, first.winner_name);
    EXPECT_EQ(again.status, first.status);
    EXPECT_EQ(fingerprint(again), baseline) << "run " << i + 1;
  }
}

TEST(PortfolioTest, BudgetExpiresWithNoWinner) {
  const bmc::BmcInstance instance = b13(200);
  PortfolioOptions options;
  options.jobs = 2;
  options.budget_seconds = 0.05;
  Portfolio race(instance.circuit, instance.goal, true, options);
  Timer timer;
  const PortfolioResult result = race.solve();
  if (result.winner < 0) {
    EXPECT_EQ(result.status, core::SolveStatus::kTimeout);
    for (const WorkerReport& worker : result.workers) {
      EXPECT_EQ(worker.verdict, 'T') << worker.name;
    }
  }
  // Whether or not a fast worker squeaked in under the budget, the race
  // must not run far past it.
  EXPECT_LT(timer.seconds(), 5.0);
}

TEST(PortfolioTest, CustomLineupAndNames) {
  const bmc::BmcInstance instance = b13(10);
  WorkerConfig only;
  only.name = "just-hdpll";
  only.hdpll.structural_decisions = true;
  PortfolioOptions options;
  options.jobs = 1;
  Portfolio race(instance.circuit, instance.goal, true, options, {only});
  const PortfolioResult result = race.solve();
  EXPECT_EQ(result.status, core::SolveStatus::kUnsat);
  EXPECT_EQ(result.winner_name, "just-hdpll");
}

TEST(PortfolioTest, DefaultLineupShape) {
  const auto lineup = default_lineup(6, 2000);
  ASSERT_EQ(lineup.size(), 6u);
  EXPECT_EQ(lineup[0].name, "HDPLL+S+P");
  EXPECT_TRUE(lineup[1].bitblast);
  EXPECT_EQ(lineup[2].name, "HDPLL+S");
  EXPECT_EQ(lineup[3].name, "HDPLL");
  // Perturbed duplicates must differ from the base configuration so the
  // extra slots explore different trajectories.
  EXPECT_NE(lineup[4].hdpll.random_seed, lineup[0].hdpll.random_seed);
  EXPECT_NE(lineup[5].hdpll.random_seed, lineup[4].hdpll.random_seed);
}

TEST(PortfolioTest, ExternalStopTokenCancelsWholeRace) {
  // The serve path: the caller owns a StopSource (cancel requests,
  // shutdown_now) and the race must come back kCancelled shortly after it
  // fires, regardless of the internal first-verdict-wins source.
  const bmc::BmcInstance instance = b13(200);
  StopSource source;
  PortfolioOptions options;
  options.jobs = 2;
  options.stop = source.token();
  Portfolio race(instance.circuit, instance.goal, true, options);
  PortfolioResult result;
  std::thread solver([&] { result = race.solve(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Timer latency;
  source.request_stop();
  solver.join();
  EXPECT_EQ(result.status, core::SolveStatus::kCancelled);
  EXPECT_LT(latency.seconds(), 2.0);
}

TEST(PortfolioTest, SharedPoolCarriesClausesAcrossRuns) {
  // Cross-job clause exchange (serve/bank.h): two sequential races share
  // one caller-owned pool with disjoint worker-id ranges. The second run
  // must still be sound, and the pool retains the first run's clauses so
  // the second can import them.
  const bmc::BmcInstance instance = b13(20);
  ClausePool pool;
  PortfolioOptions first;
  first.jobs = 2;
  first.pool = &pool;
  first.worker_id_base = 0;
  Portfolio race1(instance.circuit, instance.goal, true, first);
  EXPECT_EQ(race1.solve().status, core::SolveStatus::kUnsat);
  const std::size_t after_first = pool.size();

  PortfolioOptions second;
  second.jobs = 2;
  second.pool = &pool;
  second.worker_id_base = 2;  // disjoint ids, so fetch sees run 1's clauses
  Portfolio race2(instance.circuit, instance.goal, true, second);
  const PortfolioResult result = race2.solve();
  EXPECT_EQ(result.status, core::SolveStatus::kUnsat);
  EXPECT_TRUE(result.crosscheck_violations.empty());
  EXPECT_GE(pool.size(), after_first);
}

TEST(PortfolioPresolve, DecidedUnsatSkipsTheRace) {
  // eq(zext(a), 200) with a 4-bit is refuted by intervals alone: the race
  // never starts and the verdict is attributed to the presolver.
  ir::Circuit c("dec");
  const ir::NetId a = c.add_input("a", 4);
  const ir::NetId goal =
      c.add_eq(c.add_zext(a, 8), c.add_const(200, 8));
  PortfolioOptions options;
  options.presolve = true;
  Portfolio race(c, goal, true, options);
  const PortfolioResult result = race.solve();
  EXPECT_EQ(result.status, core::SolveStatus::kUnsat);
  EXPECT_EQ(result.winner_name, "presolve");
  EXPECT_TRUE(result.workers.empty());
  EXPECT_EQ(result.stats.get("presolve.decided"), 1);
}

TEST(PortfolioPresolve, DecidedSatModelSatisfiesOriginalGoal) {
  ir::Circuit c("dec");
  const ir::NetId a = c.add_input("a", 4);
  const ir::NetId goal =
      c.add_le(c.add_zext(a, 8), c.add_const(20, 8));
  PortfolioOptions options;
  options.presolve = true;
  Portfolio race(c, goal, true, options);
  const PortfolioResult result = race.solve();
  ASSERT_EQ(result.status, core::SolveStatus::kSat);
  EXPECT_EQ(result.winner_name, "presolve");
  EXPECT_TRUE(result.crosscheck_violations.empty())
      << result.crosscheck_violations.front();
  EXPECT_EQ(c.evaluate(result.input_model).at(goal), 1);
}

TEST(PortfolioPresolve, UndecidedRaceMapsModelToOriginalInputs) {
  // a + b == 100 ∧ a < 20 is interval-undecidable, so the race runs on the
  // simplified circuit and the winner's model must transfer back.
  SatProblem problem;
  PortfolioOptions options;
  options.jobs = 2;
  options.presolve = true;
  Portfolio race(problem.circuit, problem.goal, true, options);
  const PortfolioResult result = race.solve();
  ASSERT_EQ(result.status, core::SolveStatus::kSat);
  EXPECT_TRUE(result.crosscheck_violations.empty())
      << result.crosscheck_violations.front();
  const auto values = problem.circuit.evaluate(result.input_model);
  EXPECT_EQ(values.at(problem.goal), 1);
}

TEST(PortfolioPresolve, UnsatVerdictAgreesWithPlainRace) {
  const bmc::BmcInstance instance = b13(5);
  PortfolioOptions plain;
  plain.jobs = 2;
  PortfolioOptions pre = plain;
  pre.presolve = true;
  Portfolio race_plain(instance.circuit, instance.goal, true, plain);
  Portfolio race_pre(instance.circuit, instance.goal, true, pre);
  const PortfolioResult a = race_plain.solve();
  const PortfolioResult b = race_pre.solve();
  EXPECT_EQ(a.status, core::SolveStatus::kUnsat);
  EXPECT_EQ(b.status, a.status);
}

}  // namespace
}  // namespace rtlsat::portfolio
