#include "portfolio/clause_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/hybrid_clause.h"

namespace rtlsat::portfolio {
namespace {

using core::HybridClause;
using core::HybridLit;

// A distinct short clause per (a, b): ¬(n_a = 1) ∨ (n_b = 1).
HybridClause make_clause(int a, int b) {
  HybridClause c;
  c.lits.push_back(HybridLit::boolean(static_cast<ir::NetId>(a), false));
  c.lits.push_back(HybridLit::boolean(static_cast<ir::NetId>(b), true));
  c.learnt = true;
  c.origin = HybridClause::Origin::kConflict;
  return c;
}

TEST(ClausePoolTest, PublishThenFetchByPeer) {
  ClausePool pool;
  EXPECT_EQ(pool.publish(0, {make_clause(1, 2), make_clause(3, 4)}), 2u);
  EXPECT_EQ(pool.size(), 2u);

  std::size_t cursor = 0;
  std::vector<HybridClause> got;
  EXPECT_EQ(pool.fetch(1, &cursor, &got), 2u);
  EXPECT_EQ(cursor, 2u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].lits.size(), 2u);

  // Cursor is past everything: the idle fast path returns 0.
  EXPECT_EQ(pool.fetch(1, &cursor, &got), 0u);
  EXPECT_EQ(got.size(), 2u);
}

TEST(ClausePoolTest, FetchSkipsOwnEntries) {
  ClausePool pool;
  pool.publish(0, {make_clause(1, 2)});
  pool.publish(1, {make_clause(3, 4)});
  std::size_t cursor = 0;
  std::vector<HybridClause> got;
  EXPECT_EQ(pool.fetch(0, &cursor, &got), 1u);  // only worker 1's clause
  EXPECT_EQ(cursor, 2u);                        // but the cursor passes both
}

TEST(ClausePoolTest, DuplicatesSuppressed) {
  ClausePool pool;
  EXPECT_EQ(pool.publish(0, {make_clause(1, 2)}), 1u);
  EXPECT_EQ(pool.publish(1, {make_clause(1, 2)}), 0u);  // same clause
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ClausePoolTest, LengthCapRefusesLongClauses) {
  ClausePoolOptions options;
  options.max_clause_len = 2;
  ClausePool pool(options);
  HybridClause long_clause = make_clause(1, 2);
  long_clause.lits.push_back(HybridLit::boolean(static_cast<ir::NetId>(5), true));
  EXPECT_EQ(pool.publish(0, {long_clause}), 0u);
  EXPECT_EQ(pool.publish(0, {make_clause(1, 2)}), 1u);
}

TEST(ClausePoolTest, CapacityTurnsPoolReadOnly) {
  ClausePoolOptions options;
  options.capacity = 2;
  ClausePool pool(options);
  EXPECT_EQ(pool.publish(0, {make_clause(1, 2), make_clause(3, 4)}), 2u);
  EXPECT_EQ(pool.publish(0, {make_clause(5, 6)}), 0u);  // full
  EXPECT_EQ(pool.size(), 2u);

  // Existing entries remain fetchable (no eviction).
  std::size_t cursor = 0;
  std::vector<HybridClause> got;
  EXPECT_EQ(pool.fetch(1, &cursor, &got), 2u);
}

TEST(ClausePoolTest, ConcurrentPublishFetchDeliversEverything) {
  // 4 publishers × 64 distinct clauses each, one consumer polling; at the
  // end the consumer must have observed every peer clause exactly once.
  // Run under TSan this also proves the pool's locking discipline.
  constexpr int kPublishers = 4;
  constexpr int kPerWorker = 64;
  ClausePool pool;
  std::atomic<int> remaining{kPublishers};

  std::vector<std::thread> threads;
  threads.reserve(kPublishers);
  for (int w = 0; w < kPublishers; ++w) {
    threads.emplace_back([&pool, &remaining, w] {
      for (int i = 0; i < kPerWorker; ++i) {
        pool.publish(w, {make_clause(w * 1000 + i, w * 1000 + i + 500)});
      }
      remaining.fetch_sub(1);
    });
  }

  const int consumer = kPublishers;  // a worker id that never publishes
  std::size_t cursor = 0;
  std::vector<HybridClause> got;
  while (remaining.load() > 0) {
    pool.fetch(consumer, &cursor, &got);
  }
  for (std::thread& t : threads) t.join();
  pool.fetch(consumer, &cursor, &got);
  EXPECT_EQ(got.size(),
            static_cast<std::size_t>(kPublishers * kPerWorker));
}

TEST(PoolExchangeTest, BatchesAndCollects) {
  ClausePool pool;
  PoolExchange producer(&pool, 0);
  PoolExchange consumer(&pool, 1);

  // Offers below the batch size stay in the local outbox…
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(producer.offer(make_clause(i, i + 100)));
  }
  EXPECT_EQ(pool.size(), 0u);

  // …until collect() flushes them; the peer then sees all five.
  std::vector<HybridClause> none;
  producer.collect(&none);
  EXPECT_EQ(none.size(), 0u);  // own clauses are not echoed back
  EXPECT_EQ(pool.size(), 5u);
  EXPECT_EQ(producer.published(), 5u);

  std::vector<HybridClause> got;
  consumer.collect(&got);
  EXPECT_EQ(got.size(), 5u);
}

TEST(PoolExchangeTest, RefusesSharedProblemAndLongClauses) {
  ClausePool pool;
  PoolExchange exchange(&pool, 0);

  HybridClause shared = make_clause(1, 2);
  shared.origin = core::HybridClause::Origin::kShared;
  EXPECT_FALSE(exchange.offer(shared));  // no re-export of imports

  HybridClause problem = make_clause(3, 4);
  problem.origin = core::HybridClause::Origin::kProblem;
  problem.learnt = false;
  EXPECT_FALSE(exchange.offer(problem));  // peers already have the formula

  HybridClause long_clause = make_clause(5, 6);
  for (int i = 0; i < 16; ++i) {
    long_clause.lits.push_back(
        HybridLit::boolean(static_cast<ir::NetId>(100 + i), true));
  }
  EXPECT_FALSE(exchange.offer(long_clause));

  EXPECT_FALSE(exchange.offer(HybridClause{}));  // empty
}

}  // namespace
}  // namespace rtlsat::portfolio
