#include "parser/rtl_format.h"

#include <gtest/gtest.h>

#include "itc99/itc99.h"

namespace rtlsat::parser {
namespace {

TEST(Parse, CombinationalCircuit) {
  const ir::Circuit c = parse_circuit(R"(
    (circuit adder
      (input a 8)
      (input b 8)
      (net s (add a b))
      (net big (lt (const 100 8) s))
    ))");
  EXPECT_EQ(c.name(), "adder");
  const ir::NetId s = c.find_net("s");
  ASSERT_NE(s, ir::kNoNet);
  EXPECT_EQ(c.node(s).op, ir::Op::kAdd);
  EXPECT_EQ(c.width(s), 8);
}

TEST(Parse, NestedExpressions) {
  const ir::Circuit c = parse_circuit(R"(
    (circuit t
      (input x 4)
      (input s 1)
      (net out (mux s (add x (const 1 4)) (sub x (const 1 4))))
    ))");
  const ir::NetId out = c.find_net("out");
  ASSERT_NE(out, ir::kNoNet);
  EXPECT_EQ(c.node(out).op, ir::Op::kMux);
}

TEST(Parse, ImmediateOperators) {
  const ir::Circuit c = parse_circuit(R"(
    (circuit t
      (input x 8)
      (net a (mulc x 3))
      (net b (shl x 2))
      (net c (shr x 1))
      (net d (extract x 5 2))
      (net e (zext d 12))
    ))");
  EXPECT_EQ(c.node(c.find_net("a")).imm, 3);
  EXPECT_EQ(c.width(c.find_net("d")), 4);
  EXPECT_EQ(c.width(c.find_net("e")), 12);
}

TEST(Parse, SequentialCircuit) {
  const ir::SeqCircuit seq = parse_seq_circuit(R"(
    ; a 4-bit enabled counter
    (seq-circuit cnt
      (input en 1)
      (register q 4 0)
      (net q1 (add q (const 1 4)))
      (next q (mux en q1 q))
      (property bounded (lt q (const 15 4)))
    ))");
  EXPECT_EQ(seq.registers().size(), 1u);
  EXPECT_EQ(seq.registers()[0].init, 0);
  EXPECT_NE(seq.property("bounded"), ir::kNoNet);
}

TEST(Parse, CommentsAndWhitespace) {
  const ir::Circuit c = parse_circuit(
      "(circuit t ; name\n  (input a 1) ;; the input\n\t(net b (not a)))");
  EXPECT_NE(c.find_net("b"), ir::kNoNet);
}

TEST(Parse, ErrorsCarryLineNumbers) {
  try {
    parse_circuit("(circuit t\n  (input a 1)\n  (net b (frobnicate a)))");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(Parse, UnknownNetRejected) {
  EXPECT_THROW(parse_circuit("(circuit t (net b (not nothere)))"), ParseError);
}

TEST(Parse, RegisterOutsideSeqRejected) {
  EXPECT_THROW(parse_circuit("(circuit t (register q 4 0))"), ParseError);
}

TEST(Parse, WidthRangeEnforced) {
  EXPECT_THROW(parse_circuit("(circuit t (input a 0))"), ParseError);
  EXPECT_THROW(parse_circuit("(circuit t (input a 61))"), ParseError);
}


// Contracts the builder enforces with asserts must surface as ParseError
// on the file path — a malformed .rtl may never abort the process.
TEST(Parse, BuilderContractsRejectedAsParseErrors) {
  EXPECT_THROW(parse_circuit("(circuit t (net x (const 99 4)))"), ParseError);
  EXPECT_THROW(parse_seq_circuit("(seq-circuit t (register r 2 9) (next r r))"),
               ParseError);
  EXPECT_THROW(
      parse_circuit("(circuit t (input a 4) (net x (shl a 9)))"), ParseError);
  EXPECT_THROW(
      parse_circuit("(circuit t (input a 4) (net x (extract a 7 2)))"),
      ParseError);
  EXPECT_THROW(
      parse_circuit(
          "(circuit t (input a 4) (input b 8) (net x (add a b)))"),
      ParseError);
  EXPECT_THROW(
      parse_circuit("(circuit t (input a 4) (net x (not a)))"), ParseError);
  EXPECT_THROW(
      parse_circuit("(circuit t (input a 4) (net x (zext a 2)))"), ParseError);
  EXPECT_THROW(
      parse_circuit("(circuit t (input a 4) (net x (mulc a -1)))"), ParseError);
  EXPECT_THROW(
      parse_seq_circuit(
          "(seq-circuit t (input a 2) (net n (add a (const 1 2))) (next a n) "
          "(property p (le a (const 3 2))))"),
      ParseError);
  EXPECT_THROW(
      parse_seq_circuit(
          "(seq-circuit t (input a 4) (property p a))"),
      ParseError);
  EXPECT_THROW(
      parse_seq_circuit(
          "(seq-circuit t (register r 2 0) (input a 2) "
          "(property p (le r a)))"),
      ParseError);
}

TEST(Parse, DuplicateNamesRejected) {
  EXPECT_THROW(parse_circuit("(circuit t (input a 1) (input a 2))"),
               ParseError);
  EXPECT_THROW(
      parse_circuit("(circuit t (input a 1) (net x (not a)) (net x (not a)))"),
      ParseError);
  EXPECT_THROW(parse_seq_circuit(
                   "(seq-circuit t (register q 4 0) (register q 4 1) "
                   "(next q q))"),
               ParseError);
}

TEST(RoundTrip, CombinationalPreservesSemantics) {
  ir::Circuit c("t");
  const ir::NetId a = c.add_input("a", 8);
  const ir::NetId b = c.add_input("b", 8);
  const ir::NetId out = c.add_mux(c.add_lt(a, b), c.add_add(a, b),
                                  c.add_sub(a, b));
  c.set_net_name(out, "out");
  const ir::Circuit c2 = parse_circuit(write_circuit(c));
  const ir::NetId a2 = c2.find_net("a");
  const ir::NetId b2 = c2.find_net("b");
  const ir::NetId out2 = c2.find_net("out");
  ASSERT_NE(out2, ir::kNoNet);
  for (const auto& [av, bv] :
       std::vector<std::pair<std::int64_t, std::int64_t>>{
           {3, 200}, {200, 3}, {7, 7}}) {
    const auto v1 = c.evaluate({{a, av}, {b, bv}});
    const auto v2 = c2.evaluate({{a2, av}, {b2, bv}});
    EXPECT_EQ(v1[out], v2[out2]);
  }
}

TEST(RoundTrip, ItcCircuitsSurviveSerialization) {
  for (const std::string& name : itc99::available()) {
    const ir::SeqCircuit seq = itc99::build(name);
    const std::string text = write_seq_circuit(seq);
    const ir::SeqCircuit back = parse_seq_circuit(text);
    EXPECT_EQ(back.registers().size(), seq.registers().size()) << name;
    EXPECT_EQ(back.properties().size(), seq.properties().size()) << name;
    const auto counts1 = seq.comb().op_counts();
    const auto counts2 = back.comb().op_counts();
    EXPECT_EQ(counts1.arith, counts2.arith) << name;
    EXPECT_EQ(counts1.boolean, counts2.boolean) << name;
  }
}

TEST(FileIo, SaveAndLoad) {
  const ir::SeqCircuit seq = itc99::build("b01");
  const std::string path = ::testing::TempDir() + "/b01.rtl";
  save_seq_circuit(seq, path);
  const ir::SeqCircuit back = load_seq_circuit(path);
  EXPECT_EQ(back.comb().name(), "b01");
  EXPECT_THROW(load_seq_circuit("/nonexistent/dir/x.rtl"), std::runtime_error);
}

}  // namespace
}  // namespace rtlsat::parser
