#include "interval/interval.h"

#include <gtest/gtest.h>

namespace rtlsat {
namespace {

TEST(Interval, DefaultIsEmpty) {
  Interval iv;
  EXPECT_TRUE(iv.is_empty());
  EXPECT_EQ(iv.count(), 0u);
}

TEST(Interval, EmptyCanonicalForm) {
  // Every inverted construction collapses to the canonical ⟨1,0⟩ so that
  // operator== is structural.
  EXPECT_EQ(Interval(5, 3), Interval::empty());
  EXPECT_EQ(Interval(100, -100), Interval::empty());
}

TEST(Interval, PointProperties) {
  const Interval p = Interval::point(7);
  EXPECT_TRUE(p.is_point());
  EXPECT_FALSE(p.is_empty());
  EXPECT_EQ(p.count(), 1u);
  EXPECT_TRUE(p.contains(7));
  EXPECT_FALSE(p.contains(6));
}

TEST(Interval, FullWidthDomains) {
  EXPECT_EQ(Interval::full_width(1), Interval(0, 1));
  EXPECT_EQ(Interval::full_width(8), Interval(0, 255));
  EXPECT_EQ(Interval::full_width(60).hi(), (std::int64_t{1} << 60) - 1);
}

TEST(Interval, CountHandlesWideRanges) {
  EXPECT_EQ(Interval(0, 9).count(), 10u);
  EXPECT_EQ(Interval(-5, 5).count(), 11u);
}

TEST(Interval, ContainsInterval) {
  const Interval big(0, 10);
  EXPECT_TRUE(big.contains(Interval(2, 5)));
  EXPECT_TRUE(big.contains(big));
  EXPECT_TRUE(big.contains(Interval::empty()));  // vacuous
  EXPECT_FALSE(big.contains(Interval(5, 11)));
}

TEST(Interval, Intersects) {
  EXPECT_TRUE(Interval(0, 5).intersects(Interval(5, 9)));
  EXPECT_FALSE(Interval(0, 4).intersects(Interval(5, 9)));
  EXPECT_FALSE(Interval(0, 4).intersects(Interval::empty()));
  EXPECT_FALSE(Interval::empty().intersects(Interval::empty()));
}

TEST(Interval, Intersect) {
  EXPECT_EQ(Interval(0, 10).intersect(Interval(5, 20)), Interval(5, 10));
  EXPECT_EQ(Interval(0, 4).intersect(Interval(5, 9)), Interval::empty());
  EXPECT_EQ(Interval(3, 3).intersect(Interval(0, 10)), Interval::point(3));
}

TEST(Interval, Hull) {
  EXPECT_EQ(Interval(0, 2).hull(Interval(8, 9)), Interval(0, 9));
  EXPECT_EQ(Interval::empty().hull(Interval(1, 2)), Interval(1, 2));
  EXPECT_EQ(Interval(1, 2).hull(Interval::empty()), Interval(1, 2));
}

TEST(Interval, BelowAbove) {
  const Interval iv(3, 8);
  EXPECT_EQ(iv.below(6), Interval(3, 5));
  EXPECT_EQ(iv.below(3), Interval::empty());
  EXPECT_EQ(iv.below(100), iv);
  EXPECT_EQ(iv.above(5), Interval(6, 8));
  EXPECT_EQ(iv.above(8), Interval::empty());
  EXPECT_EQ(iv.above(-5), iv);
  EXPECT_EQ(iv.at_most(5), Interval(3, 5));
  EXPECT_EQ(iv.at_least(5), Interval(5, 8));
}

TEST(Interval, MinusTrimsEnds) {
  const Interval iv(0, 10);
  EXPECT_EQ(iv.minus(Interval(0, 3)), Interval(4, 10));
  EXPECT_EQ(iv.minus(Interval(8, 10)), Interval(0, 7));
  EXPECT_EQ(iv.minus(Interval(-5, 20)), Interval::empty());
  EXPECT_EQ(iv.minus(Interval(20, 30)), iv);  // disjoint: unchanged
}

TEST(Interval, MinusMiddleHoleIsSoundNoOp) {
  // A hole strictly inside is not representable as one interval; the
  // over-approximation keeps the original.
  const Interval iv(0, 10);
  EXPECT_EQ(iv.minus(Interval(4, 6)), iv);
}

TEST(Interval, MinusPoint) {
  EXPECT_EQ(Interval(3, 3).minus(Interval::point(3)), Interval::empty());
  EXPECT_EQ(Interval(3, 4).minus(Interval::point(3)), Interval::point(4));
}

TEST(Interval, ToString) {
  EXPECT_EQ(Interval(1, 7).to_string(), "<1,7>");
  EXPECT_EQ(Interval::point(5).to_string(), "<5>");
  EXPECT_EQ(Interval::empty().to_string(), "<empty>");
}

TEST(Interval, SaturatingHelpers) {
  const auto max = std::numeric_limits<std::int64_t>::max();
  const auto min = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(sat_add(max, 1), max);
  EXPECT_EQ(sat_add(1, 2), 3);
  EXPECT_EQ(sat_sub(min, 1), min);
  EXPECT_EQ(sat_mul(max, 2), max);
  EXPECT_EQ(sat_mul(min, 2), min);
  EXPECT_EQ(sat_mul(-3, 4), -12);
}

}  // namespace
}  // namespace rtlsat
