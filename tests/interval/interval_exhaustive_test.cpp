// Exhaustive soundness checks for every interval transfer function at small
// widths, plus directed regressions for the saturation bugs the fuzzing
// subsystem flushed out (see docs/fuzzing.md).
//
// The exhaustive driver lives in src/fuzz/op_fuzz.cpp: for every width ≤ 5
// it enumerates every interval (and every interval pair for binary rules),
// computes the true image/preimage by brute force, and checks containment.
// This subsumes the old per-op spot checks for small widths; wide-width
// behaviour is covered by the directed tests below and the randomized
// sweeps in interval_ops_test.cpp.

#include <gtest/gtest.h>

#include <cstdint>

#include "fuzz/op_fuzz.h"
#include "interval/interval.h"
#include "interval/interval_ops.h"

namespace rtlsat::iops {
namespace {

class ExhaustiveWidth : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveWidth, EveryRuleSoundOnEveryInterval) {
  std::int64_t checks = 0;
  const std::vector<std::string> violations =
      fuzz::exhaustive_interval_check(GetParam(), &checks);
  EXPECT_GT(checks, 0);
  ASSERT_TRUE(violations.empty())
      << violations.size() << " violations at width " << GetParam()
      << "; first: " << violations.front();
}

INSTANTIATE_TEST_SUITE_P(Widths, ExhaustiveWidth, ::testing::Values(1, 2, 3, 4),
                         ::testing::PrintToStringParamName());

// Width 5 multiplies the pair enumeration ~16× over width 4; keep it in a
// separate test so a slow sanitizer run is attributable.
TEST(ExhaustiveWidth5, EveryRuleSoundOnEveryInterval) {
  std::int64_t checks = 0;
  const std::vector<std::string> violations =
      fuzz::exhaustive_interval_check(5, &checks);
  EXPECT_GT(checks, 0);
  ASSERT_TRUE(violations.empty())
      << violations.size() << " violations at width 5; first: "
      << violations.front();
}

// ---------------------------------------------- saturation regressions

// back_extract with lo_bit + field_width > 62: the window 2^(hi_bit+1)
// used to be computed with a raw signed multiply, which is UB past 62 and
// in practice produced a garbage (often negative) window. The call must
// stay a sound no-op (or an exact refinement), not corrupt the domain.
TEST(SaturationRegression, BackExtractHighWindow) {
  const Interval x(0, (std::int64_t{1} << 60) - 1);
  const Interval z(5, 9);
  const Interval narrowed = back_extract(z, x, /*hi_bit=*/62, /*lo_bit=*/30);
  // Any x whose [62:30] field lies in [5,9] must survive.
  const std::int64_t witness = std::int64_t{7} << 30;
  EXPECT_FALSE(narrowed.is_empty());
  EXPECT_TRUE(narrowed.contains(witness));

  // lo_bit = 0 exact-inversion path at the maximum legal field width (60):
  // window = 2^60, the widest the contract allows — with lo_bit = 0 the
  // window cannot saturate, only the lo_bit > 0 recomposition above can.
  const Interval exact =
      back_extract(Interval(3, 4), Interval(0, 100), /*hi_bit=*/59,
                   /*lo_bit=*/0);
  EXPECT_TRUE(exact.contains(3));
  EXPECT_TRUE(exact.contains(4));
  EXPECT_FALSE(exact.contains(100));
}

// fwd_shl at width 60 with shift 59: the raw product 16·2^59 = 2^63
// saturates, and the old fwd_mod fast path then "exactly" narrowed the
// image to a single bogus residue, flipping SAT instances to UNSAT
// (tests/regress/shl-saturation.rtl). The sound image must keep every true
// value: 16·2^59 mod 2^60 = 0 and 17·2^59 mod 2^60 = 2^59.
TEST(SaturationRegression, ShlSaturatedImageStaysFull) {
  const Interval image = fwd_shl(Interval(16, 17), /*k=*/59, /*width=*/60);
  EXPECT_TRUE(image.contains(0));
  EXPECT_TRUE(image.contains(std::int64_t{1} << 59));
}

// fwd_mod must refuse the same-residue fast path when an endpoint sits on
// a saturation rail — the interval's length is a lie there.
TEST(SaturationRegression, ModOfSaturatedIntervalIsFullRange) {
  const Interval saturated = fwd_mul_const(Interval(16, 17),
                                           std::int64_t{1} << 59);
  ASSERT_TRUE(endpoint_saturated(saturated.lo()) ||
              endpoint_saturated(saturated.hi()));
  const std::int64_t m = std::int64_t{1} << 60;
  const Interval image = fwd_mod(saturated, m);
  EXPECT_EQ(image, Interval(0, m - 1));
}

// fwd_concat with operands big enough to saturate the shift-and-add must
// widen to the full representable range rather than return a rail-bounded
// interval whose *lower* end excludes true values.
TEST(SaturationRegression, ConcatSaturatedFallsBackToFullRange) {
  const Interval hi(1, (std::int64_t{1} << 59) - 1);
  const Interval lo(0, 3);
  const Interval image = fwd_concat(hi, lo, /*low_width=*/60);
  EXPECT_TRUE(image.contains(0));
  EXPECT_TRUE(image.contains(kSatMax));
}

// at_most/at_least with a cut on a saturation rail: the old below(v+1)/
// above(v−1) forms overflowed int64 there (caught by the randomized op
// fuzzer under UBSan when comparator narrowings met rail endpoints).
TEST(SaturationRegression, ComparatorCutOnSaturationRail) {
  const Interval all(kSatMin, kSatMax);
  EXPECT_EQ(all.at_most(kSatMax), all);
  EXPECT_EQ(all.at_least(kSatMin), all);
  EXPECT_EQ(all.at_most(kSatMin), Interval(kSatMin, kSatMin));
  EXPECT_EQ(all.at_least(kSatMax), Interval(kSatMax, kSatMax));
  const Interval mid(-5, 5);
  EXPECT_EQ(mid.at_most(kSatMax), mid);
  EXPECT_EQ(mid.at_least(kSatMin), mid);
}

}  // namespace
}  // namespace rtlsat::iops
