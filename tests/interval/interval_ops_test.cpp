#include "interval/interval_ops.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rtlsat::iops {
namespace {

// ------------------------------------------------------------- forward

TEST(Forward, Add) {
  EXPECT_EQ(fwd_add(Interval(1, 3), Interval(10, 20)), Interval(11, 23));
  EXPECT_TRUE(fwd_add(Interval::empty(), Interval(0, 1)).is_empty());
}

TEST(Forward, Sub) {
  EXPECT_EQ(fwd_sub(Interval(5, 9), Interval(1, 3)), Interval(2, 8));
}

TEST(Forward, Neg) {
  EXPECT_EQ(fwd_neg(Interval(2, 5)), Interval(-5, -2));
}

TEST(Forward, MulConst) {
  EXPECT_EQ(fwd_mul_const(Interval(1, 4), 3), Interval(3, 12));
  EXPECT_EQ(fwd_mul_const(Interval(1, 4), -2), Interval(-8, -2));
  EXPECT_EQ(fwd_mul_const(Interval(1, 4), 0), Interval::point(0));
}

TEST(Forward, NotComplementsWithinWidth) {
  EXPECT_EQ(fwd_not(Interval(0, 0), 1), Interval::point(1));
  EXPECT_EQ(fwd_not(Interval(3, 10), 4), Interval(5, 12));
}

TEST(Forward, ModExactWhenNoWrap) {
  EXPECT_EQ(fwd_mod(Interval(17, 19), 16), Interval(1, 3));
  EXPECT_EQ(fwd_mod(Interval(3, 5), 16), Interval(3, 5));
}

TEST(Forward, ModFullWhenWrapping) {
  EXPECT_EQ(fwd_mod(Interval(14, 18), 16), Interval(0, 15));
  EXPECT_EQ(fwd_mod(Interval(0, 100), 16), Interval(0, 15));
}

TEST(Forward, Lshr) {
  EXPECT_EQ(fwd_lshr(Interval(8, 23), 2), Interval(2, 5));
  EXPECT_EQ(fwd_lshr(Interval(0, 3), 2), Interval(0, 0));
}

TEST(Forward, ShlWrapsAtWidth) {
  EXPECT_EQ(fwd_shl(Interval(1, 3), 2, 8), Interval(4, 12));
  // 3 << 2 = 12 within width 4 is fine, but 7 << 2 = 28 wraps.
  EXPECT_EQ(fwd_shl(Interval(7, 7), 2, 4), Interval::point(12));
}

TEST(Forward, ConcatComposesValues) {
  // hi=⟨2⟩, lo=⟨1,3⟩, low width 4 ⟹ z ∈ ⟨33,35⟩.
  EXPECT_EQ(fwd_concat(Interval::point(2), Interval(1, 3), 4),
            Interval(33, 35));
}

TEST(Forward, Extract) {
  // bits [3:2] of 0b1101 (13) = 0b11 = 3.
  EXPECT_EQ(fwd_extract(Interval::point(13), 3, 2), Interval::point(3));
  // Wide operand covers all field values.
  EXPECT_EQ(fwd_extract(Interval(0, 255), 3, 2), Interval(0, 3));
}

TEST(Forward, MinMax) {
  EXPECT_EQ(fwd_min(Interval(2, 9), Interval(4, 6)), Interval(2, 6));
  EXPECT_EQ(fwd_max(Interval(2, 9), Interval(4, 6)), Interval(4, 9));
}

TEST(Forward, AddWrap) {
  EXPECT_EQ(fwd_add_wrap(Interval(250, 252), Interval(10, 10), 8),
            Interval(4, 6));
  EXPECT_EQ(fwd_add_wrap(Interval(0, 200), Interval(0, 200), 8),
            Interval(0, 255));
}

TEST(Forward, SubWrap) {
  EXPECT_EQ(fwd_sub_wrap(Interval(2, 4), Interval(10, 10), 8),
            Interval(248, 250));
}

TEST(Forward, ComparisonsThreeValued) {
  EXPECT_EQ(fwd_lt(Interval(0, 3), Interval(4, 9)), Interval::point(1));
  EXPECT_EQ(fwd_lt(Interval(4, 9), Interval(0, 4)), Interval::point(0));
  EXPECT_EQ(fwd_lt(Interval(0, 5), Interval(3, 9)), Interval::booleans());
  EXPECT_EQ(fwd_le(Interval(0, 3), Interval(3, 9)), Interval::point(1));
  EXPECT_EQ(fwd_eq(Interval::point(3), Interval::point(3)), Interval::point(1));
  EXPECT_EQ(fwd_eq(Interval(0, 2), Interval(3, 5)), Interval::point(0));
  EXPECT_EQ(fwd_eq(Interval(0, 3), Interval(3, 5)), Interval::booleans());
}

// ------------------------------------------------------------- backward

TEST(Backward, AddInverse) {
  // z = x + y, z ∈ ⟨10,12⟩, y ∈ ⟨4,5⟩ ⟹ x ∈ ⟨5,8⟩.
  EXPECT_EQ(back_add_x(Interval(10, 12), Interval(4, 5)), Interval(5, 8));
}

TEST(Backward, SubInverse) {
  // z = x − y: x ⊇ z + y; y ⊇ x − z.
  EXPECT_EQ(back_sub_x(Interval(2, 3), Interval(1, 1)), Interval(3, 4));
  EXPECT_EQ(back_sub_y(Interval(2, 3), Interval(10, 10)), Interval(7, 8));
}

TEST(Backward, MulConstRoundsInward) {
  // 3x ∈ ⟨7,11⟩ ⟹ x ∈ ⟨3,3⟩ (only 9 is a multiple of 3 in range).
  EXPECT_EQ(back_mul_const(Interval(7, 11), 3), Interval(3, 3));
  EXPECT_EQ(back_mul_const(Interval(6, 12), 3), Interval(2, 4));
  // Negative k: −2x ∈ ⟨−8,−4⟩ ⟹ x ∈ ⟨2,4⟩.
  EXPECT_EQ(back_mul_const(Interval(-8, -4), -2), Interval(2, 4));
}

TEST(Backward, Lshr) {
  // floor(x/4) ∈ ⟨2,3⟩ ⟹ x ∈ ⟨8,15⟩.
  EXPECT_EQ(back_lshr(Interval(2, 3), 2), Interval(8, 15));
}

TEST(Backward, AddWrapBranches) {
  // 8-bit: z = x + y (mod 256), z=⟨5⟩, y=⟨10⟩ ⟹ x = −5 or 251 ⟹ 251.
  EXPECT_EQ(back_add_wrap_x(Interval::point(5), Interval::point(10),
                            Interval(0, 255), 8),
            Interval::point(251));
  // No wrap case: z=⟨30⟩, y=⟨10⟩ ⟹ x=20.
  EXPECT_EQ(back_add_wrap_x(Interval::point(30), Interval::point(10),
                            Interval(0, 255), 8),
            Interval::point(20));
}

TEST(Backward, SubWrapBranches) {
  // z = x − y mod 256, z=⟨250⟩, y=⟨10⟩ ⟹ x = 260 or 4 ⟹ 4.
  EXPECT_EQ(back_sub_wrap_x(Interval::point(250), Interval::point(10),
                            Interval(0, 255), 8),
            Interval::point(4));
  // y side: z=⟨250⟩, x=⟨4⟩ ⟹ y = −246 or 10 ⟹ 10.
  EXPECT_EQ(back_sub_wrap_y(Interval::point(250), Interval::point(4),
                            Interval(0, 255), 8),
            Interval::point(10));
}

TEST(Backward, ConcatParts) {
  // z = hi·16 + lo, z ∈ ⟨33,35⟩ ⟹ hi ∈ ⟨2,2⟩ and (hi=2) lo ∈ ⟨1,3⟩.
  EXPECT_EQ(back_concat_hi(Interval(33, 35), 4), Interval(2, 2));
  EXPECT_EQ(back_concat_lo(Interval(33, 35), Interval::point(2),
                           Interval(0, 15), 4),
            Interval(1, 3));
}

TEST(Backward, ExtractExactWhenOuterBitsFixed) {
  // x ∈ ⟨12,15⟩ = 0b11xx: field [1:0] ∈ ⟨1,2⟩ ⟹ x ∈ ⟨13,14⟩.
  EXPECT_EQ(back_extract(Interval(1, 2), Interval(12, 15), 1, 0),
            Interval(13, 14));
}

TEST(Backward, ExtractConflictDetected) {
  // x ∈ ⟨0,3⟩ has bits [3:2] = 0 always; requiring the field = 2 is empty.
  EXPECT_TRUE(back_extract(Interval::point(2), Interval(0, 3), 3, 2).is_empty());
}

TEST(Backward, ExtractSoundNoOpWhenAmbiguous) {
  const Interval x(0, 255);
  EXPECT_EQ(back_extract(Interval::point(1), x, 3, 2), x);
}

TEST(Backward, MinNarrows) {
  // z = min(x,y) = ⟨5,6⟩ with y ∈ ⟨9,12⟩ (cannot reach 6) ⟹ x ∈ ⟨5,6⟩.
  EXPECT_EQ(back_min_x(Interval(5, 6), Interval(9, 12), Interval(0, 255)),
            Interval(5, 6));
  // If y could supply the minimum, x is only bounded below.
  EXPECT_EQ(back_min_x(Interval(5, 6), Interval(5, 12), Interval(0, 255)),
            Interval(5, 255));
}

TEST(Backward, MaxNarrows) {
  EXPECT_EQ(back_max_x(Interval(5, 6), Interval(0, 3), Interval(0, 255)),
            Interval(5, 6));
}

// -------------------------------------------------- comparator narrowing

TEST(Narrow, LtMatchesPaperEquation3) {
  // Paper example: x − z < 0, x ∈ ⟨0,15⟩, z ∈ ⟨0,15⟩ ⟹ x ∈ ⟨0,14⟩, z ∈ ⟨1,15⟩.
  const Pair p = narrow_lt(Interval(0, 15), Interval(0, 15));
  EXPECT_EQ(p.x, Interval(0, 14));
  EXPECT_EQ(p.y, Interval(1, 15));
}

TEST(Narrow, LtEmptyWhenImpossible) {
  const Pair p = narrow_lt(Interval(9, 12), Interval(0, 5));
  EXPECT_TRUE(p.x.is_empty());
  EXPECT_TRUE(p.y.is_empty());
}

TEST(Narrow, Le) {
  const Pair p = narrow_le(Interval(0, 15), Interval(3, 7));
  EXPECT_EQ(p.x, Interval(0, 7));
  EXPECT_EQ(p.y, Interval(3, 7));
}

TEST(Narrow, EqIntersectsBoth) {
  const Pair p = narrow_eq(Interval(0, 8), Interval(5, 20));
  EXPECT_EQ(p.x, Interval(5, 8));
  EXPECT_EQ(p.y, Interval(5, 8));
}

TEST(Narrow, NeTrimsPointAtBoundary) {
  const Pair p = narrow_ne(Interval(3, 8), Interval::point(3));
  EXPECT_EQ(p.x, Interval(4, 8));
  EXPECT_EQ(p.y, Interval::point(3));
}

// ------------------------------------------- randomized soundness sweeps

struct WrapCase {
  int width;
  std::uint64_t seed;
};

class WrapSoundness : public ::testing::TestWithParam<WrapCase> {};

// Forward wrap rules must cover every concrete outcome; backward rules must
// never exclude a participating value.
TEST_P(WrapSoundness, AddSubRandomized) {
  const auto [width, seed] = GetParam();
  Rng rng(seed);
  const std::int64_t m = std::int64_t{1} << width;
  for (int iter = 0; iter < 300; ++iter) {
    auto rand_iv = [&]() {
      std::int64_t a = rng.range(0, m - 1);
      std::int64_t b = rng.range(0, m - 1);
      if (a > b) std::swap(a, b);
      return Interval(a, b);
    };
    const Interval x = rand_iv(), y = rand_iv();
    const Interval zs = fwd_add_wrap(x, y, width);
    const Interval zd = fwd_sub_wrap(x, y, width);
    // Sample concrete points and check membership.
    for (int s = 0; s < 10; ++s) {
      const std::int64_t xv = rng.range(x.lo(), x.hi());
      const std::int64_t yv = rng.range(y.lo(), y.hi());
      ASSERT_TRUE(zs.contains((xv + yv) % m));
      ASSERT_TRUE(zd.contains(((xv - yv) % m + m) % m));
      // Backward soundness: xv must survive narrowing by (z=exact sum).
      const Interval back = back_add_wrap_x(Interval::point((xv + yv) % m),
                                            Interval::point(yv), x, width);
      ASSERT_TRUE(back.contains(xv));
    }
  }
}

// Widths ≤ 5 are covered exhaustively (every interval pair, every value) in
// interval_exhaustive_test.cpp; the randomized sweep only earns its keep at
// widths the enumeration cannot reach.
INSTANTIATE_TEST_SUITE_P(Widths, WrapSoundness,
                         ::testing::Values(WrapCase{8, 33}, WrapCase{10, 44},
                                           WrapCase{24, 55}, WrapCase{52, 66}));

}  // namespace
}  // namespace rtlsat::iops
