// Property test: interval propagation must never exclude a real solution.
// For a random circuit and a random concrete input assignment, assume the
// goal takes its evaluated value and propagate — every net's interval must
// still contain that net's evaluated value. This catches any unsound
// narrowing rule (forward or backward) in one sweep.
#include <gtest/gtest.h>

#include "prop/engine.h"
#include "util/rng.h"

namespace rtlsat::prop {
namespace {

using ir::Circuit;
using ir::NetId;

Circuit random_circuit(Rng& rng, int width, int steps) {
  Circuit c("rand");
  std::vector<NetId> words;
  std::vector<NetId> bools;
  for (int i = 0; i < 3; ++i)
    words.push_back(c.add_input("w" + std::to_string(i), width));
  for (int i = 0; i < 2; ++i)
    bools.push_back(c.add_input("b" + std::to_string(i), 1));
  words.push_back(c.add_const(rng.range(0, (1 << width) - 1), width));
  auto word = [&]() { return words[rng.below(words.size())]; };
  auto boolean = [&]() { return bools[rng.below(bools.size())]; };
  for (int step = 0; step < steps; ++step) {
    switch (rng.below(12)) {
      case 0: words.push_back(c.add_add(word(), word())); break;
      case 1: words.push_back(c.add_sub(word(), word())); break;
      case 2: words.push_back(c.add_mux(boolean(), word(), word())); break;
      case 3: bools.push_back(c.add_lt(word(), word())); break;
      case 4: bools.push_back(c.add_le(word(), word())); break;
      case 5: bools.push_back(c.add_and(boolean(), boolean())); break;
      case 6: bools.push_back(c.add_or(boolean(), boolean())); break;
      case 7: bools.push_back(c.add_xor(boolean(), boolean())); break;
      case 8: words.push_back(c.add_notw(word())); break;
      case 9: words.push_back(c.add_shr(word(), 1)); break;
      case 10: words.push_back(c.add_mulc(word(), 3)); break;
      case 11:
        words.push_back(
            c.add_zext(c.add_extract(word(), width - 1, 1), width));
        break;
    }
  }
  return c;
}

class PropSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropSoundness, IntervalsContainConcreteEvaluation) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    const int width = 3 + static_cast<int>(rng.below(6));
    const Circuit c = random_circuit(rng, width, 18);
    std::unordered_map<NetId, std::int64_t> inputs;
    for (const NetId in : c.inputs())
      inputs[in] = rng.range(0, c.domain(in).hi());
    const auto values = c.evaluate(inputs);

    Engine engine(c);
    ASSERT_TRUE(engine.propagate());
    // Pin a random selection of nets to their evaluated values (always a
    // consistent scenario) and propagate.
    for (int pins = 0; pins < 6; ++pins) {
      const NetId net = static_cast<NetId>(rng.below(c.num_nets()));
      ASSERT_TRUE(engine.narrow(net, Interval::point(values[net]),
                                ReasonKind::kAssumption))
          << "pinning " << c.net_name(net);
      ASSERT_TRUE(engine.propagate()) << "seed " << GetParam();
    }
    for (NetId id = 0; id < c.num_nets(); ++id) {
      ASSERT_TRUE(engine.interval(id).contains(values[id]))
          << "net " << c.net_name(id) << " interval "
          << engine.interval(id).to_string() << " value " << values[id];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropSoundness,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// The dual check on the engine's monotonicity: re-propagating without new
// narrowings never changes anything.
TEST(PropFixpoint, Idempotent) {
  Rng rng(123);
  const Circuit c = random_circuit(rng, 6, 25);
  Engine engine(c);
  ASSERT_TRUE(engine.propagate());
  const std::size_t events = engine.trail().size();
  ASSERT_TRUE(engine.propagate());
  EXPECT_EQ(engine.trail().size(), events);
}

}  // namespace
}  // namespace rtlsat::prop
