#include "prop/engine.h"

#include <gtest/gtest.h>

namespace rtlsat::prop {
namespace {

using ir::Circuit;
using ir::NetId;

TEST(Engine, InitialDomains) {
  Circuit c("t");
  const NetId a = c.add_input("a", 8);
  const NetId k = c.add_const(7, 4);
  Engine engine(c);
  EXPECT_EQ(engine.interval(a), Interval(0, 255));
  EXPECT_EQ(engine.interval(k), Interval::point(7));
  EXPECT_EQ(engine.bool_value(a), -1);
}

TEST(Engine, PropagatesToFixpoint) {
  // A chain: z = (x + 1) < y, assert z and narrow y.
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId z = c.add_lt(c.add_inc(x), y);
  Engine engine(c);
  ASSERT_TRUE(engine.narrow(z, Interval::point(1), ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(y, Interval(0, 10), ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  // x+1 < y ≤ 10 ⟹ x+1 ≤ 9... x+1 can wrap, but x ≤ 8 comes from the
  // non-wrapping branch being the only one below 10.
  EXPECT_LE(engine.interval(x).lo(), 8);
  EXPECT_FALSE(engine.interval(x).is_empty());
}

TEST(Engine, DetectsConflict) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_not(a);
  Engine engine(c);
  ASSERT_TRUE(engine.narrow(a, Interval::point(1), ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(b, Interval::point(1), ReasonKind::kAssumption));
  EXPECT_FALSE(engine.propagate());
  EXPECT_TRUE(engine.in_conflict());
}

TEST(Engine, TrailRecordsEventsWithReasons) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId g = c.add_and(a, b);
  Engine engine(c);
  ASSERT_TRUE(engine.narrow(g, Interval::point(1), ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  EXPECT_EQ(engine.bool_value(a), 1);
  EXPECT_EQ(engine.bool_value(b), 1);
  // Implied events carry kNode reasons referencing the AND gate.
  const std::int32_t ea = engine.latest_event(a);
  ASSERT_GE(ea, 0);
  EXPECT_EQ(engine.trail()[ea].kind, ReasonKind::kNode);
  EXPECT_EQ(engine.trail()[ea].reason_id, g);
  // The gate event is among a's antecedents.
  const auto ants = engine.all_antecedents(ea);
  bool found = false;
  for (std::int32_t e : ants) found = found || engine.trail()[e].net == g;
  EXPECT_TRUE(found);
}

TEST(Engine, RollbackRestoresDomains) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_inc(x);
  Engine engine(c);
  const std::size_t mark = engine.mark();
  ASSERT_TRUE(engine.narrow(x, Interval(3, 5), ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  EXPECT_EQ(engine.interval(y), Interval(4, 6));
  engine.rollback_to(mark);
  EXPECT_EQ(engine.interval(x), Interval(0, 255));
  EXPECT_EQ(engine.interval(y), Interval(0, 255));
  EXPECT_EQ(engine.latest_event(x), -1);
}

TEST(Engine, BacktrackToLevelUndoesDeeperEvents) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  Engine engine(c);
  ASSERT_TRUE(engine.narrow(a, Interval::point(1), ReasonKind::kAssumption));
  engine.push_level();
  ASSERT_TRUE(engine.narrow(b, Interval::point(0), ReasonKind::kDecision));
  EXPECT_EQ(engine.level(), 1u);
  engine.backtrack_to_level(0);
  EXPECT_EQ(engine.level(), 0u);
  EXPECT_EQ(engine.bool_value(a), 1);   // level-0 fact survives
  EXPECT_EQ(engine.bool_value(b), -1);  // decision undone
}

TEST(Engine, ConflictClearsOnRollback) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  Engine engine(c);
  const std::size_t mark = engine.mark();
  ASSERT_TRUE(engine.narrow(a, Interval::point(1), ReasonKind::kAssumption));
  EXPECT_FALSE(engine.narrow(a, Interval::point(0), ReasonKind::kAssumption));
  EXPECT_TRUE(engine.in_conflict());
  engine.rollback_to(mark);
  EXPECT_FALSE(engine.in_conflict());
}

TEST(Engine, NarrowingIsMonotonic) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  Engine engine(c);
  ASSERT_TRUE(engine.narrow(x, Interval(0, 100), ReasonKind::kAssumption));
  // Widening attempts are silent no-ops.
  ASSERT_TRUE(engine.narrow(x, Interval(0, 200), ReasonKind::kAssumption));
  EXPECT_EQ(engine.interval(x), Interval(0, 100));
  EXPECT_EQ(engine.trail().size(), 1u);
}

TEST(Engine, AllBooleansAssigned) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId x = c.add_input("x", 8);
  Engine engine(c);
  EXPECT_FALSE(engine.all_booleans_assigned());
  ASSERT_TRUE(engine.narrow(a, Interval::point(0), ReasonKind::kAssumption));
  EXPECT_TRUE(engine.all_booleans_assigned());  // x is a word net
  (void)x;
}

TEST(Engine, CountsDatapathNarrowings) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId a = c.add_input("a", 1);
  Engine engine(c);
  ASSERT_TRUE(engine.narrow(x, Interval(0, 9), ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(a, Interval::point(1), ReasonKind::kAssumption));
  EXPECT_EQ(engine.num_datapath_narrowings(), 1);
}

// The paper's worked interval example from §2.2: x − z < 0 with both in
// ⟨0,15⟩ narrows to x ∈ ⟨0,14⟩, z ∈ ⟨1,15⟩.
TEST(Engine, PaperSection22Example) {
  Circuit c("t");
  const NetId x = c.add_input("x", 4);
  const NetId z = c.add_input("z", 4);
  const NetId lt = c.add_lt(x, z);
  Engine engine(c);
  ASSERT_TRUE(engine.narrow(lt, Interval::point(1), ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  EXPECT_EQ(engine.interval(x), Interval(0, 14));
  EXPECT_EQ(engine.interval(z), Interval(1, 15));
}

}  // namespace
}  // namespace rtlsat::prop
