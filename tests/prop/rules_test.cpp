#include "prop/rules.h"

#include <gtest/gtest.h>

namespace rtlsat::prop {
namespace {

using ir::Circuit;
using ir::NetId;

// Applies node_rules for one node against explicit domains and returns the
// narrowings as a map-like vector.
std::vector<Narrowing> run(const Circuit& c, NetId node,
                           std::vector<Interval> dom) {
  std::vector<Narrowing> out;
  node_rules(c, node, dom, out);
  return out;
}

Interval narrowed(const std::vector<Narrowing>& out, NetId net,
                  const Interval& fallback) {
  for (const auto& nw : out) {
    if (nw.net == net) return nw.interval;
  }
  return fallback;
}

std::vector<Interval> full_domains(const Circuit& c) {
  std::vector<Interval> dom;
  for (NetId id = 0; id < c.num_nets(); ++id) {
    dom.push_back(c.node(id).op == ir::Op::kConst
                      ? Interval::point(c.node(id).imm)
                      : c.domain(id));
  }
  return dom;
}

TEST(RuleAnd, ForwardFalseDominates) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId g = c.add_and(a, b);
  auto dom = full_domains(c);
  dom[a] = Interval::point(0);
  const auto out = run(c, g, dom);
  EXPECT_EQ(narrowed(out, g, dom[g]), Interval::point(0));
}

TEST(RuleAnd, BackwardOutputTrueForcesInputs) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId g = c.add_and(a, b);
  auto dom = full_domains(c);
  dom[g] = Interval::point(1);
  const auto out = run(c, g, dom);
  EXPECT_EQ(narrowed(out, a, dom[a]), Interval::point(1));
  EXPECT_EQ(narrowed(out, b, dom[b]), Interval::point(1));
}

TEST(RuleAnd, LastFreeInputForcedOnZeroOutput) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId g = c.add_and(a, b);
  auto dom = full_domains(c);
  dom[g] = Interval::point(0);
  dom[a] = Interval::point(1);
  const auto out = run(c, g, dom);
  EXPECT_EQ(narrowed(out, b, dom[b]), Interval::point(0));
}

TEST(RuleOr, UnitPropagation) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId g = c.add_or(a, b);
  auto dom = full_domains(c);
  dom[g] = Interval::point(1);
  dom[a] = Interval::point(0);
  const auto out = run(c, g, dom);
  EXPECT_EQ(narrowed(out, b, dom[b]), Interval::point(1));
}

TEST(RuleXor, InfersThirdFromTwo) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId g = c.add_xor(a, b);
  auto dom = full_domains(c);
  dom[g] = Interval::point(1);
  dom[a] = Interval::point(1);
  const auto out = run(c, g, dom);
  EXPECT_EQ(narrowed(out, b, dom[b]), Interval::point(0));
}

TEST(RuleMux, SelectKnownBindsBranch) {
  Circuit c("t");
  const NetId s = c.add_input("s", 1);
  const NetId t = c.add_input("t", 8);
  const NetId e = c.add_input("e", 8);
  const NetId m = c.add_mux(s, t, e);
  auto dom = full_domains(c);
  dom[s] = Interval::point(1);
  dom[t] = Interval(3, 9);
  dom[m] = Interval(0, 5);
  const auto out = run(c, m, dom);
  EXPECT_EQ(narrowed(out, m, dom[m]), Interval(3, 5));
  EXPECT_EQ(narrowed(out, t, dom[t]), Interval(3, 5));
}

TEST(RuleMux, OutputHullWhenSelectFree) {
  Circuit c("t");
  const NetId s = c.add_input("s", 1);
  const NetId t = c.add_input("t", 8);
  const NetId e = c.add_input("e", 8);
  const NetId m = c.add_mux(s, t, e);
  auto dom = full_domains(c);
  dom[t] = Interval(1, 3);
  dom[e] = Interval(7, 9);
  const auto out = run(c, m, dom);
  EXPECT_EQ(narrowed(out, m, dom[m]), Interval(1, 9));
}

TEST(RuleMux, DeadBranchForcesSelect) {
  // The §4.2 situation: the required output excludes one branch entirely.
  Circuit c("t");
  const NetId s = c.add_input("s", 1);
  const NetId t = c.add_input("t", 8);
  const NetId e = c.add_input("e", 8);
  const NetId m = c.add_mux(s, t, e);
  auto dom = full_domains(c);
  dom[t] = Interval(6, 7);   // w2-like
  dom[e] = Interval(0, 7);   // w3-like
  dom[m] = Interval::point(5);
  const auto out = run(c, m, dom);
  EXPECT_EQ(narrowed(out, s, dom[s]), Interval::point(0));
}

TEST(RuleMux, BothBranchesDeadIsConflict) {
  Circuit c("t");
  const NetId s = c.add_input("s", 1);
  const NetId t = c.add_input("t", 8);
  const NetId e = c.add_input("e", 8);
  const NetId m = c.add_mux(s, t, e);
  auto dom = full_domains(c);
  dom[t] = Interval(6, 7);
  dom[e] = Interval(6, 6);
  dom[m] = Interval::point(5);
  const auto out = run(c, m, dom);
  EXPECT_TRUE(narrowed(out, m, dom[m]).is_empty());
}

TEST(RuleAdd, BidirectionalWrap) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId z = c.add_add(x, y);
  auto dom = full_domains(c);
  dom[x] = Interval(10, 12);
  dom[y] = Interval(1, 2);
  auto out = run(c, z, dom);
  EXPECT_EQ(narrowed(out, z, dom[z]), Interval(11, 14));
  // Backward: pin z and one operand.
  dom = full_domains(c);
  dom[z] = Interval::point(5);
  dom[y] = Interval::point(250);
  out = run(c, z, dom);
  EXPECT_EQ(narrowed(out, x, dom[x]), Interval::point(11));  // 261 mod 256
}

TEST(RuleComparator, ForwardDecides) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId b = c.add_lt(x, y);
  auto dom = full_domains(c);
  dom[x] = Interval(0, 3);
  dom[y] = Interval(10, 20);
  const auto out = run(c, b, dom);
  EXPECT_EQ(narrowed(out, b, dom[b]), Interval::point(1));
}

TEST(RuleComparator, BackwardNarrowsOperands) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId b = c.add_lt(x, y);
  auto dom = full_domains(c);
  dom[b] = Interval::point(1);
  auto out = run(c, b, dom);
  EXPECT_EQ(narrowed(out, x, dom[x]), Interval(0, 254));
  EXPECT_EQ(narrowed(out, y, dom[y]), Interval(1, 255));
  // Negated: ¬(x<y) ⟺ y ≤ x.
  dom = full_domains(c);
  dom[b] = Interval::point(0);
  dom[y] = Interval(100, 255);
  out = run(c, b, dom);
  EXPECT_EQ(narrowed(out, x, dom[x]), Interval(100, 255));
}

TEST(RuleShift, RoundTrips) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId z = c.add_shr(x, 2);
  auto dom = full_domains(c);
  dom[z] = Interval(2, 3);
  const auto out = run(c, z, dom);
  EXPECT_EQ(narrowed(out, x, dom[x]), Interval(8, 15));
}

TEST(RuleConcat, SplitsThroughParts) {
  Circuit c("t");
  const NetId hi = c.add_input("hi", 4);
  const NetId lo = c.add_input("lo", 4);
  const NetId z = c.add_concat(hi, lo);
  auto dom = full_domains(c);
  dom[z] = Interval(33, 35);
  const auto out = run(c, z, dom);
  EXPECT_EQ(narrowed(out, hi, dom[hi]), Interval::point(2));
}

TEST(RuleZext, Bidirectional) {
  Circuit c("t");
  const NetId x = c.add_input("x", 4);
  const NetId z = c.add_zext(x, 8);
  auto dom = full_domains(c);
  dom[z] = Interval(3, 40);
  const auto out = run(c, z, dom);
  EXPECT_EQ(narrowed(out, z, dom[z]), Interval(3, 15));  // x is only 4 bits
}

TEST(RuleMinMax, RawNodes) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId mn = c.add_min_raw(x, y);
  auto dom = full_domains(c);
  dom[x] = Interval(2, 9);
  dom[y] = Interval(4, 6);
  const auto out = run(c, mn, dom);
  EXPECT_EQ(narrowed(out, mn, dom[mn]), Interval(2, 6));
}

}  // namespace
}  // namespace rtlsat::prop
