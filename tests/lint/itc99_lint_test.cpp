// Regression: every shipped benchmark model is lint-clean (no
// error-severity diagnostics), both as built by the registry and after a
// serialize/parse round trip — the deserializer path is exactly the one
// the lint subsystem guards.
#include <gtest/gtest.h>

#include "itc99/itc99.h"
#include "lint/lint.h"
#include "lint/report.h"
#include "parser/rtl_format.h"

namespace rtlsat::lint {
namespace {

class Itc99LintTest : public ::testing::TestWithParam<std::string> {};

TEST_P(Itc99LintTest, RegistryModelHasNoErrors) {
  const ir::SeqCircuit seq = itc99::build(GetParam());
  const LintReport report = lint_seq_circuit(seq);
  EXPECT_EQ(report.error_count(), 0u)
      << to_text(report, seq.comb(), GetParam());
  // Builder-built netlists are canonical by construction.
  EXPECT_TRUE(report.by_rule("missed-const-fold").empty());
  EXPECT_TRUE(report.by_rule("unnamed-input").empty());
}

TEST_P(Itc99LintTest, ParserRoundTripHasNoErrors) {
  const ir::SeqCircuit seq = itc99::build(GetParam());
  const std::string text = parser::write_seq_circuit(seq);
  const ir::SeqCircuit reparsed = parser::parse_seq_circuit(text);
  const LintReport report = lint_seq_circuit(reparsed);
  EXPECT_EQ(report.error_count(), 0u)
      << to_text(report, reparsed.comb(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllModels, Itc99LintTest,
                         ::testing::ValuesIn(itc99::available()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace rtlsat::lint
