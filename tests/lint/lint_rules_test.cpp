// One deliberately broken netlist per lint rule. Everything here goes
// through Circuit::add_unchecked / SeqCircuit::add_*_unchecked — the
// canonicalizing builder cannot produce these defects (it asserts), which
// is exactly the lint subsystem's reason to exist.
#include <gtest/gtest.h>

#include "ir/circuit.h"
#include "ir/seq.h"
#include "lint/lint.h"

namespace rtlsat::lint {
namespace {

using ir::Circuit;
using ir::NetId;
using ir::Node;
using ir::Op;
using ir::SeqCircuit;

// Node factory for deliberately broken nodes (designated initializers of
// the partial aggregate trip -Wmissing-field-initializers under -Wextra).
Node make_node(Op op, int width, std::vector<NetId> operands,
               std::int64_t imm = 0, std::int64_t imm2 = 0,
               std::string name = {}) {
  Node n;
  n.op = op;
  n.width = width;
  n.operands = std::move(operands);
  n.imm = imm;
  n.imm2 = imm2;
  n.name = std::move(name);
  return n;
}

// Asserts the report contains at least one diagnostic for `rule` and that
// every diagnostic of that rule carries the catalog severity.
void expect_rule(const LintReport& report, std::string_view rule) {
  const auto hits = report.by_rule(rule);
  ASSERT_FALSE(hits.empty()) << "rule " << rule << " did not fire";
  const RuleInfo* info = find_rule(rule);
  ASSERT_NE(info, nullptr);
  for (const Diagnostic& d : hits) {
    EXPECT_EQ(d.severity, info->severity) << d.message;
    EXPECT_FALSE(d.message.empty());
  }
}

TEST(LintRules, CatalogIsConsistent) {
  const auto& catalog = rule_catalog();
  ASSERT_GE(catalog.size(), 19u);
  for (const RuleInfo& rule : catalog) {
    EXPECT_EQ(find_rule(rule.id), &rule);
    EXPECT_FALSE(rule.description.empty());
  }
  EXPECT_EQ(find_rule("no-such-rule"), nullptr);
}

TEST(LintRules, CleanCircuitIsClean) {
  Circuit c("clean");
  const NetId a = c.add_input("a", 4);
  const NetId b = c.add_input("b", 4);
  const NetId lt = c.add_lt(a, b);
  LintOptions options;
  options.roots = {lt};
  const LintReport report = lint_circuit(c, options);
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(LintRules, OperandCount) {
  Circuit c("bad");
  const NetId a = c.add_input("a", 1);
  c.add_unchecked(make_node(Op::kNot, 1, {a, a}));
  expect_rule(lint_circuit(c), "operand-count");
}

TEST(LintRules, OperandWidth) {
  Circuit c("bad");
  const NetId a = c.add_input("a", 4);
  const NetId b = c.add_input("b", 8);
  c.add_unchecked(make_node(Op::kAdd, 4, {a, b}));
  expect_rule(lint_circuit(c), "operand-width");
}

TEST(LintRules, BooleanWidth) {
  Circuit c("bad");
  const NetId a = c.add_input("a", 8);
  const NetId b = c.add_input("b", 1);
  c.add_unchecked(make_node(Op::kAnd, 1, {a, b}));
  expect_rule(lint_circuit(c), "boolean-width");
}

TEST(LintRules, MuxSelect) {
  Circuit c("bad");
  const NetId sel = c.add_input("sel", 2);
  const NetId t = c.add_input("t", 4);
  const NetId e = c.add_input("e", 4);
  c.add_unchecked(make_node(Op::kMux, 4, {sel, t, e}));
  expect_rule(lint_circuit(c), "mux-select");
}

TEST(LintRules, ExtractBounds) {
  Circuit c("bad");
  const NetId a = c.add_input("a", 4);
  c.add_unchecked(
      make_node(Op::kExtract, 3, {a}, /*imm=*/5, /*imm2=*/3));
  expect_rule(lint_circuit(c), "extract-bounds");
}

TEST(LintRules, ImmRange) {
  Circuit c("bad");
  const NetId a = c.add_input("a", 4);
  c.add_unchecked(
      make_node(Op::kShlC, 4, {a}, /*imm=*/7));
  expect_rule(lint_circuit(c), "imm-range");
}

TEST(LintRules, MaxWidth) {
  Circuit c("bad");
  c.add_unchecked(
      make_node(Op::kInput, ir::kMaxWidth + 1, {}, 0, 0, "wide"));
  expect_rule(lint_circuit(c), "max-width");
}

TEST(LintRules, ConstRange) {
  Circuit c("bad");
  c.add_unchecked(make_node(Op::kConst, 2, {}, /*imm=*/9));
  expect_rule(lint_circuit(c), "const-range");
}

TEST(LintRules, CombCycle) {
  Circuit c("bad");
  const NetId a = c.add_input("a", 1);
  // Node 1 reads itself.
  c.add_unchecked(make_node(Op::kAnd, 1, {a, 1}));
  expect_rule(lint_circuit(c), "comb-cycle");
}

TEST(LintRules, UndrivenNet) {
  Circuit c("bad");
  c.add_unchecked(make_node(Op::kNot, 1, {ir::kNoNet}));
  expect_rule(lint_circuit(c), "undriven-net");
}

TEST(LintRules, UnnamedInput) {
  Circuit c("bad");
  c.add_unchecked(make_node(Op::kInput, 4, {}));
  expect_rule(lint_circuit(c), "unnamed-input");
}

TEST(LintRules, DeadNet) {
  Circuit c("suspicious");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId root = c.add_and(a, b);
  const NetId dead = c.add_xor(a, b);
  LintOptions options;
  options.roots = {root};
  const LintReport report = lint_circuit(c, options);
  const auto hits = report.by_rule("dead-net");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].net, dead);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
}

TEST(LintRules, DeadNetSkippedWithoutRoots) {
  Circuit c("no-roots");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  c.add_xor(a, b);
  EXPECT_TRUE(lint_circuit(c).by_rule("dead-net").empty());
}

TEST(LintRules, MissedConstFold) {
  Circuit c("suspicious");
  const NetId a = c.add_input("a", 1);
  const NetId zero = c.add_const(0, 1);
  // The builder folds a ∧ 0 to 0; hand assembly keeps the gate.
  c.add_unchecked(make_node(Op::kAnd, 1, {a, zero}));
  expect_rule(lint_circuit(c), "missed-const-fold");
}

TEST(LintRules, StructuralErrorsSuppressSemanticRules) {
  Circuit c("bad");
  const NetId a = c.add_input("a", 1);
  const NetId zero = c.add_const(0, 1);
  // Foldable gate *and* a dangling operand: only the structural error
  // should be reported — semantic rules cannot trust a broken netlist.
  c.add_unchecked(make_node(Op::kAnd, 1, {a, zero}));
  c.add_unchecked(make_node(Op::kNot, 1, {99}));
  const LintReport report = lint_circuit(c);
  EXPECT_FALSE(report.by_rule("undriven-net").empty());
  EXPECT_TRUE(report.by_rule("missed-const-fold").empty());
  EXPECT_TRUE(report.by_rule("dead-net").empty());
}

TEST(LintRules, UnboundRegister) {
  SeqCircuit seq("bad");
  seq.add_register("r", 4, 0);  // never bound
  expect_rule(lint_seq_circuit(seq), "unbound-register");
}

TEST(LintRules, RegisterWidthMismatch) {
  SeqCircuit seq("bad");
  const NetId q = seq.comb().add_input("q", 4);
  const NetId d = seq.comb().add_input("d", 8);
  seq.add_register_unchecked({.q = q, .d = d, .init = 0, .name = "r"});
  expect_rule(lint_seq_circuit(seq), "register-width");
}

TEST(LintRules, RegisterStateNotAnInput) {
  SeqCircuit seq("bad");
  const NetId a = seq.comb().add_input("a", 1);
  const NetId not_a = seq.comb().add_not(a);
  seq.add_register_unchecked({.q = not_a, .d = not_a, .init = 0, .name = "r"});
  expect_rule(lint_seq_circuit(seq), "register-width");
}

TEST(LintRules, RegisterInitRange) {
  SeqCircuit seq("bad");
  const NetId q = seq.comb().add_input("q", 2);
  const NetId one = seq.comb().add_const(1, 2);
  const NetId d = seq.comb().add_add(q, one);
  seq.add_register_unchecked({.q = q, .d = d, .init = 5, .name = "r"});
  expect_rule(lint_seq_circuit(seq), "register-init-range");
}

TEST(LintRules, PropertyBool) {
  SeqCircuit seq("bad");
  const NetId a = seq.comb().add_input("a", 4);
  seq.add_property_unchecked({"p", a});
  expect_rule(lint_seq_circuit(seq), "property-bool");
}

TEST(LintRules, ConstantRegister) {
  SeqCircuit seq("suspicious");
  const NetId q = seq.comb().add_input("q", 2);
  seq.add_register_unchecked({.q = q, .d = q, .init = 1, .name = "stuck"});
  expect_rule(lint_seq_circuit(seq), "constant-register");
}

TEST(LintRules, DuplicateRegister) {
  SeqCircuit seq("suspicious");
  const NetId q = seq.comb().add_input("q", 2);
  const NetId x = seq.comb().add_input("x", 2);
  const NetId d = seq.comb().add_add(q, x);
  seq.add_register_unchecked({.q = q, .d = d, .init = 0, .name = "r0"});
  seq.add_register_unchecked({.q = q, .d = d, .init = 0, .name = "r1"});
  expect_rule(lint_seq_circuit(seq), "duplicate-register");
}

TEST(LintRules, AnalyzerBackedConstantComparator) {
  Circuit c("analyzer");
  const NetId a = c.add_input("a", 3);
  const NetId za = c.add_zext(a, 8);
  c.add_lt(za, c.add_const(16, 8));  // 0..7 < 16, provably true
  expect_rule(lint_circuit(c), "constant-comparator");
}

TEST(LintRules, AnalyzerBackedConstantNet) {
  Circuit c("analyzer");
  const NetId a = c.add_input("a", 4);
  // min(a, 0) is provably 0 — a non-comparator constant net.
  const NetId m = c.add_min_raw(a, c.add_const(0, 4));
  c.add_add(m, c.add_input("b", 4));
  expect_rule(lint_circuit(c), "constant-net");
}

TEST(LintRules, AnalyzerBackedDeadMuxArm) {
  Circuit c("analyzer");
  const NetId a = c.add_input("a", 3);
  const NetId sel = c.add_lt(c.add_zext(a, 4), c.add_const(8, 4));  // true
  c.add_mux(sel, c.add_input("t", 4), c.add_input("e", 4));
  expect_rule(lint_circuit(c), "dead-mux-arm");
}

TEST(LintRules, AnalyzerBackedOversizedNet) {
  Circuit c("analyzer");
  const NetId a = c.add_input("a", 3);
  const NetId za = c.add_zext(a, 12);  // 12 bits for a ≤ 7 value
  c.add_add(za, c.add_input("b", 12));
  expect_rule(lint_circuit(c), "oversized-net");
}

TEST(LintRules, AnalyzerBackedInvariantConstantRegister) {
  // d = min(q, 0) with init 0: real logic in the next-state cone, yet the
  // register provably never leaves 0.
  SeqCircuit seq("analyzer");
  Circuit& c = seq.comb();
  const NetId q = seq.add_register("r", 4, 0);
  seq.bind_next(q, c.add_min_raw(q, c.add_const(0, 4)));
  expect_rule(lint_seq_circuit(seq), "invariant-constant-register");
}

TEST(LintRules, DiagnosticsArriveInCatalogOrder) {
  Circuit c("bad");
  c.add_unchecked(make_node(Op::kInput, 4, {}));           // unnamed
  c.add_unchecked(make_node(Op::kConst, 2, {}, /*imm=*/9));  // range
  const LintReport report = lint_circuit(c);
  ASSERT_EQ(report.diagnostics.size(), 2u);
  // const-range precedes unnamed-input in the catalog.
  EXPECT_EQ(report.diagnostics[0].rule_id, "const-range");
  EXPECT_EQ(report.diagnostics[1].rule_id, "unnamed-input");
}

TEST(LintRules, ValidateDelegatesToSharedChecker) {
  Circuit c("bad");
  c.add_unchecked(make_node(Op::kNot, 1, {ir::kNoNet}));
  EXPECT_DEATH(c.validate(), "undriven-net");
}

}  // namespace
}  // namespace rtlsat::lint
