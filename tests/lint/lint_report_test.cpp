// Reporter and option-filtering tests for the lint subsystem.
#include <gtest/gtest.h>

#include "ir/circuit.h"
#include "lint/lint.h"
#include "lint/report.h"

namespace rtlsat::lint {
namespace {

using ir::Circuit;
using ir::NetId;
using ir::Node;
using ir::Op;

// A netlist with exactly one error (undriven operand) and one warning
// (unnamed input).
Circuit mixed_circuit() {
  Circuit c("mixed");
  Node input;
  input.op = Op::kInput;
  input.width = 4;
  c.add_unchecked(std::move(input));
  Node dangling;
  dangling.op = Op::kNot;
  dangling.operands = {ir::kNoNet};
  c.add_unchecked(std::move(dangling));
  return c;
}

TEST(LintReportTest, Counts) {
  const Circuit c = mixed_circuit();
  const LintReport report = lint_circuit(c);
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_EQ(report.warning_count(), 1u);
  EXPECT_TRUE(report.has_errors());
}

TEST(LintReportTest, WarningsCanBeSuppressed) {
  const Circuit c = mixed_circuit();
  LintOptions options;
  options.warnings = false;
  const LintReport report = lint_circuit(c, options);
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_EQ(report.warning_count(), 0u);
}

TEST(LintReportTest, RulesCanBeDisabled) {
  const Circuit c = mixed_circuit();
  LintOptions options;
  options.disabled_rules = {"undriven-net"};
  const LintReport report = lint_circuit(c, options);
  EXPECT_TRUE(report.by_rule("undriven-net").empty());
  EXPECT_FALSE(report.by_rule("unnamed-input").empty());
  EXPECT_FALSE(report.has_errors());
  // Disabling the error hides the diagnostic but must not unleash the
  // semantic rules on the still-broken netlist.
  EXPECT_TRUE(report.by_rule("dead-net").empty());
}

TEST(LintReportTest, TextFormat) {
  const Circuit c = mixed_circuit();
  const std::string text = to_text(lint_circuit(c), c, "mixed.rtl");
  EXPECT_NE(text.find("mixed.rtl: error[undriven-net]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mixed.rtl: warning[unnamed-input]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("net n1"), std::string::npos) << text;
  EXPECT_NE(text.find("1 error, 1 warning\n"), std::string::npos) << text;
}

TEST(LintReportTest, TextTrailerPluralizes) {
  Circuit c("clean");
  c.add_input("a", 1);
  LintOptions options;
  options.roots = {0};
  const std::string text = to_text(lint_circuit(c, options), c, "clean");
  EXPECT_EQ(text, "clean: 0 errors, 0 warnings\n");
}

TEST(LintReportTest, JsonFormat) {
  const Circuit c = mixed_circuit();
  const std::string json = to_json(lint_circuit(c), c, "mixed.rtl");
  EXPECT_NE(json.find("\"source\": \"mixed.rtl\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"undriven-net\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"net\": 1"), std::string::npos) << json;
}

TEST(LintReportTest, JsonEscapesStrings) {
  LintReport report;
  report.diagnostics.push_back(
      {"dead-net", Severity::kWarning, ir::kNoNet, "a \"quoted\"\nmessage"});
  Circuit c("esc");
  const std::string json = to_json(report, c, "path\\with\\backslashes");
  EXPECT_NE(json.find("\"path\\\\with\\\\backslashes\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("a \\\"quoted\\\"\\nmessage"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"net\": null"), std::string::npos) << json;
}

}  // namespace
}  // namespace rtlsat::lint
