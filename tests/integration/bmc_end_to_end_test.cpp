// End-to-end: ITC'99 models → BMC unrolling → HDPLL in the paper's three
// configurations, cross-checked against the bit-blast oracle at small
// bounds. This is the pipeline every bench row runs through.
#include <gtest/gtest.h>

#include "bitblast/bitblast.h"
#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "itc99/itc99.h"

namespace rtlsat {
namespace {

struct InstanceCase {
  const char* circuit;
  const char* property;
  int bound;
};

class BmcEndToEnd : public ::testing::TestWithParam<InstanceCase> {};

TEST_P(BmcEndToEnd, ConfigsAgreeWithOracle) {
  const auto param = GetParam();
  const ir::SeqCircuit seq = itc99::build(param.circuit);
  const bmc::BmcInstance instance =
      bmc::unroll(seq, param.property, param.bound);
  const auto oracle = bitblast::check_sat(instance.circuit, instance.goal);
  ASSERT_NE(oracle.result, sat::Result::kTimeout);

  for (int config = 0; config < 3; ++config) {
    core::HdpllOptions options;
    options.structural_decisions = config >= 1;
    options.predicate_learning = config >= 2;
    options.timeout_seconds = 60;
    // Run the invariant verifier during the search in every build, not
    // just -DRTLSAT_SELFCHECK=ON ones — this suite is the self-check
    // layer's end-to-end exercise.
    options.self_check = true;
    core::HdpllSolver solver(instance.circuit, options);
    solver.assume_bool(instance.goal, true);
    const core::SolveResult result = solver.solve();
    ASSERT_NE(result.status, core::SolveStatus::kTimeout)
        << instance.name << " cfg=" << config;
    EXPECT_EQ(result.status == core::SolveStatus::kSat,
              oracle.result == sat::Result::kSat)
        << instance.name << " cfg=" << config;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperFamilies, BmcEndToEnd,
    ::testing::Values(InstanceCase{"b01", "1", 10},   // S in Table 1
                      InstanceCase{"b01", "1", 20},   // U in Table 1
                      InstanceCase{"b01", "2", 6},
                      InstanceCase{"b02", "1", 10},   // U
                      InstanceCase{"b02", "3", 5},    // S
                      InstanceCase{"b03", "1", 6},
                      InstanceCase{"b04", "1", 5},    // S (all-S family)
                      InstanceCase{"b04", "2", 4},
                      InstanceCase{"b13", "1", 5},
                      InstanceCase{"b13", "2", 5},
                      InstanceCase{"b13", "3", 5},
                      InstanceCase{"b13", "5", 5},
                      InstanceCase{"b13", "8", 5},
                      InstanceCase{"b13", "40", 13}),  // S at the paper bound
    [](const auto& info) {
      return std::string(info.param.circuit) + "_p" + info.param.property +
             "_k" + std::to_string(info.param.bound);
    });

TEST(BmcEndToEnd, SatModelDrivesCounterexample) {
  // For a SAT instance, the input model must replay to a property
  // violation through the unrolled circuit's evaluator.
  const ir::SeqCircuit seq = itc99::build("b04");
  const bmc::BmcInstance instance = bmc::unroll(seq, "1", 4);
  core::HdpllOptions options;
  options.structural_decisions = true;
  options.self_check = true;
  core::HdpllSolver solver(instance.circuit, options);
  solver.assume_bool(instance.goal, true);
  const core::SolveResult result = solver.solve();
  ASSERT_EQ(result.status, core::SolveStatus::kSat);
  const auto values = instance.circuit.evaluate(result.input_model);
  EXPECT_EQ(values[instance.goal], 1);
}

}  // namespace
}  // namespace rtlsat
