// Cumulative (any-frame) BMC instances cross-checked the same way as the
// exact-depth ones: monotonicity in the bound and agreement with the
// bit-blast oracle.
#include <gtest/gtest.h>

#include "bitblast/bitblast.h"
#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "itc99/itc99.h"

namespace rtlsat {
namespace {

sat::Result oracle_any(const ir::SeqCircuit& seq, const char* prop,
                       int bound) {
  const auto instance = bmc::unroll_any(seq, prop, bound);
  return bitblast::check_sat(instance.circuit, instance.goal).result;
}

core::SolveStatus hdpll_any(const ir::SeqCircuit& seq, const char* prop,
                            int bound) {
  const auto instance = bmc::unroll_any(seq, prop, bound);
  core::HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = true;
  options.timeout_seconds = 60;
  core::HdpllSolver solver(instance.circuit, options);
  solver.assume_bool(instance.goal, true);
  return solver.solve().status;
}

TEST(CumulativeBmc, MonotoneInBound) {
  // b01 property 1 is violable at depth 10; the cumulative encoding stays
  // SAT at every larger bound (unlike the exact-depth encoding).
  const auto seq = itc99::build("b01");
  EXPECT_EQ(oracle_any(seq, "1", 10), sat::Result::kSat);
  EXPECT_EQ(oracle_any(seq, "1", 20), sat::Result::kSat);
  EXPECT_EQ(hdpll_any(seq, "1", 20), core::SolveStatus::kSat);
}

TEST(CumulativeBmc, InvariantStaysUnsat) {
  const auto seq = itc99::build("b13");
  for (const char* prop : {"2", "8"}) {
    EXPECT_EQ(oracle_any(seq, prop, 8), sat::Result::kUnsat) << prop;
    EXPECT_EQ(hdpll_any(seq, prop, 8), core::SolveStatus::kUnsat) << prop;
  }
}

TEST(CumulativeBmc, AgreesWithOracleAcrossFamilies) {
  for (const char* circuit : {"b02", "b04", "b06"}) {
    const auto seq = itc99::build(circuit);
    for (const auto& prop : seq.properties()) {
      const auto expected = oracle_any(seq, prop.name.c_str(), 6);
      ASSERT_NE(expected, sat::Result::kTimeout);
      EXPECT_EQ(hdpll_any(seq, prop.name.c_str(), 6) ==
                    core::SolveStatus::kSat,
                expected == sat::Result::kSat)
          << circuit << " " << prop.name;
    }
  }
}

}  // namespace
}  // namespace rtlsat
