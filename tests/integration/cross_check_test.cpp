// The strongest correctness evidence in the suite: HDPLL (all paper
// configurations) must agree with the bit-blast + CDCL oracle on randomly
// generated word-level circuits — SAT/UNSAT verdicts always, and SAT
// models must evaluate to a true goal.
#include <gtest/gtest.h>

#include "bitblast/bitblast.h"
#include "core/hdpll.h"
#include "util/rng.h"

namespace rtlsat {
namespace {

using ir::Circuit;
using ir::NetId;

// Generates a random layered word-level circuit with the operator mix of
// the paper's benchmarks (muxes, adders, comparators, control gates).
Circuit random_circuit(Rng& rng, int word_width, int steps, NetId* goal) {
  Circuit c("rand");
  std::vector<NetId> words;
  std::vector<NetId> bools;
  const int num_word_inputs = 2 + static_cast<int>(rng.below(3));
  for (int i = 0; i < num_word_inputs; ++i)
    words.push_back(c.add_input("w" + std::to_string(i), word_width));
  for (int i = 0; i < 2; ++i)
    bools.push_back(c.add_input("c" + std::to_string(i), 1));
  words.push_back(c.add_const(rng.range(0, (1 << word_width) - 1), word_width));

  auto word = [&]() { return words[rng.below(words.size())]; };
  auto boolean = [&]() { return bools[rng.below(bools.size())]; };

  for (int step = 0; step < steps; ++step) {
    switch (rng.below(10)) {
      case 0: words.push_back(c.add_add(word(), word())); break;
      case 1: words.push_back(c.add_sub(word(), word())); break;
      case 2: words.push_back(c.add_mux(boolean(), word(), word())); break;
      case 3: bools.push_back(c.add_lt(word(), word())); break;
      case 4: bools.push_back(c.add_le(word(), word())); break;
      case 5: bools.push_back(c.add_eq(word(), word())); break;
      case 6: bools.push_back(c.add_and(boolean(), boolean())); break;
      case 7: bools.push_back(c.add_or(boolean(), boolean())); break;
      case 8: bools.push_back(c.add_not(boolean())); break;
      case 9: {
        const NetId w = word();
        switch (rng.below(4)) {
          case 0: words.push_back(c.add_shr(w, 1)); break;
          case 1: words.push_back(c.add_notw(w)); break;
          case 2: words.push_back(c.add_mulc(w, 3)); break;
          case 3:
            words.push_back(c.add_zext(
                c.add_extract(w, word_width - 2, 1), word_width));
            break;
        }
        break;
      }
    }
  }
  // Goal: conjunction of a few random Boolean nets (possibly negated) to
  // get a healthy SAT/UNSAT mix.
  std::vector<NetId> conj;
  for (int i = 0; i < 3; ++i) {
    const NetId b = boolean();
    conj.push_back(rng.flip() ? b : c.add_not(b));
  }
  *goal = c.add_and(std::move(conj));
  return c;
}

struct CrossCheckCase {
  std::uint64_t seed;
  int width;
  int steps;
};

class CrossCheck : public ::testing::TestWithParam<CrossCheckCase> {};

TEST_P(CrossCheck, AllConfigsAgreeWithBitblastOracle) {
  const auto param = GetParam();
  Rng rng(param.seed);
  for (int iter = 0; iter < 12; ++iter) {
    NetId goal = ir::kNoNet;
    const Circuit c = random_circuit(rng, param.width, param.steps, &goal);
    if (c.node(goal).op == ir::Op::kConst) continue;  // folded away
    const auto oracle = bitblast::check_sat(c, goal);
    ASSERT_NE(oracle.result, sat::Result::kTimeout);

    for (int config = 0; config < 5; ++config) {
      core::HdpllOptions options;
      options.structural_decisions = config == 1 || config == 2;
      options.predicate_learning = config == 2;
      options.conflict_learning = config != 3;
      options.analyze.hybrid_word_literals = config != 4;  // ablation
      options.timeout_seconds = 30;
      core::HdpllSolver solver(c, options);
      solver.assume_bool(goal, true);
      const core::SolveResult result = solver.solve();
      ASSERT_NE(result.status, core::SolveStatus::kTimeout)
          << "seed=" << param.seed << " iter=" << iter << " cfg=" << config;
      EXPECT_EQ(result.status == core::SolveStatus::kSat,
                oracle.result == sat::Result::kSat)
          << "seed=" << param.seed << " iter=" << iter << " cfg=" << config;
      if (result.status == core::SolveStatus::kSat) {
        // verify_models already asserted goal-evaluation inside solve();
        // double-check here against the original circuit.
        const auto values = c.evaluate(result.input_model);
        EXPECT_EQ(values[goal], 1);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossCheck,
    ::testing::Values(CrossCheckCase{1, 4, 14}, CrossCheckCase{2, 4, 20},
                      CrossCheckCase{3, 6, 14}, CrossCheckCase{4, 6, 22},
                      CrossCheckCase{5, 8, 16}, CrossCheckCase{6, 3, 25},
                      CrossCheckCase{7, 8, 24}, CrossCheckCase{8, 5, 18}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_w" +
             std::to_string(info.param.width);
    });

}  // namespace
}  // namespace rtlsat
