// Exhaustive soundness of the analyzer's transfer functions at small
// widths: for every operator shape and every width ≤ 5, enumerate every
// input assignment and check
//  * unconditioned: each net's concrete value lies in its fact range, and
//    its parity fact (when known) matches;
//  * conditioned: under an output assumption, every assignment whose
//    output satisfies the assumption stays inside every conditioned range,
//    and a conflict verdict really means no assignment satisfies it.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/circuit.h"
#include "presolve/analyze.h"

namespace rtlsat::presolve {
namespace {

using ir::Circuit;
using ir::NetId;

struct Shape {
  std::string name;
  int num_inputs = 2;  // word inputs "a", "b" of the given width
  std::function<NetId(Circuit&, NetId, NetId, int)> build;
};

std::vector<Shape> shapes() {
  using C = Circuit;
  return {
      {"add", 2, [](C& c, NetId a, NetId b, int) { return c.add_add(a, b); }},
      {"sub", 2, [](C& c, NetId a, NetId b, int) { return c.add_sub(a, b); }},
      {"mulc3", 1, [](C& c, NetId a, NetId, int) { return c.add_mulc(a, 3); }},
      {"mulc7", 1, [](C& c, NetId a, NetId, int) { return c.add_mulc(a, 7); }},
      {"shl1", 1,
       [](C& c, NetId a, NetId, int w) { return c.add_shl(a, w > 1 ? 1 : 0); }},
      {"shr1", 1,
       [](C& c, NetId a, NetId, int w) { return c.add_shr(a, w > 1 ? 1 : 0); }},
      {"notw", 1, [](C& c, NetId a, NetId, int) { return c.add_notw(a); }},
      {"concat", 2,
       [](C& c, NetId a, NetId b, int) { return c.add_concat(a, b); }},
      {"extract_lo", 1,
       [](C& c, NetId a, NetId, int w) {
         return w > 1 ? c.add_extract(a, w - 2, 0) : c.add_extract(a, 0, 0);
       }},
      {"extract_hi", 1,
       [](C& c, NetId a, NetId, int w) {
         return c.add_extract(a, w - 1, w > 1 ? 1 : 0);
       }},
      {"zext", 1,
       [](C& c, NetId a, NetId, int w) { return c.add_zext(a, w + 2); }},
      {"min", 2,
       [](C& c, NetId a, NetId b, int) { return c.add_min_raw(a, b); }},
      {"max", 2,
       [](C& c, NetId a, NetId b, int) { return c.add_max_raw(a, b); }},
      {"eq_raw", 2,
       [](C& c, NetId a, NetId b, int) { return c.add_eq_raw(a, b); }},
      {"eq", 2, [](C& c, NetId a, NetId b, int) { return c.add_eq(a, b); }},
      {"ne", 2, [](C& c, NetId a, NetId b, int) { return c.add_ne(a, b); }},
      {"lt", 2, [](C& c, NetId a, NetId b, int) { return c.add_lt(a, b); }},
      {"le", 2, [](C& c, NetId a, NetId b, int) { return c.add_le(a, b); }},
      {"mux_lt", 2,
       [](C& c, NetId a, NetId b, int) {
         return c.add_mux(c.add_lt(a, b), a, b);
       }},
      {"add_then_cmp", 2,
       [](C& c, NetId a, NetId b, int w) {
         return c.add_le(c.add_add(a, b), c.add_const((1 << w) / 2, w));
       }},
      {"sub_reconverge", 2,
       [](C& c, NetId a, NetId b, int) {
         return c.add_sub(c.add_add(a, b), b);
       }},
  };
}

// Every assignment of the circuit's inputs, as (input-id → value) maps.
std::vector<std::unordered_map<NetId, std::int64_t>> all_assignments(
    const Circuit& c) {
  std::vector<std::unordered_map<NetId, std::int64_t>> result;
  std::uint64_t total_bits = 0;
  for (const NetId in : c.inputs()) total_bits += c.width(in);
  EXPECT_LE(total_bits, 12u) << "test circuit too wide to enumerate";
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << total_bits);
       ++bits) {
    std::unordered_map<NetId, std::int64_t> values;
    std::uint64_t rest = bits;
    for (const NetId in : c.inputs()) {
      const int w = c.width(in);
      values[in] = static_cast<std::int64_t>(rest & ((1u << w) - 1));
      rest >>= w;
    }
    result.push_back(std::move(values));
  }
  return result;
}

TEST(Exhaustive, ForwardFactsContainEveryReachableValue) {
  for (const Shape& shape : shapes()) {
    for (int w = 1; w <= 5; ++w) {
      Circuit c("x_" + shape.name);
      const NetId a = c.add_input("a", w);
      const NetId b = shape.num_inputs > 1 ? c.add_input("b", w) : a;
      shape.build(c, a, b, w);
      const FactTable f = analyze(c);
      ASSERT_FALSE(f.conflict);
      std::vector<std::unordered_map<NetId, std::int64_t>> assigns;
      assigns = all_assignments(c);
      for (const auto& in : assigns) {
        const auto values = c.evaluate(in);
        for (NetId id = 0; id < c.num_nets(); ++id) {
          ASSERT_TRUE(f.range[id].contains(values[id]))
              << shape.name << " w=" << w << " net " << id << " value "
              << values[id] << " outside " << f.range[id].to_string();
          if (f.parity[id] != Parity::kUnknown) {
            ASSERT_EQ(f.parity[id], parity_of(values[id]))
                << shape.name << " w=" << w << " net " << id;
          }
        }
      }
    }
  }
}

TEST(Exhaustive, ConditionedFactsContainEverySatisfyingValue) {
  for (const Shape& shape : shapes()) {
    for (int w = 1; w <= 4; ++w) {
      Circuit c("c_" + shape.name);
      const NetId a = c.add_input("a", w);
      const NetId b = shape.num_inputs > 1 ? c.add_input("b", w) : a;
      const NetId z = shape.build(c, a, b, w);
      const Interval dom = c.domain(z);
      // A few assumption windows over the output, including points.
      const Interval windows[] = {
          Interval::point(dom.lo()), Interval::point(dom.hi()),
          Interval(dom.lo(), (dom.lo() + dom.hi()) / 2),
          Interval((dom.lo() + dom.hi()) / 2 + 1, dom.hi())};
      for (const Interval& win : windows) {
        if (win.is_empty()) continue;
        AnalyzeOptions opts;
        opts.assumptions.emplace_back(z, win);
        const FactTable f = analyze(c, opts);
        std::vector<std::unordered_map<NetId, std::int64_t>> assigns;
        assigns = all_assignments(c);
        bool any_satisfying = false;
        for (const auto& in : assigns) {
          const auto values = c.evaluate(in);
          if (!win.contains(values[z])) continue;
          any_satisfying = true;
          ASSERT_FALSE(f.conflict)
              << shape.name << " w=" << w << " win " << win.to_string()
              << ": conflict despite a satisfying assignment";
          for (NetId id = 0; id < c.num_nets(); ++id) {
            ASSERT_TRUE(f.range[id].contains(values[id]))
                << shape.name << " w=" << w << " win " << win.to_string()
                << " net " << id << " value " << values[id] << " outside "
                << f.range[id].to_string();
          }
        }
        (void)any_satisfying;  // no-satisfying-assignment ⟹ any verdict ok
      }
    }
  }
}

}  // namespace
}  // namespace rtlsat::presolve
