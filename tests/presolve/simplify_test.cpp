// Simplifier tests: fact-driven rewrites, witness transfer through the net
// map, the goal-level presolve driver, and the diagnostics findings.
#include "presolve/simplify.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "fuzz/generator.h"
#include "presolve/analyze.h"
#include "presolve/findings.h"

namespace rtlsat::presolve {
namespace {

using ir::Circuit;
using ir::NetId;
using ir::Op;

// Every mapped net of the simplified circuit must compute the same value
// as its source net under the same (name-matched) inputs.
void expect_net_map_agrees(const Circuit& original, const SimplifyResult& s,
                           std::uint64_t seed) {
  std::unordered_map<NetId, std::int64_t> in_orig, in_new;
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ULL + 1;
  for (const NetId in : original.inputs()) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::int64_t v = static_cast<std::int64_t>(
        x & ((std::uint64_t{1} << original.width(in)) - 1));
    in_orig[in] = v;
    const NetId mapped = s.circuit.find_net(original.net_name(in));
    if (mapped != ir::kNoNet) in_new[mapped] = v;
  }
  // Simplified inputs not present in the original would break replay.
  for (const NetId in : s.circuit.inputs()) {
    ASSERT_NE(original.find_net(s.circuit.net_name(in)), ir::kNoNet);
    if (!in_new.count(in)) in_new[in] = 0;
  }
  const auto v_orig = original.evaluate(in_orig);
  const auto v_new = s.circuit.evaluate(in_new);
  for (NetId id = 0; id < original.num_nets(); ++id) {
    if (s.net_map[id] == ir::kNoNet) continue;
    ASSERT_EQ(v_orig[id], v_new[s.net_map[id]])
        << "net " << id << " (" << original.net_name(id)
        << ") diverges through the net map";
  }
}

TEST(Simplify, CollapsesProvablyConstantComparatorAndMux) {
  Circuit c("collapse");
  const NetId a = c.add_input("a", 3);
  const NetId t = c.add_input("t", 4);
  const NetId e = c.add_input("e", 4);
  const NetId za = c.add_zext(a, 4);
  const NetId lt = c.add_lt(za, c.add_const(8, 4));  // always true
  const NetId m = c.add_mux(lt, t, e);
  const NetId goal = c.add_lt(m, e);
  const FactTable f = analyze(c);
  EXPECT_EQ(f.range[lt], Interval::point(1));
  SimplifyResult s = simplify(c, {goal}, f);
  EXPECT_GE(s.stats.comparators_reduced, 1);
  EXPECT_GE(s.stats.mux_arms_removed, 1);
  EXPECT_LT(s.circuit.num_nets(), c.num_nets());
  // The mux collapsed onto its then-arm: m maps to t's image.
  EXPECT_EQ(s.net_map[m], s.net_map[t]);
  for (std::uint64_t seed = 0; seed < 16; ++seed)
    expect_net_map_agrees(c, s, seed);
}

TEST(Simplify, NarrowsAddWidthWhenRangesProveNoCarry) {
  Circuit c("narrow");
  const NetId a = c.add_input("a", 3);
  const NetId b = c.add_input("b", 3);
  const NetId s8 =
      c.add_add(c.add_zext(a, 8), c.add_zext(b, 8));  // sum ≤ 14: fits 4 bits
  const NetId goal = c.add_lt(s8, c.add_const(9, 8));
  const FactTable f = analyze(c);
  SimplifyResult s = simplify(c, {goal}, f);
  EXPECT_GE(s.stats.width_bits_shaved, 4);
  // Exhaustive agreement over all 64 assignments.
  for (std::int64_t va = 0; va < 8; ++va) {
    for (std::int64_t vb = 0; vb < 8; ++vb) {
      const auto v_orig = c.evaluate({{a, va}, {b, vb}});
      const NetId na = s.circuit.find_net("a");
      const NetId nb = s.circuit.find_net("b");
      ASSERT_NE(na, ir::kNoNet);
      ASSERT_NE(nb, ir::kNoNet);
      const auto v_new = s.circuit.evaluate({{na, va}, {nb, vb}});
      ASSERT_EQ(v_orig[s8], v_new[s.net_map[s8]]);
      ASSERT_EQ(v_orig[goal], v_new[s.net_map[goal]]);
    }
  }
}

TEST(PresolveGoal, DecidesTautologySat) {
  Circuit c("taut");
  const NetId a = c.add_input("a", 4);
  const NetId goal = c.add_le(c.add_shr(a, 1), c.add_const(7, 4));  // always
  const GoalPresolve g = presolve_goal(c, goal, true);
  ASSERT_TRUE(g.decided);
  EXPECT_TRUE(g.sat);
  // The reported model must actually satisfy the goal.
  std::unordered_map<NetId, std::int64_t> model(g.model.begin(),
                                                g.model.end());
  ASSERT_TRUE(model.count(a));
  EXPECT_EQ(c.evaluate(model)[goal], 1);
}

TEST(PresolveGoal, DecidesRangeContradictionUnsat) {
  Circuit c("contra");
  const NetId a = c.add_input("a", 4);
  // shr(a,1) ≤ 7 always, so asking for value=false is UNSAT.
  const NetId goal = c.add_le(c.add_shr(a, 1), c.add_const(7, 4));
  const GoalPresolve g = presolve_goal(c, goal, false);
  ASSERT_TRUE(g.decided);
  EXPECT_FALSE(g.sat);
}

TEST(PresolveGoal, DecidesConditionedConflictUnsat) {
  Circuit c("cc");
  const NetId a = c.add_input("a", 4);
  const NetId goal = c.add_and(c.add_eqc(a, 3), c.add_eqc(a, 5));
  const GoalPresolve g = presolve_goal(c, goal, true);
  ASSERT_TRUE(g.decided);
  EXPECT_FALSE(g.sat);
}

TEST(PresolveGoal, UndecidedInstanceKeepsGoalAndMap) {
  Circuit c("open");
  const NetId a = c.add_input("a", 4);
  const NetId b = c.add_input("b", 4);
  const NetId goal = c.add_lt(a, b);
  const GoalPresolve g = presolve_goal(c, goal, true);
  ASSERT_FALSE(g.decided);
  ASSERT_NE(g.goal, ir::kNoNet);
  EXPECT_EQ(g.net_map[goal], g.goal);
  EXPECT_TRUE(g.circuit.is_bool(g.goal));
}

TEST(PresolveGoal, FuzzedInstancesTransferWitnessesThroughNetMap) {
  fuzz::GeneratorOptions gopts;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x1234);
    fuzz::FuzzInstance inst = fuzz::generate(rng, gopts);
    const FactTable f = analyze(inst.circuit);
    SimplifyResult s = simplify(inst.circuit, {inst.goal}, f);
    for (std::uint64_t probe = 0; probe < 4; ++probe)
      expect_net_map_agrees(inst.circuit, s, seed * 17 + probe);
  }
}

TEST(Findings, ReportsConstantsDeadArmsAndOversizedNets) {
  Circuit c("diag");
  const NetId a = c.add_input("a", 3);
  const NetId t = c.add_input("t", 8);
  const NetId e = c.add_input("e", 8);
  const NetId za = c.add_zext(a, 8);  // 8 bits wide, fits 3 → oversized
  const NetId lt = c.add_lt(za, c.add_const(16, 8));  // provably true
  c.add_mux(lt, t, e);                                // dead else arm
  const FactTable f = analyze(c);
  const auto found = findings(c, f);
  bool saw_cmp = false, saw_dead = false, saw_oversized = false;
  for (const Finding& fi : found) {
    if (fi.kind == Finding::Kind::kConstantComparator && fi.net == lt)
      saw_cmp = true;
    if (fi.kind == Finding::Kind::kDeadMuxArm) saw_dead = true;
    if (fi.kind == Finding::Kind::kOversizedNet && fi.net == za)
      saw_oversized = true;
  }
  EXPECT_TRUE(saw_cmp);
  EXPECT_TRUE(saw_dead);
  EXPECT_TRUE(saw_oversized);
}

}  // namespace
}  // namespace rtlsat::presolve
