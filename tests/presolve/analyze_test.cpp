// Analyzer unit tests: forward ranges, parity, conditioned narrowing,
// conflicts, fixpoint termination, and sequential reach invariants with
// widening (including the crafted oscillating cycle).
#include "presolve/analyze.h"

#include <gtest/gtest.h>

#include "ir/circuit.h"
#include "ir/seq.h"

namespace rtlsat::presolve {
namespace {

using ir::Circuit;
using ir::NetId;

TEST(Analyze, ForwardRangesOnDag) {
  Circuit c("fwd");
  const NetId a = c.add_input("a", 3);              // ⟨0,7⟩
  const NetId za = c.add_zext(a, 8);                // ⟨0,7⟩
  const NetId s = c.add_add(za, c.add_const(3, 8)); // ⟨3,10⟩
  const NetId lt = c.add_lt(s, c.add_const(16, 8)); // provably true
  const FactTable f = analyze(c);
  EXPECT_FALSE(f.conditioned);
  EXPECT_FALSE(f.conflict);
  EXPECT_EQ(f.range[a], Interval(0, 7));
  EXPECT_EQ(f.range[za], Interval(0, 7));
  EXPECT_EQ(f.range[s], Interval(3, 10));
  EXPECT_EQ(f.range[lt], Interval::point(1));
}

TEST(Analyze, ParityFactsRefineEndpoints) {
  Circuit c("parity");
  const NetId a = c.add_input("a", 4);
  const NetId e = c.add_shl(a, 1);                  // even
  const NetId s = c.add_add(e, c.add_const(3, 4));  // even + odd = odd
  const FactTable f = analyze(c);
  EXPECT_EQ(f.parity[e], Parity::kEven);
  EXPECT_EQ(f.parity[s], Parity::kOdd);
  // Parity tightens the interval endpoints to matching values.
  EXPECT_EQ(f.range[e].lo() % 2, 0);
  EXPECT_EQ(f.range[e].hi() % 2, 0);
  EXPECT_EQ(f.range[s].lo() % 2, 1);
  EXPECT_EQ(f.range[s].hi() % 2, 1);
}

TEST(Analyze, ConditionedBackwardNarrowsInputs) {
  Circuit c("cond");
  const NetId a = c.add_input("a", 6);
  const NetId lt = c.add_lt(a, c.add_const(10, 6));
  AnalyzeOptions opts;
  opts.assumptions.emplace_back(lt, Interval::point(1));
  const FactTable f = analyze(c, opts);
  EXPECT_TRUE(f.conditioned);
  EXPECT_FALSE(f.conflict);
  EXPECT_EQ(f.range[a], Interval(0, 9));
}

TEST(Analyze, ConditionedConflictOnContradiction) {
  Circuit c("conflict");
  const NetId a = c.add_input("a", 4);
  // eq lowers to a pair of ≤ constraints; conjoining x=3 with x=5 is UNSAT.
  const NetId goal = c.add_and(c.add_eqc(a, 3), c.add_eqc(a, 5));
  AnalyzeOptions opts;
  opts.assumptions.emplace_back(goal, Interval::point(1));
  const FactTable f = analyze(c, opts);
  EXPECT_TRUE(f.conflict);
}

TEST(Analyze, MuxArmMissImpliesSelectPolarity) {
  Circuit c("muxsel");
  const NetId sel = c.add_input("sel", 1);
  const NetId x = c.add_input("x", 4);
  const NetId lo = c.add_extract(x, 1, 0);           // ⟨0,3⟩
  const NetId hi = c.add_add(c.add_zext(lo, 4), c.add_const(8, 4));  // ⟨8,11⟩
  const NetId m = c.add_mux(sel, hi, c.add_zext(lo, 4));
  AnalyzeOptions opts;
  // m ≥ 8 rules out the else arm (⟨0,3⟩), so sel must be 1.
  opts.assumptions.emplace_back(m, Interval(8, 15));
  const FactTable f = analyze(c, opts);
  EXPECT_FALSE(f.conflict);
  EXPECT_EQ(f.range[sel], Interval::point(1));
}

TEST(Analyze, TerminatesOnReconvergentNarrowingChains) {
  // A ladder of wrapping adds with reconvergent fan-out; the narrowing
  // budget bounds the worklist no matter how the refinements interleave.
  Circuit c("ladder");
  const NetId a = c.add_input("a", 12);
  const NetId b = c.add_input("b", 12);
  NetId x = a, y = b;
  for (int i = 0; i < 20; ++i) {
    const NetId s = c.add_add(x, y);
    const NetId d = c.add_sub(s, x);
    x = s;
    y = d;
  }
  const NetId goal = c.add_lt(x, c.add_const(100, 12));
  AnalyzeOptions opts;
  opts.assumptions.emplace_back(goal, Interval::point(1));
  const FactTable f = analyze(c, opts);  // must return, not spin
  EXPECT_TRUE(f.conditioned);
  SUCCEED();
}

TEST(Reach, OscillatingCycleTerminatesAndCovers) {
  // x' = ¬x oscillates 0 ↔ 15: the invariant must terminate (widening)
  // and contain both phases.
  ir::SeqCircuit seq("osc");
  const NetId q = seq.add_register("x", 4, 0);
  seq.bind_next(q, seq.comb().add_notw(q));
  const auto inv = reach_invariants(seq);
  ASSERT_EQ(inv.size(), 1u);
  EXPECT_TRUE(inv[0].contains(0));
  EXPECT_TRUE(inv[0].contains(15));
}

TEST(Reach, FreeRunningCounterWidensToDomain) {
  ir::SeqCircuit seq("ctr");
  const NetId q = seq.add_register("x", 4, 0);
  seq.bind_next(q, seq.comb().add_inc(q));
  const auto inv = reach_invariants(seq);
  ASSERT_EQ(inv.size(), 1u);
  EXPECT_EQ(inv[0], Interval(0, 15));
}

TEST(Reach, SaturatingCounterKeepsTightInvariant) {
  // x' = min(x+1, 10): the exact invariant ⟨0,10⟩ is representable, so
  // widening must not fire and the bound must stay tight.
  ir::SeqCircuit seq("sat");
  const NetId q = seq.add_register("x", 4, 0);
  Circuit& c = seq.comb();
  seq.bind_next(q, c.add_min_raw(c.add_inc(q), c.add_const(10, 4)));
  const auto inv = reach_invariants(seq);
  ASSERT_EQ(inv.size(), 1u);
  EXPECT_EQ(inv[0], Interval(0, 10));
}

TEST(Reach, InitValueOutsideImageStaysCovered) {
  // Init 12 jumps into a low band and stays there; the invariant must keep
  // covering the init state.
  ir::SeqCircuit seq("init");
  const NetId q = seq.add_register("x", 4, 12);
  Circuit& c = seq.comb();
  seq.bind_next(q, c.add_min_raw(q, c.add_const(3, 4)));
  const auto inv = reach_invariants(seq);
  ASSERT_EQ(inv.size(), 1u);
  EXPECT_TRUE(inv[0].contains(12));
  EXPECT_TRUE(inv[0].contains(3));
}

}  // namespace
}  // namespace rtlsat::presolve
