// End-to-end tests of the serve daemon over real loopback TCP: solve,
// both cache tiers, cancellation, stats, progress streaming, and drain.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bmc/unroll.h"
#include "ir/circuit.h"
#include "itc99/itc99.h"
#include "parser/rtl_format.h"
#include "serve/client.h"
#include "trace/json.h"

namespace rtlsat::serve {
namespace {

// a + b == 100 ∧ a < 20 — SAT, with an independently checkable witness.
ir::Circuit sat_circuit(const std::string& name, const std::string& a_name,
                        const std::string& b_name) {
  ir::Circuit c(name);
  const ir::NetId a = c.add_input(a_name, 8);
  const ir::NetId b = c.add_input(b_name, 8);
  const ir::NetId goal = c.add_and(
      c.add_eq(c.add_add(a, b), c.add_const(100, 8)),
      c.add_lt(a, c.add_const(20, 8)));
  c.set_net_name(goal, "goal");
  return c;
}

// Checks a result model against the circuit it was produced for.
void expect_model_satisfies(const ir::Circuit& circuit,
                            const ResultMsg& result, bool value) {
  std::unordered_map<ir::NetId, std::int64_t> inputs;
  for (const auto& [name, v] : result.model) {
    const ir::NetId net = circuit.find_net(name);
    ASSERT_NE(net, ir::kNoNet) << "model names unknown net " << name;
    inputs[net] = v;
  }
  const std::vector<std::int64_t> values = circuit.evaluate(inputs);
  const ir::NetId goal = circuit.find_net("goal");
  ASSERT_NE(goal, ir::kNoNet);
  EXPECT_EQ(values[goal] != 0, value);
}

struct Harness {
  Server server;
  Client client;
  int port = 0;

  explicit Harness(ServerOptions options = {}) : server(std::move(options)) {
    std::string error;
    EXPECT_TRUE(server.start(&error)) << error;
    port = server.port();
    EXPECT_TRUE(client.connect("127.0.0.1", port, &error)) << error;
  }
  ~Harness() {
    client.disconnect();
    server.drain();
    server.wait();
  }
};

TEST(ServerTest, SolvesSatWithCheckableWitness) {
  Harness h;
  const ir::Circuit circuit = sat_circuit("c", "a", "b");
  SolveRequest request;
  request.rtl = parser::write_circuit(circuit);
  request.goal = "goal";
  ResultMsg result;
  std::string error;
  ASSERT_TRUE(h.client.solve(request, &result, &error)) << error;
  EXPECT_EQ(result.verdict, "sat");
  EXPECT_FALSE(result.cache_hit);
  EXPECT_FALSE(result.winner.empty());
  expect_model_satisfies(circuit, result, true);
}

TEST(ServerTest, SolvesUnsatGoalValueFalseOnTautology) {
  Harness h;
  ir::Circuit c("taut");
  const ir::NetId x = c.add_input("x", 4);
  c.set_net_name(c.add_le(c.add_const(0, 4), x), "goal");
  SolveRequest request;
  request.rtl = parser::write_circuit(c);
  request.goal = "goal";
  request.value = false;  // no assignment falsifies 0 <= x
  ResultMsg result;
  std::string error;
  ASSERT_TRUE(h.client.solve(request, &result, &error)) << error;
  EXPECT_EQ(result.verdict, "unsat");
}

TEST(ServerTest, ByteIdenticalRepeatHitsExactTier) {
  Harness h;
  const ir::Circuit circuit = sat_circuit("c", "a", "b");
  SolveRequest request;
  request.rtl = parser::write_circuit(circuit);
  request.goal = "goal";
  ResultMsg first, second;
  std::string error;
  ASSERT_TRUE(h.client.solve(request, &first, &error)) << error;
  ASSERT_TRUE(h.client.solve(request, &second, &error)) << error;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.verdict, "sat");
  EXPECT_EQ(second.model, first.model);
  // The stored result carries the original solve time, not zero.
  EXPECT_EQ(second.solve_seconds, first.solve_seconds);
}

TEST(ServerTest, IsomorphicQueryHitsCanonicalTier) {
  Harness h;
  const ir::Circuit original = sat_circuit("left", "a", "b");
  const ir::Circuit renamed = sat_circuit("right", "p", "q");
  SolveRequest request;
  request.rtl = parser::write_circuit(original);
  request.goal = "goal";
  ResultMsg first;
  std::string error;
  ASSERT_TRUE(h.client.solve(request, &first, &error)) << error;

  // Different bytes, different names — same canonical cone. The transferred
  // witness must satisfy the *renamed* circuit.
  request.rtl = parser::write_circuit(renamed);
  ResultMsg second;
  ASSERT_TRUE(h.client.solve(request, &second, &error)) << error;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.verdict, "sat");
  expect_model_satisfies(renamed, second, true);
}

TEST(ServerTest, CacheBypassSolvesFresh) {
  Harness h;
  const ir::Circuit circuit = sat_circuit("c", "a", "b");
  SolveRequest request;
  request.rtl = parser::write_circuit(circuit);
  request.goal = "goal";
  request.use_cache = false;
  ResultMsg first, second;
  std::string error;
  ASSERT_TRUE(h.client.solve(request, &first, &error)) << error;
  ASSERT_TRUE(h.client.solve(request, &second, &error)) << error;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
}

TEST(ServerTest, PresolveSolveReportsCountersAndCacheReplaysThem) {
  Harness h;
  // eq(zext(a), 200) with a 4-bit is decided by the presolver alone.
  ir::Circuit c("dec");
  const ir::NetId a = c.add_input("a", 4);
  c.set_net_name(c.add_eq(c.add_zext(a, 8), c.add_const(200, 8)), "goal");
  SolveRequest request;
  request.rtl = parser::write_circuit(c);
  request.goal = "goal";
  request.presolve = true;
  ResultMsg first, second;
  std::string error;
  ASSERT_TRUE(h.client.solve(request, &first, &error)) << error;
  EXPECT_EQ(first.verdict, "unsat");
  EXPECT_FALSE(first.cache_hit);
  bool decided = false;
  for (const auto& [name, value] : first.presolve)
    if (name == "presolve.decided" && value == 1) decided = true;
  EXPECT_TRUE(decided) << "presolve.decided counter missing from result";
  // A byte-identical repeat hits the cache and replays the same counters.
  ASSERT_TRUE(h.client.solve(request, &second, &error)) << error;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.presolve, first.presolve);
}

TEST(ServerTest, PresolveSatSolveKeepsCheckableWitness) {
  Harness h;
  const ir::Circuit circuit = sat_circuit("c", "a", "b");
  SolveRequest request;
  request.rtl = parser::write_circuit(circuit);
  request.goal = "goal";
  request.presolve = true;
  ResultMsg result;
  std::string error;
  ASSERT_TRUE(h.client.solve(request, &result, &error)) << error;
  EXPECT_EQ(result.verdict, "sat");
  expect_model_satisfies(circuit, result, true);
}

TEST(ServerTest, RejectsBadRtlAndUnknownGoal) {
  Harness h;
  SolveRequest request;
  request.rtl = "this is not rtl";
  request.goal = "goal";
  ResultMsg result;
  std::string error;
  EXPECT_FALSE(h.client.solve(request, &result, &error));
  EXPECT_NE(error.find("parse error"), std::string::npos) << error;

  // The connection survives a rejected request.
  request.rtl = parser::write_circuit(sat_circuit("c", "a", "b"));
  request.goal = "no_such_net";
  EXPECT_FALSE(h.client.solve(request, &result, &error));
  EXPECT_NE(error.find("unknown goal"), std::string::npos) << error;
  request.goal = "goal";
  EXPECT_TRUE(h.client.solve(request, &result, &error)) << error;
}

TEST(ServerTest, StatsReflectCacheTraffic) {
  Harness h;
  const ir::Circuit circuit = sat_circuit("c", "a", "b");
  SolveRequest request;
  request.rtl = parser::write_circuit(circuit);
  request.goal = "goal";
  ResultMsg result;
  std::string error;
  ASSERT_TRUE(h.client.solve(request, &result, &error)) << error;
  ASSERT_TRUE(h.client.solve(request, &result, &error)) << error;

  ServerStats stats;
  ASSERT_TRUE(h.client.stats(&stats, &error)) << error;
  EXPECT_EQ(stats.connections, 1);
  EXPECT_EQ(stats.jobs_done, 2);
  EXPECT_GE(stats.cache_hits, 1);
  EXPECT_GE(stats.cache_misses, 1);
  EXPECT_GE(stats.cache_entries, 1);
  EXPECT_GT(stats.cache_hit_ratio, 0);
  EXPECT_GT(stats.uptime_seconds, 0);
  EXPECT_TRUE(h.client.ping(&error)) << error;
}

TEST(ServerTest, CancelFromSecondConnectionStopsRunningJob) {
  ServerOptions options;
  options.solve_workers = 1;
  options.max_budget_seconds = 60;
  Harness h(options);
  // An instance the solver needs many seconds for, so cancellation — not
  // completion — ends it.
  bmc::BmcInstance hard = bmc::unroll(itc99::build("b13"), "1", 200);
  hard.circuit.set_name("b13_1_k200");
  SolveRequest request;
  request.rtl = parser::write_circuit(hard.circuit);
  request.goal = hard.circuit.net_name(hard.goal);
  request.budget_seconds = 60;
  request.jobs = 1;
  request.use_cache = false;

  std::uint64_t job = 0;
  std::string error;
  ASSERT_TRUE(h.client.submit(request, &job, &error)) << error;
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  Client other;
  ASSERT_TRUE(other.connect("127.0.0.1", h.port, &error)) << error;
  ASSERT_TRUE(other.cancel(job, &error)) << error;

  ResultMsg result;
  ASSERT_TRUE(h.client.wait(job, &result, &error)) << error;
  EXPECT_EQ(result.verdict, "cancelled");
  EXPECT_LT(result.service_seconds, 30);
}

TEST(ServerTest, ProgressFramesCarryVersionedHeartbeats) {
  ServerOptions options;
  options.progress_interval_seconds = 0.001;
  Harness h(options);
  bmc::BmcInstance instance = bmc::unroll(itc99::build("b01"), "1", 8);
  instance.circuit.set_name("b01_1_k8");
  SolveRequest request;
  request.rtl = parser::write_circuit(instance.circuit);
  request.goal = instance.circuit.net_name(instance.goal);
  request.progress = true;
  request.use_cache = false;

  std::vector<std::string> heartbeats;
  ResultMsg result;
  std::string error;
  ASSERT_TRUE(h.client.solve(request, &result, &error,
                             [&](const std::string& hb) {
                               heartbeats.push_back(hb);
                             }))
      << error;
  ASSERT_FALSE(heartbeats.empty());
  for (const std::string& hb : heartbeats) {
    trace::JsonValue doc;
    ASSERT_TRUE(trace::json_parse(hb, &doc, &error)) << error;
    ASSERT_NE(doc.find("v"), nullptr);
    EXPECT_EQ(doc.find("v")->number, 1);
    ASSERT_NE(doc.find("seq"), nullptr);
    ASSERT_NE(doc.find("conflicts"), nullptr);
  }
}

TEST(ServerTest, DrainRejectsNewSolvesThenExitsCleanly) {
  Server server{ServerOptions{}};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error)) << error;
  // A ping round-trip proves the server-side reader accepted this
  // connection — drain() stops *accepting*, and a connection still in the
  // kernel backlog at that point is dropped by design.
  ASSERT_TRUE(client.ping(&error)) << error;

  server.drain();
  SolveRequest request;
  request.rtl = parser::write_circuit(sat_circuit("c", "a", "b"));
  request.goal = "goal";
  ResultMsg result;
  EXPECT_FALSE(client.solve(request, &result, &error));
  EXPECT_NE(error.find("draining"), std::string::npos) << error;

  client.disconnect();
  server.wait();  // must return: no jobs, no readers, accept unblocked
}

// ---- BMC over the wire ----------------------------------------------------

SolveRequest bmc_request(const std::string& seq_rtl, int bound) {
  SolveRequest request;
  request.seq_rtl = seq_rtl;
  request.property = "1";
  request.bound = bound;
  return request;
}

TEST(ServerBmcTest, SweepingBoundsReusesOneWarmSession) {
  Harness h;
  const ir::SeqCircuit seq = itc99::build("b01");
  const std::string seq_rtl = parser::write_seq_circuit(seq);
  std::string error;
  // b01 property 1: UNSAT through bound 9, first counterexample at 10. All
  // ten bounds run on one warm incremental session server-side; use_cache
  // off so every bound genuinely solves.
  ResultMsg last;
  for (int bound = 1; bound <= 10; ++bound) {
    SolveRequest request = bmc_request(seq_rtl, bound);
    request.use_cache = false;
    ASSERT_TRUE(h.client.solve(request, &last, &error)) << error;
    EXPECT_EQ(last.verdict, bound < 10 ? "unsat" : "sat") << "bound " << bound;
    EXPECT_FALSE(last.cache_hit);
  }
  ServerStats stats;
  ASSERT_TRUE(h.client.stats(&stats, &error)) << error;
  EXPECT_EQ(stats.bmc_sessions, 1);
  EXPECT_EQ(stats.jobs_done, 10);

  // The growing circuit is node-for-node unroll(10)'s, so the witness's
  // frame-stamped input names must replay on a fresh one-shot unrolling.
  const bmc::BmcInstance one_shot = bmc::unroll(seq, "1", 10);
  std::unordered_map<ir::NetId, std::int64_t> inputs;
  for (const auto& [name, value] : last.model) {
    const ir::NetId net = one_shot.circuit.find_net(name);
    ASSERT_NE(net, ir::kNoNet) << "model names unknown net " << name;
    inputs[net] = value;
  }
  const std::vector<std::int64_t> values = one_shot.circuit.evaluate(inputs);
  EXPECT_EQ(values[one_shot.goal], 1);
}

TEST(ServerBmcTest, ByteIdenticalBoundHitsExactTier) {
  Harness h;
  const std::string seq_rtl = parser::write_seq_circuit(itc99::build("b01"));
  const SolveRequest request = bmc_request(seq_rtl, 3);
  ResultMsg first, second;
  std::string error;
  ASSERT_TRUE(h.client.solve(request, &first, &error)) << error;
  ASSERT_TRUE(h.client.solve(request, &second, &error)) << error;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.verdict, first.verdict);
  // A different bound on the same design is a different cache entry (but
  // the same warm session).
  SolveRequest deeper = bmc_request(seq_rtl, 4);
  ResultMsg third;
  ASSERT_TRUE(h.client.solve(deeper, &third, &error)) << error;
  EXPECT_FALSE(third.cache_hit);
  ServerStats stats;
  ASSERT_TRUE(h.client.stats(&stats, &error)) << error;
  EXPECT_EQ(stats.bmc_sessions, 1);
}

TEST(ServerBmcTest, BankBypassUsesThrowawaySessions) {
  Harness h;
  const std::string seq_rtl = parser::write_seq_circuit(itc99::build("b02"));
  SolveRequest request = bmc_request(seq_rtl, 2);
  request.use_cache = false;
  request.use_bank = false;
  ResultMsg result;
  std::string error;
  ASSERT_TRUE(h.client.solve(request, &result, &error)) << error;
  EXPECT_EQ(result.verdict, "unsat");
  ServerStats stats;
  ASSERT_TRUE(h.client.stats(&stats, &error)) << error;
  EXPECT_EQ(stats.bmc_sessions, 0);
}

TEST(ServerBmcTest, RejectsBadSeqRtlAndUnknownProperty) {
  Harness h;
  SolveRequest request = bmc_request("this is not rtl", 2);
  ResultMsg result;
  std::string error;
  EXPECT_FALSE(h.client.solve(request, &result, &error));
  EXPECT_NE(error.find("parse error"), std::string::npos) << error;

  const std::string seq_rtl = parser::write_seq_circuit(itc99::build("b02"));
  request = bmc_request(seq_rtl, 2);
  request.property = "no_such_property";
  EXPECT_FALSE(h.client.solve(request, &result, &error));
  EXPECT_NE(error.find("unknown property"), std::string::npos) << error;

  // The connection survives rejected requests.
  request.property = "1";
  EXPECT_TRUE(h.client.solve(request, &result, &error)) << error;
  EXPECT_EQ(result.verdict, "unsat");
}

TEST(ServerTest, ShutdownRequestDrainsServer) {
  Server server{ServerOptions{}};
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error)) << error;
  ASSERT_TRUE(client.shutdown_server(&error)) << error;
  client.disconnect();
  server.wait();
}

}  // namespace
}  // namespace rtlsat::serve
