#include "serve/cache.h"

#include <gtest/gtest.h>

#include <string>

#include "ir/circuit.h"
#include "ir/cone.h"
#include "serve/bank.h"

namespace rtlsat::serve {
namespace {

// a + b == k ∧ a < 20, an 8-bit SAT shape; `k` varies the cone text.
ir::CanonicalCone cone_for(std::int64_t k) {
  ir::Circuit c("c");
  const ir::NetId a = c.add_input("a", 8);
  const ir::NetId b = c.add_input("b", 8);
  const ir::NetId goal = c.add_and(
      c.add_eq(c.add_add(a, b), c.add_const(k, 8)),
      c.add_lt(a, c.add_const(20, 8)));
  return ir::canonical_cone(c, goal);
}

CachedResult sat_result(std::int64_t a, std::int64_t b) {
  CachedResult r;
  r.status = core::SolveStatus::kSat;
  r.model = {a, b};
  r.solve_seconds = 0.5;
  r.winner = "w";
  return r;
}

TEST(ResultCache, HitReturnsStoredVerdictAndModel) {
  ResultCache cache(8);
  const ir::CanonicalCone cone = cone_for(100);
  EXPECT_FALSE(cache.lookup(cone, true).has_value());
  EXPECT_EQ(cache.misses(), 1);

  cache.insert(cone, true, sat_result(4, 96));
  const auto hit = cache.lookup(cone, true);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, core::SolveStatus::kSat);
  EXPECT_EQ(hit->model, (std::vector<std::int64_t>{4, 96}));
  EXPECT_DOUBLE_EQ(hit->solve_seconds, 0.5);
  EXPECT_EQ(hit->winner, "w");
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, GoalValueIsPartOfTheKey) {
  ResultCache cache(8);
  const ir::CanonicalCone cone = cone_for(100);
  cache.insert(cone, true, sat_result(4, 96));
  EXPECT_FALSE(cache.lookup(cone, false).has_value());
  EXPECT_TRUE(cache.lookup(cone, true).has_value());
}

TEST(ResultCache, UndecidedVerdictsAreNeverStored) {
  ResultCache cache(8);
  const ir::CanonicalCone cone = cone_for(100);
  CachedResult timeout;
  timeout.status = core::SolveStatus::kTimeout;
  cache.insert(cone, true, timeout);
  CachedResult cancelled;
  cancelled.status = core::SolveStatus::kCancelled;
  cache.insert(cone, true, cancelled);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(cone, true).has_value());
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  const ir::CanonicalCone a = cone_for(10);
  const ir::CanonicalCone b = cone_for(20);
  const ir::CanonicalCone c = cone_for(30);
  cache.insert(a, true, sat_result(1, 9));
  cache.insert(b, true, sat_result(2, 18));
  // Touch `a` so `b` becomes the eviction victim.
  ASSERT_TRUE(cache.lookup(a, true).has_value());
  cache.insert(c, true, sat_result(3, 27));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_TRUE(cache.lookup(a, true).has_value());
  EXPECT_FALSE(cache.lookup(b, true).has_value());
  EXPECT_TRUE(cache.lookup(c, true).has_value());
}

TEST(ResultCache, ReinsertRefreshesRecencyWithoutReplacing) {
  ResultCache cache(2);
  const ir::CanonicalCone a = cone_for(10);
  const ir::CanonicalCone b = cone_for(20);
  cache.insert(a, true, sat_result(1, 9));
  cache.insert(b, true, sat_result(2, 18));
  cache.insert(a, true, sat_result(5, 5));  // refresh only; model kept
  cache.insert(cone_for(30), true, sat_result(3, 27));
  const auto hit = cache.lookup(a, true);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->model, (std::vector<std::int64_t>{1, 9}));
  EXPECT_FALSE(cache.lookup(b, true).has_value());
}

TEST(ExactCache, ServesStoredResultForIdenticalKey) {
  ExactCache cache(4);
  const std::string key = exact_request_key("(circuit c ...)", "g", true);
  EXPECT_FALSE(cache.lookup(key).has_value());
  ResultMsg msg;
  msg.verdict = "sat";
  msg.cache_hit = true;
  msg.model.emplace_back("a", 4);
  cache.insert(key, msg);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->verdict, "sat");
  EXPECT_TRUE(hit->cache_hit);
  ASSERT_EQ(hit->model.size(), 1u);
  EXPECT_EQ(hit->model[0].first, "a");
  EXPECT_EQ(cache.hits(), 1);
  // The goal value bit keys a different entry.
  EXPECT_FALSE(
      cache.lookup(exact_request_key("(circuit c ...)", "g", false))
          .has_value());
}

TEST(ExactCache, BoundedLru) {
  ExactCache cache(2);
  ResultMsg msg;
  msg.verdict = "unsat";
  cache.insert(exact_request_key("a", "g", true), msg);
  cache.insert(exact_request_key("b", "g", true), msg);
  ASSERT_TRUE(cache.lookup(exact_request_key("a", "g", true)).has_value());
  cache.insert(exact_request_key("c", "g", true), msg);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(exact_request_key("a", "g", true)).has_value());
  EXPECT_FALSE(cache.lookup(exact_request_key("b", "g", true)).has_value());
}

// ---------------------------------------------------------------------------
// Clause bank

TEST(ClauseBank, SharesPoolOnlyForByteIdenticalInstances) {
  ClauseBank bank(8);
  const BankCheckout first = bank.checkout("(circuit c1)", "g", true, 2);
  const BankCheckout same = bank.checkout("(circuit c1)", "g", true, 2);
  ASSERT_NE(first.pool, nullptr);
  EXPECT_EQ(first.pool, same.pool);
  // Different text, goal, or value each start a fresh pool — the bank must
  // never treat merely isomorphic circuits as shareable (NetIds differ).
  EXPECT_NE(bank.checkout("(circuit c2)", "g", true, 2).pool, first.pool);
  EXPECT_NE(bank.checkout("(circuit c1)", "h", true, 2).pool, first.pool);
  EXPECT_NE(bank.checkout("(circuit c1)", "g", false, 2).pool, first.pool);
  EXPECT_EQ(bank.size(), 4u);
}

TEST(ClauseBank, CheckoutsReserveDisjointWorkerIdRanges) {
  ClauseBank bank(8);
  const BankCheckout a = bank.checkout("(circuit c)", "g", true, 4);
  const BankCheckout b = bank.checkout("(circuit c)", "g", true, 2);
  const BankCheckout c = bank.checkout("(circuit c)", "g", true, 3);
  EXPECT_EQ(a.worker_id_base, 0);
  EXPECT_EQ(b.worker_id_base, 4);
  EXPECT_EQ(c.worker_id_base, 6);
}

TEST(ClauseBank, ZeroCapacityHandsOutFreshUnsharedPools) {
  ClauseBank bank(0);
  const BankCheckout a = bank.checkout("(circuit c)", "g", true, 2);
  const BankCheckout b = bank.checkout("(circuit c)", "g", true, 2);
  ASSERT_NE(a.pool, nullptr);
  ASSERT_NE(b.pool, nullptr);
  EXPECT_NE(a.pool, b.pool);
  EXPECT_EQ(bank.size(), 0u);
}

TEST(ClauseBank, EvictedEntryStaysAliveForItsCheckout) {
  ClauseBank bank(1);
  const BankCheckout a = bank.checkout("(circuit c1)", "g", true, 2);
  const BankCheckout evictor = bank.checkout("(circuit c2)", "g", true, 2);
  (void)evictor;
  // c1 was evicted from the index; the held checkout still works and a new
  // checkout of c1 starts over with a fresh pool and id range.
  const BankCheckout again = bank.checkout("(circuit c1)", "g", true, 2);
  EXPECT_NE(again.pool, a.pool);
  EXPECT_EQ(again.worker_id_base, 0);
  EXPECT_EQ(a.pool->size(), 0u);  // usable, just no longer shared
}

}  // namespace
}  // namespace rtlsat::serve
