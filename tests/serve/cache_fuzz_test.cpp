// Fuzz-oracle cache-soundness mode (docs/serve.md "Cache soundness"):
// generated instances are replayed through the serve cache twice — the
// second query must be a cache hit whose verdict matches both the first
// answer and a fresh deterministic portfolio solve, and every SAT model
// handed out by the cache must replay through Circuit::evaluate.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "fuzz/generator.h"
#include "ir/circuit.h"
#include "parser/rtl_format.h"
#include "portfolio/portfolio.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/rng.h"

namespace rtlsat::serve {
namespace {

const char* verdict_of(core::SolveStatus status) {
  switch (status) {
    case core::SolveStatus::kSat: return "sat";
    case core::SolveStatus::kUnsat: return "unsat";
    default: return "undecided";
  }
}

TEST(CacheFuzz, CachedVerdictsAndModelsMatchFreshSolves) {
  ServerOptions options;
  options.solve_workers = 2;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error)) << error;

  Rng rng(20260807);
  fuzz::GeneratorOptions gopts;
  gopts.min_width = 2;
  gopts.max_width = 8;
  gopts.max_steps = 20;
  gopts.wide_stress_percent = 10;
  constexpr int kInstances = 25;
  int sat_seen = 0, unsat_seen = 0;
  for (int i = 0; i < kInstances; ++i) {
    fuzz::FuzzInstance inst = fuzz::generate(rng, gopts);
    inst.circuit.set_name("fuzz_" + std::to_string(i));
    inst.circuit.set_net_name(inst.goal, "fuzz_goal");
    SolveRequest request;
    request.rtl = parser::write_circuit(inst.circuit);
    request.goal = "fuzz_goal";
    request.deterministic = true;
    request.budget_seconds = 30;

    ResultMsg fresh, cached;
    ASSERT_TRUE(client.solve(request, &fresh, &error))
        << inst.description << ": " << error;
    ASSERT_TRUE(client.solve(request, &cached, &error))
        << inst.description << ": " << error;
    ASSERT_TRUE(fresh.verdict == "sat" || fresh.verdict == "unsat")
        << inst.description << " did not decide: " << fresh.verdict;
    // The first query may legitimately hit too — small generated cones can
    // be isomorphic to an earlier instance's (the canonical tier at work);
    // the byte-identical second query must always hit.
    EXPECT_TRUE(cached.cache_hit) << inst.description;
    EXPECT_EQ(cached.verdict, fresh.verdict) << inst.description;

    // Reference: a fresh portfolio solve outside the server entirely.
    portfolio::PortfolioOptions popts;
    popts.jobs = 2;
    popts.deterministic = true;
    popts.budget_seconds = 30;
    portfolio::Portfolio reference(inst.circuit, inst.goal, true, popts);
    const portfolio::PortfolioResult ref = reference.solve();
    EXPECT_EQ(cached.verdict, verdict_of(ref.status)) << inst.description;

    if (cached.verdict == "sat") {
      ++sat_seen;
      // The cached witness must actually satisfy the goal.
      std::unordered_map<ir::NetId, std::int64_t> model;
      for (const auto& [name, value] : cached.model) {
        const ir::NetId net = inst.circuit.find_net(name);
        ASSERT_NE(net, ir::kNoNet) << inst.description;
        model[net] = value;
      }
      const std::vector<std::int64_t> values = inst.circuit.evaluate(model);
      EXPECT_NE(values[inst.goal], 0) << inst.description;
    } else {
      ++unsat_seen;
    }
  }
  // The corpus must exercise both verdict paths of the cache.
  EXPECT_GT(sat_seen, 0);
  EXPECT_GT(unsat_seen, 0);

  client.disconnect();
  server.drain();
  server.wait();
}

}  // namespace
}  // namespace rtlsat::serve
