#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <string>
#include <thread>

#include "serve/net.h"
#include "trace/json.h"

namespace rtlsat::serve {
namespace {

using trace::JsonValue;
using trace::json_parse;

// ---------------------------------------------------------------------------
// Request round-trips

TEST(Protocol, SolveRequestRoundTrip) {
  Request request;
  request.kind = Request::Kind::kSolve;
  request.solve.rtl = "(circuit c (input a 4))";
  request.solve.goal = "g\"q";  // escapes must survive
  request.solve.value = false;
  request.solve.budget_seconds = 2.5;
  request.solve.jobs = 3;
  request.solve.deterministic = true;
  request.solve.use_cache = false;
  request.solve.use_bank = false;
  request.solve.progress = true;

  Request parsed;
  std::string error;
  ASSERT_TRUE(parse_request(encode_request(request), &parsed, &error)) << error;
  EXPECT_EQ(parsed.kind, Request::Kind::kSolve);
  EXPECT_EQ(parsed.solve.rtl, request.solve.rtl);
  EXPECT_EQ(parsed.solve.goal, request.solve.goal);
  EXPECT_EQ(parsed.solve.value, false);
  EXPECT_DOUBLE_EQ(parsed.solve.budget_seconds, 2.5);
  EXPECT_EQ(parsed.solve.jobs, 3);
  EXPECT_TRUE(parsed.solve.deterministic);
  EXPECT_FALSE(parsed.solve.use_cache);
  EXPECT_FALSE(parsed.solve.use_bank);
  EXPECT_TRUE(parsed.solve.progress);
}

TEST(Protocol, SolveRequestDefaultsMatchStruct) {
  // A minimal solve message (only rtl + goal) parses back to the documented
  // defaults, so older clients keep working as fields are added.
  Request request;
  request.kind = Request::Kind::kSolve;
  request.solve.rtl = "(circuit c)";
  request.solve.goal = "g";
  Request parsed;
  std::string error;
  ASSERT_TRUE(parse_request(encode_request(request), &parsed, &error)) << error;
  EXPECT_TRUE(parsed.solve.value);
  EXPECT_EQ(parsed.solve.budget_seconds, 0);
  EXPECT_EQ(parsed.solve.jobs, 0);
  EXPECT_FALSE(parsed.solve.deterministic);
  EXPECT_TRUE(parsed.solve.use_cache);
  EXPECT_TRUE(parsed.solve.use_bank);
  EXPECT_FALSE(parsed.solve.progress);
}

TEST(Protocol, ControlRequestsRoundTrip) {
  for (const Request::Kind kind :
       {Request::Kind::kCancel, Request::Kind::kStats, Request::Kind::kPing,
        Request::Kind::kShutdown}) {
    Request request;
    request.kind = kind;
    request.job = 42;
    Request parsed;
    std::string error;
    ASSERT_TRUE(parse_request(encode_request(request), &parsed, &error))
        << error;
    EXPECT_EQ(parsed.kind, kind);
    if (kind == Request::Kind::kCancel) {
      EXPECT_EQ(parsed.job, 42u);
    }
  }
}

TEST(Protocol, ParseRequestRejectsGarbage) {
  Request parsed;
  std::string error;
  EXPECT_FALSE(parse_request("not json", &parsed, &error));
  EXPECT_FALSE(parse_request("[]", &parsed, &error));
  EXPECT_FALSE(parse_request("{}", &parsed, &error));
  EXPECT_FALSE(parse_request("{\"type\":\"florble\"}", &parsed, &error));
  // A solve without rtl/goal is malformed, not defaulted.
  EXPECT_FALSE(parse_request("{\"type\":\"solve\"}", &parsed, &error));
}

// ---------------------------------------------------------------------------
// Server frame round-trips

TEST(Protocol, QueuedResultErrorRoundTrip) {
  ServerMsg msg;
  std::string error;
  ASSERT_TRUE(parse_server_msg(encode_queued(7, 99), &msg, &error)) << error;
  EXPECT_EQ(msg.kind, ServerMsg::Kind::kQueued);
  EXPECT_EQ(msg.v, kProtocolVersion);
  EXPECT_EQ(msg.seq, 7);
  EXPECT_TRUE(msg.has_job);
  EXPECT_EQ(msg.job, 99u);

  ResultMsg result;
  result.verdict = "sat";
  result.cache_hit = true;
  result.solve_seconds = 1.5;
  result.service_seconds = 0.25;
  result.winner = "hdpll+pred";
  result.model.emplace_back("a", 4);
  result.model.emplace_back("b", 96);
  ASSERT_TRUE(parse_server_msg(encode_result(8, 99, result), &msg, &error))
      << error;
  EXPECT_EQ(msg.kind, ServerMsg::Kind::kResult);
  EXPECT_EQ(msg.seq, 8);
  EXPECT_EQ(msg.job, 99u);
  EXPECT_EQ(msg.result.verdict, "sat");
  EXPECT_TRUE(msg.result.cache_hit);
  EXPECT_DOUBLE_EQ(msg.result.solve_seconds, 1.5);
  EXPECT_DOUBLE_EQ(msg.result.service_seconds, 0.25);
  EXPECT_EQ(msg.result.winner, "hdpll+pred");
  ASSERT_EQ(msg.result.model.size(), 2u);
  EXPECT_EQ(msg.result.model[0].first, "a");
  EXPECT_EQ(msg.result.model[0].second, 4);
  EXPECT_EQ(msg.result.model[1].second, 96);

  ASSERT_TRUE(parse_server_msg(encode_error(9, "boom"), &msg, &error));
  EXPECT_EQ(msg.kind, ServerMsg::Kind::kError);
  EXPECT_FALSE(msg.has_job);
  EXPECT_EQ(msg.message, "boom");

  ASSERT_TRUE(parse_server_msg(encode_job_error(10, 5, "queue full"), &msg,
                               &error));
  EXPECT_EQ(msg.kind, ServerMsg::Kind::kError);
  EXPECT_TRUE(msg.has_job);
  EXPECT_EQ(msg.job, 5u);
  EXPECT_EQ(msg.message, "queue full");
}

TEST(Protocol, PresolveFlagAndCountersRoundTrip) {
  // The presolve request flag and the result's presolve.* counters are
  // additive v1 fields: absent on the wire by default, round-tripping
  // verbatim when set.
  Request request;
  request.kind = Request::Kind::kSolve;
  request.solve.rtl = "(circuit c)";
  request.solve.goal = "g";
  EXPECT_EQ(encode_request(request).find("presolve"), std::string::npos);
  request.solve.presolve = true;
  Request parsed;
  std::string error;
  ASSERT_TRUE(parse_request(encode_request(request), &parsed, &error)) << error;
  EXPECT_TRUE(parsed.solve.presolve);

  ResultMsg result;
  result.verdict = "unsat";
  result.presolve.emplace_back("presolve.decided", 1);
  result.presolve.emplace_back("presolve.nets_simplified", 12);
  ServerMsg msg;
  ASSERT_TRUE(parse_server_msg(encode_result(3, 1, result), &msg, &error))
      << error;
  ASSERT_EQ(msg.result.presolve.size(), 2u);
  EXPECT_EQ(msg.result.presolve[0].first, "presolve.decided");
  EXPECT_EQ(msg.result.presolve[0].second, 1);
  EXPECT_EQ(msg.result.presolve[1].first, "presolve.nets_simplified");
  EXPECT_EQ(msg.result.presolve[1].second, 12);

  // Counter-free results stay byte-compatible with older clients.
  ResultMsg bare;
  bare.verdict = "unsat";
  EXPECT_EQ(encode_result(4, 1, bare).find("presolve"), std::string::npos);
}

TEST(Protocol, ProgressEmbedsHeartbeatVerbatim) {
  // The heartbeat's own (v, seq) pair is scoped to the worker stream and
  // must survive the embedding untouched.
  const std::string hb =
      "{\"v\":1,\"seq\":3,\"worker\":\"w0\",\"conflicts\":12,\"decisions\":7}";
  ServerMsg msg;
  std::string error;
  ASSERT_TRUE(parse_server_msg(encode_progress(4, 2, hb), &msg, &error))
      << error;
  EXPECT_EQ(msg.kind, ServerMsg::Kind::kProgress);
  EXPECT_EQ(msg.seq, 4);
  EXPECT_EQ(msg.job, 2u);
  JsonValue doc;
  ASSERT_TRUE(json_parse(msg.hb, &doc, &error)) << error;
  EXPECT_EQ(doc.find("v")->number, 1);
  EXPECT_EQ(doc.find("seq")->number, 3);
  EXPECT_EQ(doc.find("worker")->string, "w0");
  EXPECT_EQ(doc.find("conflicts")->number, 12);
}

TEST(Protocol, StatsPongByeRoundTrip) {
  ServerStats stats;
  stats.uptime_seconds = 12.5;
  stats.connections = 2;
  stats.queue_depth = 3;
  stats.in_flight = 1;
  stats.jobs_done = 40;
  stats.cache_hits = 30;
  stats.cache_misses = 10;
  stats.cache_entries = 8;
  stats.bank_pools = 4;
  stats.cache_hit_ratio = 0.75;
  stats.jobs_per_second = 3.2;

  ServerMsg msg;
  std::string error;
  ASSERT_TRUE(parse_server_msg(encode_stats(1, stats), &msg, &error)) << error;
  EXPECT_EQ(msg.kind, ServerMsg::Kind::kStats);
  EXPECT_DOUBLE_EQ(msg.stats.uptime_seconds, 12.5);
  EXPECT_EQ(msg.stats.connections, 2);
  EXPECT_EQ(msg.stats.queue_depth, 3);
  EXPECT_EQ(msg.stats.in_flight, 1);
  EXPECT_EQ(msg.stats.jobs_done, 40);
  EXPECT_EQ(msg.stats.cache_hits, 30);
  EXPECT_EQ(msg.stats.cache_misses, 10);
  EXPECT_EQ(msg.stats.cache_entries, 8);
  EXPECT_EQ(msg.stats.bank_pools, 4);
  EXPECT_DOUBLE_EQ(msg.stats.cache_hit_ratio, 0.75);
  EXPECT_DOUBLE_EQ(msg.stats.jobs_per_second, 3.2);

  ASSERT_TRUE(parse_server_msg(encode_pong(2), &msg, &error));
  EXPECT_EQ(msg.kind, ServerMsg::Kind::kPong);
  ASSERT_TRUE(parse_server_msg(encode_bye(3), &msg, &error));
  EXPECT_EQ(msg.kind, ServerMsg::Kind::kBye);
}

TEST(Protocol, ParseServerMsgEnforcesVersionAndSeq) {
  ServerMsg msg;
  std::string error;
  EXPECT_FALSE(parse_server_msg("{\"type\":\"pong\",\"seq\":0}", &msg, &error));
  EXPECT_FALSE(
      parse_server_msg("{\"type\":\"pong\",\"v\":2,\"seq\":0}", &msg, &error));
  EXPECT_FALSE(parse_server_msg("{\"type\":\"pong\",\"v\":1}", &msg, &error));
  EXPECT_FALSE(parse_server_msg("{\"type\":\"pong\",\"v\":1,\"seq\":0.5}",
                                &msg, &error));
  EXPECT_TRUE(parse_server_msg("{\"type\":\"pong\",\"v\":1,\"seq\":0}", &msg,
                               &error));
}

// ---------------------------------------------------------------------------
// Length framing over a real socket pair

TEST(Net, FrameRoundTripOverSocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payloads[] = {"{}", "{\"k\":\"v\"}",
                                  std::string(100000, 'x')};
  std::thread writer([&] {
    for (const std::string& payload : payloads)
      ASSERT_TRUE(write_frame(fds[0], payload));
    close_fd(fds[0]);
  });
  for (const std::string& payload : payloads) {
    std::string got, error;
    ASSERT_TRUE(read_frame(fds[1], &got, &error)) << error;
    EXPECT_EQ(got, payload);
  }
  // Peer closed cleanly: read fails with an *empty* error (EOF marker).
  std::string got, error;
  EXPECT_FALSE(read_frame(fds[1], &got, &error));
  EXPECT_TRUE(error.empty());
  writer.join();
  close_fd(fds[1]);
}

TEST(Net, ReadFrameRejectsMalformedLength) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string junk = "notanumber\n{}";
  ASSERT_GT(::send(fds[0], junk.data(), junk.size(), 0), 0);
  std::string got, error;
  EXPECT_FALSE(read_frame(fds[1], &got, &error));
  EXPECT_FALSE(error.empty());
  close_fd(fds[0]);
  close_fd(fds[1]);
}

TEST(Net, ReadFrameRejectsOversizedLength) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string huge = "9999999999\n";  // over kMaxFrameBytes
  ASSERT_GT(::send(fds[0], huge.data(), huge.size(), 0), 0);
  std::string got, error;
  EXPECT_FALSE(read_frame(fds[1], &got, &error));
  EXPECT_FALSE(error.empty());
  close_fd(fds[0]);
  close_fd(fds[1]);
}

}  // namespace
}  // namespace rtlsat::serve
