#include "bitblast/bitblast.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rtlsat::bitblast {
namespace {

using ir::Circuit;
using ir::NetId;

// Pins all inputs, solves, and checks the blasted value of `net` equals the
// evaluator's result — the core encoding-correctness harness.
void check_against_evaluator(
    Circuit& c, const std::unordered_map<NetId, std::int64_t>& inputs,
    std::initializer_list<NetId> observed) {
  sat::Solver solver;
  BitBlaster blaster(c, solver);
  for (const auto& [net, value] : inputs) blaster.assert_equals(net, value);
  ASSERT_EQ(solver.solve(), sat::Result::kSat);
  const auto values = c.evaluate(inputs);
  for (const NetId net : observed) {
    EXPECT_EQ(blaster.model_value(net), values[net])
        << "net " << c.net_name(net);
  }
}

TEST(BitBlast, AdderMatchesEvaluator) {
  Circuit c("t");
  const NetId a = c.add_input("a", 8);
  const NetId b = c.add_input("b", 8);
  const NetId s = c.add_add(a, b);
  check_against_evaluator(c, {{a, 200}, {b, 100}}, {s});
}

TEST(BitBlast, SubtractorWraps) {
  Circuit c("t");
  const NetId a = c.add_input("a", 8);
  const NetId b = c.add_input("b", 8);
  const NetId d = c.add_sub(a, b);
  check_against_evaluator(c, {{a, 5}, {b, 10}}, {d});
}

TEST(BitBlast, ComparatorsAllRelations) {
  Circuit c("t");
  const NetId a = c.add_input("a", 6);
  const NetId b = c.add_input("b", 6);
  const NetId lt = c.add_lt(a, b);
  const NetId le = c.add_le(a, b);
  const NetId eq = c.add_eq(a, b);
  for (const auto& [av, bv] :
       std::vector<std::pair<int, int>>{{3, 7}, {7, 3}, {5, 5}, {0, 63}}) {
    check_against_evaluator(
        c, {{a, av}, {b, bv}}, {lt, le, eq});
  }
}

TEST(BitBlast, MuxAndWiring) {
  Circuit c("t");
  const NetId s = c.add_input("s", 1);
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId m = c.add_mux(s, x, y);
  const NetId cat = c.add_concat(c.add_extract(x, 7, 4), c.add_extract(y, 3, 0));
  const NetId z = c.add_zext(c.add_extract(x, 3, 1), 9);
  check_against_evaluator(c, {{s, 1}, {x, 0xAB}, {y, 0x5C}}, {m, cat, z});
  check_against_evaluator(c, {{s, 0}, {x, 0xAB}, {y, 0x5C}}, {m, cat, z});
}

TEST(BitBlast, ShiftsAndMulc) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId a = c.add_shl(x, 3);
  const NetId b = c.add_shr(x, 2);
  const NetId m = c.add_mulc(x, 5);
  const NetId n = c.add_notw(x);
  check_against_evaluator(c, {{x, 0b10110110}}, {a, b, m, n});
}

TEST(BitBlast, MinMaxRawNodes) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId mn = c.add_min_raw(x, y);
  const NetId mx = c.add_max_raw(x, y);
  check_against_evaluator(c, {{x, 77}, {y, 33}}, {mn, mx});
  check_against_evaluator(c, {{x, 12}, {y, 200}}, {mn, mx});
}

TEST(BitBlast, CheckSatFindsWitness) {
  // a + b == 300 is satisfiable at width 9.
  Circuit c("t");
  const NetId a = c.add_input("a", 9);
  const NetId b = c.add_input("b", 9);
  const NetId goal = c.add_eq(c.add_add(a, b), c.add_const(300, 9));
  const CheckResult result = check_sat(c, goal);
  ASSERT_EQ(result.result, sat::Result::kSat);
  const auto values = c.evaluate(result.input_model);
  EXPECT_EQ(values[goal], 1);
}

TEST(BitBlast, CheckSatRefutes) {
  // x < x is unsatisfiable.
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId goal =
      c.add_and(c.add_lt(x, y), c.add_lt(y, x));
  EXPECT_EQ(check_sat(c, goal).result, sat::Result::kUnsat);
}

TEST(BitBlast, RandomizedCircuitAgreesWithEvaluator) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    Circuit c("rand");
    std::vector<NetId> words;
    std::vector<NetId> bools;
    for (int i = 0; i < 3; ++i) words.push_back(c.add_input("w" + std::to_string(i), 6));
    for (int i = 0; i < 2; ++i) bools.push_back(c.add_input("b" + std::to_string(i), 1));
    // Random expression growth.
    for (int step = 0; step < 12; ++step) {
      const NetId a = words[rng.below(words.size())];
      const NetId b = words[rng.below(words.size())];
      switch (rng.below(6)) {
        case 0: words.push_back(c.add_add(a, b)); break;
        case 1: words.push_back(c.add_sub(a, b)); break;
        case 2:
          words.push_back(c.add_mux(bools[rng.below(bools.size())], a, b));
          break;
        case 3: bools.push_back(c.add_lt(a, b)); break;
        case 4: bools.push_back(c.add_le(a, b)); break;
        case 5:
          bools.push_back(c.add_and(bools[rng.below(bools.size())],
                                    bools[rng.below(bools.size())]));
          break;
      }
    }
    std::unordered_map<NetId, std::int64_t> inputs;
    for (const NetId in : c.inputs())
      inputs[in] = rng.range(0, c.domain(in).hi());
    sat::Solver solver;
    BitBlaster blaster(c, solver);
    for (const auto& [net, value] : inputs) blaster.assert_equals(net, value);
    ASSERT_EQ(solver.solve(), sat::Result::kSat);
    const auto values = c.evaluate(inputs);
    for (NetId id = 0; id < c.num_nets(); ++id)
      ASSERT_EQ(blaster.model_value(id), values[id]) << "iter " << iter;
  }
}

}  // namespace
}  // namespace rtlsat::bitblast
