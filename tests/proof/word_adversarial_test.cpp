// Adversarial checker suite: hand-corrupted certificates must be rejected
// with a step-indexed diagnostic. Each corruption targets one trust
// boundary of the word-certificate checker — a missing antecedent
// narrowing, a misattributed interval rule, a clause referenced after its
// deletion, a perturbed Farkas coefficient, and a truncated file.

#include <gtest/gtest.h>

#include <string>

#include "core/hdpll.h"
#include "proof/word_check.h"
#include "proof/word_writer.h"

namespace rtlsat::proof {
namespace {

// Hand-built refutation of a = b = 1 (forced through an AND) against
// a XOR b = 1. Flags carve out the individual corruptions.
struct BuildOptions {
  bool drop_antecedent = false;  // omit the narrowing that pins b
  bool wrong_rule_id = false;    // justify a's narrowing by the wrong node
  bool truncate = false;         // no end record
};

std::string build_cert(const BuildOptions& opt) {
  WordCertWriter w;
  w.header();
  w.net(0, 1, "input", {}, 0, 0);
  w.net(1, 1, "input", {}, 0, 0);
  w.net(2, 1, "and", {0, 1}, 0, 0);
  w.net(3, 1, "xor", {0, 1}, 0, 0);
  w.assume(2, 1, 1);
  w.assume(3, 1, 1);
  // AND output 1 pins both inputs; XOR then conflicts on its pinned output.
  w.narrow0({0, 'n', opt.wrong_rule_id ? 3u : 2u, 1, 1});
  if (!opt.drop_antecedent) w.narrow0({1, 'n', 2, 1, 1});
  w.conflict0('n', 3);
  if (!opt.truncate) w.finish("unsat");
  return w.str();
}

TEST(WordAdversarial, HandBuiltBaselineAccepted) {
  const WordCheckResult check = word_check(build_cert({}));
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_TRUE(check.refuted);
}

TEST(WordAdversarial, DroppedAntecedentRejected) {
  BuildOptions opt;
  opt.drop_antecedent = true;
  const WordCheckResult check = word_check(build_cert(opt));
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("line "), std::string::npos) << check.error;
  EXPECT_NE(check.error.find("does not conflict"), std::string::npos)
      << check.error;
}

TEST(WordAdversarial, WrongIntervalRuleIdRejected) {
  BuildOptions opt;
  opt.wrong_rule_id = true;
  const WordCheckResult check = word_check(build_cert(opt));
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("line "), std::string::npos) << check.error;
  EXPECT_NE(check.error.find("does not justify"), std::string::npos)
      << check.error;
}

TEST(WordAdversarial, TruncatedFileRejected) {
  BuildOptions opt;
  opt.truncate = true;
  const WordCheckResult check = word_check(build_cert(opt));
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("end record"), std::string::npos) << check.error;
}

TEST(WordAdversarial, UseAfterDeleteRejected) {
  // A unit clause arrives via trusted import, is deleted, and is then
  // cited as the justification of a narrowing.
  WordCertWriter w;
  w.header();
  w.net(0, 1, "input", {}, 0, 0);
  WordLit unit;
  unit.net = 0;
  unit.is_bool = true;
  unit.positive = true;
  unit.lo = 0;
  unit.hi = 0;
  w.import_clause(0, /*worker=*/2, /*seq=*/0, {unit});
  w.delete_clause(0);
  w.narrow0({0, 'c', 0, 0, 0});
  w.finish("sat");

  WordCheckOptions trusting;
  trusting.trust_imports = true;
  const WordCheckResult check = word_check(w.str(), trusting);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("line "), std::string::npos) << check.error;
  EXPECT_NE(check.error.find("after its deletion"), std::string::npos)
      << check.error;
}

// Generates a real solver certificate whose refutation needs the
// arithmetic end-game (2·x ≡ 5 mod 16 is a parity contradiction that
// interval narrowing alone cannot see), then perturbs one Farkas
// coefficient in its first linear-combination step by one.
std::string solver_fme_cert() {
  ir::Circuit c("t");
  const ir::NetId x = c.add_input("x", 4);
  const ir::NetId goal = c.add_eq(c.add_add(x, x), c.add_const(5, 4));
  WordCertWriter writer;
  core::HdpllOptions options;
  options.proof = &writer;
  core::HdpllSolver solver(c, options);
  solver.assume_bool(goal, true);
  EXPECT_EQ(solver.solve().status, core::SolveStatus::kUnsat);
  return writer.str();
}

TEST(WordAdversarial, OffByOneFarkasCoefficientRejected) {
  const std::string cert = solver_fme_cert();
  {
    const WordCheckResult check = word_check(cert);
    ASSERT_TRUE(check.ok) << check.error;
    EXPECT_TRUE(check.refuted);
  }

  // Locate the last combination step's first coefficient:
  //   "s":"comb","of":[["<ref>","<lambda>"],...
  // The last combination must ground the final branch contradiction, so
  // its coefficients are load-bearing (the generator also emits redundant
  // early rows whose perturbation the checker rightly tolerates).
  const std::string pattern = "\"s\":\"comb\",\"of\":[[\"";
  const std::size_t comb = cert.rfind(pattern);
  ASSERT_NE(comb, std::string::npos)
      << "instance no longer exercises the FME end-game";
  // ref/lambda separator, searched after the pattern (which itself
  // contains a quote-comma-quote between "comb" and "of").
  std::size_t pos = cert.find("\",\"", comb + pattern.size());
  ASSERT_NE(pos, std::string::npos);
  pos += 3;
  const std::size_t end = cert.find('"', pos);
  ASSERT_NE(end, std::string::npos);
  const long long lambda = std::stoll(cert.substr(pos, end - pos));
  std::string corrupted = cert;
  corrupted.replace(pos, end - pos, std::to_string(lambda + 1));

  const WordCheckResult check = word_check(corrupted);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("line "), std::string::npos) << check.error;
}

}  // namespace
}  // namespace rtlsat::proof
