// Certificate round trip over the committed regression corpus: every
// UNSAT verdict the solver reaches on a tests/regress/ repro must come
// with a word certificate the independent checker accepts. SAT repros
// still log a consistent derivation (checked, just not a refutation).

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <string>
#include <vector>

#include "core/hdpll.h"
#include "fuzz/reduce.h"
#include "proof/word_check.h"
#include "proof/word_writer.h"

#ifndef RTLSAT_REGRESS_DIR
#error "RTLSAT_REGRESS_DIR must point at the committed corpus"
#endif

namespace rtlsat::core {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(RTLSAT_REGRESS_DIR)) {
    if (entry.path().extension() == ".rtl")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

class CorpusCert : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusCert, CertificateVerifies) {
  ir::NetId goal = ir::kNoNet;
  const ir::Circuit circuit = fuzz::load_repro_file(GetParam(), &goal);
  ASSERT_NE(goal, ir::kNoNet);

  // Run the richest certified configuration so the corpus also exercises
  // probe/cut records, not just conflict learning.
  proof::WordCertWriter writer;
  HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = true;
  options.timeout_seconds = 60;  // repros are tiny; never trips in practice
  options.proof = &writer;
  HdpllSolver solver(circuit, options);
  solver.assume_bool(goal, true);
  const SolveStatus status = solver.solve().status;

  const proof::WordCheckResult check = proof::word_check(writer.str());
  EXPECT_TRUE(check.ok) << GetParam() << ": " << check.error;
  if (status == SolveStatus::kUnsat) {
    EXPECT_TRUE(check.refuted) << GetParam();
    EXPECT_EQ(check.verdict, "unsat");
  } else if (status == SolveStatus::kSat) {
    EXPECT_FALSE(check.refuted) << GetParam();
    EXPECT_EQ(check.verdict, "sat");
  }
}

std::string corpus_test_name(
    const ::testing::TestParamInfo<std::string>& info) {
  std::string name = std::filesystem::path(info.param).stem().string();
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusCert, ::testing::ValuesIn(corpus_files()),
                         corpus_test_name);

}  // namespace
}  // namespace rtlsat::core
