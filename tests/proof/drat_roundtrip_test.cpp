// DRAT round trip for the Boolean CDCL core: a refutation logged by
// sat::Solver must be accepted by the independent RUP checker, in both the
// text and binary encodings — and corrupted or truncated proofs must be
// rejected with a step-indexed diagnostic.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "proof/drat.h"
#include "proof/drat_check.h"
#include "sat/solver.h"

namespace rtlsat::sat {
namespace {

// Pigeonhole PHP(holes+1, holes): UNSAT, and small instances already force
// real search with learned clauses.
void add_pigeonhole(Solver& solver, proof::DratWriter& drat, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> var(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p)
    for (int h = 0; h < holes; ++h) var[p][h] = solver.new_var();
  const auto dimacs = [&](int p, int h, bool positive) {
    const int v = static_cast<int>(var[p][h]) + 1;
    return positive ? v : -v;
  };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    std::vector<int> ints;
    for (int h = 0; h < holes; ++h) {
      clause.emplace_back(var[p][h], true);
      ints.push_back(dimacs(p, h, true));
    }
    drat.original(ints);
    solver.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        drat.original({dimacs(p, h, false), dimacs(q, h, false)});
        solver.add_clause({Lit(var[p][h], false), Lit(var[q][h], false)});
      }
    }
  }
}

proof::DratWriter refute_pigeonhole(int holes, bool binary) {
  proof::DratWriter::Options drat_options;
  drat_options.binary = binary;
  proof::DratWriter drat(drat_options);
  SolverOptions options;
  options.drat = &drat;
  Solver solver(options);
  add_pigeonhole(solver, drat, holes);
  EXPECT_EQ(solver.solve(), Result::kUnsat);
  EXPECT_TRUE(drat.concluded());
  EXPECT_GT(drat.proof_steps(), 0);
  return drat;
}

TEST(DratRoundTrip, TextProofAccepted) {
  const proof::DratWriter drat = refute_pigeonhole(4, /*binary=*/false);
  const proof::DratCheckResult check =
      proof::drat_check(drat.dimacs(), drat.proof(), /*binary=*/false);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.steps_checked, 0);
}

TEST(DratRoundTrip, BinaryProofAccepted) {
  const proof::DratWriter drat = refute_pigeonhole(4, /*binary=*/true);
  const proof::DratCheckResult check =
      proof::drat_check(drat.dimacs(), drat.proof(), /*binary=*/true);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.steps_checked, 0);
}

TEST(DratRoundTrip, NonRupStepRejected) {
  // Splice a clause that is not a unit-propagation consequence in front of
  // the real proof: RUP on its negation must fail at step 1.
  const proof::DratWriter drat = refute_pigeonhole(3, /*binary=*/false);
  const std::string corrupted = "1 0\n" + drat.proof();
  const proof::DratCheckResult check =
      proof::drat_check(drat.dimacs(), corrupted, /*binary=*/false);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("step 1"), std::string::npos) << check.error;
}

TEST(DratRoundTrip, TruncatedProofRejected) {
  // Keep only the first proof step: every step is still RUP, but no
  // refutation is concluded. (Dropping just the final empty clause is not
  // enough — by then the accepted steps already propagate to a root
  // conflict, which the checker rightly accepts as a refutation.)
  const proof::DratWriter drat = refute_pigeonhole(3, /*binary=*/false);
  const std::string& proof = drat.proof();
  const std::size_t cut = proof.find('\n');
  ASSERT_NE(cut, std::string::npos);
  const proof::DratCheckResult check = proof::drat_check(
      drat.dimacs(), proof.substr(0, cut + 1), /*binary=*/false);
  EXPECT_FALSE(check.ok);
}

TEST(DratRoundTrip, DeletionsRoundTrip) {
  // A larger instance with an aggressive learnt cap exercises DB
  // reduction, so the proof carries 'd' lines the checker must honor.
  const proof::DratWriter drat = refute_pigeonhole(5, /*binary=*/false);
  const proof::DratCheckResult check =
      proof::drat_check(drat.dimacs(), drat.proof(), /*binary=*/false);
  EXPECT_TRUE(check.ok) << check.error;
}

}  // namespace
}  // namespace rtlsat::sat
