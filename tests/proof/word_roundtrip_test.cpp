// Producer/checker round trip for word-level certificates: every verdict
// the HDPLL solver emits with proof logging on must yield a certificate
// that the independent checker accepts — and an UNSAT verdict must carry
// an established refutation.

#include <gtest/gtest.h>

#include <string>

#include "core/hdpll.h"
#include "portfolio/clause_pool.h"
#include "proof/word_check.h"
#include "proof/word_writer.h"

namespace rtlsat::core {
namespace {

using ir::Circuit;
using ir::NetId;

struct RoundTrip {
  SolveStatus status = SolveStatus::kTimeout;
  proof::WordCheckResult check;
  std::string cert;
};

RoundTrip solve_and_check(const Circuit& c, NetId goal, HdpllOptions options,
                          bool trust_imports = false) {
  proof::WordCertWriter writer;
  options.proof = &writer;
  HdpllSolver solver(c, options);
  solver.assume_bool(goal, true);
  RoundTrip rt;
  rt.status = solver.solve().status;
  EXPECT_TRUE(writer.finished());
  rt.cert = writer.str();
  proof::WordCheckOptions check_options;
  check_options.trust_imports = trust_imports;
  rt.check = proof::word_check(rt.cert, check_options);
  return rt;
}

void expect_verified_unsat(const RoundTrip& rt) {
  ASSERT_EQ(rt.status, SolveStatus::kUnsat);
  EXPECT_TRUE(rt.check.ok) << rt.check.error << "\n" << rt.cert;
  EXPECT_TRUE(rt.check.refuted);
  EXPECT_EQ(rt.check.verdict, "unsat");
}

Circuit comparator_cycle() {
  // x < y ∧ y < x: refuted by the arithmetic end-game (cut/fme records).
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  c.add_and(c.add_lt(x, y), c.add_lt(y, x));
  return c;
}

Circuit xor_triangle() {
  // a≠b ∧ b≠d ∧ a≠d: purely Boolean UNSAT (search + learned clauses).
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId d = c.add_input("d", 1);
  c.add_and(c.add_and(c.add_xor(a, b), c.add_xor(b, d)), c.add_xor(a, d));
  return c;
}

Circuit increment_fixpoint() {
  // (x + 1) == x: wrap-aware arithmetic refutation.
  Circuit c("t");
  const NetId x = c.add_input("x", 6);
  c.add_eq(c.add_inc(x), x);
  return c;
}

NetId goal_of(const Circuit& c) { return c.num_nets() - 1; }

TEST(WordCertRoundTrip, ComparatorCycleUnsat) {
  const Circuit c = comparator_cycle();
  expect_verified_unsat(solve_and_check(c, goal_of(c), HdpllOptions{}));
}

TEST(WordCertRoundTrip, XorTriangleUnsat) {
  const Circuit c = xor_triangle();
  expect_verified_unsat(solve_and_check(c, goal_of(c), HdpllOptions{}));
}

TEST(WordCertRoundTrip, IncrementFixpointUnsat) {
  const Circuit c = increment_fixpoint();
  expect_verified_unsat(solve_and_check(c, goal_of(c), HdpllOptions{}));
}

TEST(WordCertRoundTrip, PredicateLearningConfig) {
  HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = true;
  for (const Circuit& c :
       {comparator_cycle(), xor_triangle(), increment_fixpoint()}) {
    expect_verified_unsat(solve_and_check(c, goal_of(c), options));
  }
}

TEST(WordCertRoundTrip, WordProbingConfig) {
  HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = true;
  options.learning.word_probing = true;
  for (const Circuit& c : {comparator_cycle(), increment_fixpoint()}) {
    expect_verified_unsat(solve_and_check(c, goal_of(c), options));
  }
}

TEST(WordCertRoundTrip, ReductionEmitsCheckableDeletions) {
  // Force clause-database sweeps so the certificate carries delc records.
  HdpllOptions options;
  options.reduction_base = 1;
  options.reduction_grow = 1.0;
  const Circuit c = xor_triangle();
  const RoundTrip rt = solve_and_check(c, goal_of(c), options);
  expect_verified_unsat(rt);
}

TEST(WordCertRoundTrip, SatVerdictCertificate) {
  // a + b == 100 ∧ a < 20: SAT — the certificate is a consistent
  // derivation log ending in a sat verdict, and the checker accepts it
  // without claiming a refutation.
  Circuit c("t");
  const NetId a = c.add_input("a", 8);
  const NetId b = c.add_input("b", 8);
  const NetId goal = c.add_and(c.add_eq(c.add_add(a, b), c.add_const(100, 8)),
                               c.add_lt(a, c.add_const(20, 8)));
  const RoundTrip rt = solve_and_check(c, goal, HdpllOptions{});
  ASSERT_EQ(rt.status, SolveStatus::kSat);
  EXPECT_TRUE(rt.check.ok) << rt.check.error;
  EXPECT_FALSE(rt.check.refuted);
  EXPECT_EQ(rt.check.verdict, "sat");
}

TEST(WordCertRoundTrip, AssumptionContradictionUnsat) {
  // Directly contradictory assumptions: the conflict0 'a' path.
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  proof::WordCertWriter writer;
  HdpllOptions options;
  options.proof = &writer;
  HdpllSolver solver(c, options);
  solver.assume_bool(a, true);
  solver.assume_bool(a, false);
  ASSERT_EQ(solver.solve().status, SolveStatus::kUnsat);
  const proof::WordCheckResult check = proof::word_check(writer.str());
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_TRUE(check.refuted);
}

TEST(WordCertRoundTrip, SharedImportCarriesProvenance) {
  // A clause imported from a portfolio peer is recorded with the
  // exporter's worker id and sequence number; the checker accepts the
  // certificate only when told to trust imports. The instance must need
  // search: imports splice in before the first decision, so a circuit
  // refuted during assumption propagation never reaches them.
  const Circuit c = xor_triangle();
  const NetId goal = goal_of(c);
  portfolio::ClausePool pool;
  {
    // Worker 7 publishes a (sound) unit consequence for the peer to adopt.
    HybridClause unit;
    unit.learnt = true;
    unit.origin = HybridClause::Origin::kConflict;
    unit.lits = {HybridLit::boolean(goal, true)};
    ASSERT_EQ(pool.publish(7, {unit}), 1u);
  }
  portfolio::PoolExchange exchange(&pool, /*worker=*/1);
  proof::WordCertWriter writer;
  HdpllOptions options;
  options.exchange = &exchange;
  options.proof = &writer;
  HdpllSolver solver(c, options);
  solver.assume_bool(goal, true);
  ASSERT_EQ(solver.solve().status, SolveStatus::kUnsat);
  const std::string cert = writer.str();
  EXPECT_NE(cert.find("\"t\":\"import\""), std::string::npos);
  EXPECT_NE(cert.find("\"worker\":7"), std::string::npos);
  EXPECT_NE(cert.find("\"seq\":0"), std::string::npos);

  // Untrusted imports are an error; trusted ones verify end to end.
  EXPECT_FALSE(proof::word_check(cert).ok);
  proof::WordCheckOptions trusting;
  trusting.trust_imports = true;
  const proof::WordCheckResult check = proof::word_check(cert, trusting);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_TRUE(check.refuted);
}

TEST(WordCertRoundTrip, CertificateStatsFlow) {
  const Circuit c = xor_triangle();
  proof::WordCertWriter writer;
  HdpllOptions options;
  options.proof = &writer;
  HdpllSolver solver(c, options);
  solver.assume_bool(goal_of(c), true);
  ASSERT_EQ(solver.solve().status, SolveStatus::kUnsat);
  EXPECT_GT(solver.stats().get("proof.records"), 0);
  EXPECT_GT(solver.stats().get("proof.bytes"), 0);
  EXPECT_EQ(solver.stats().get("proof.fme_certify_failures"), 0);
}

}  // namespace
}  // namespace rtlsat::core
