// Replays every committed repro in tests/regress/ through the full
// differential-oracle matrix (docs/fuzzing.md). Each .rtl file here is a
// minimized instance that once exposed a real solver or interval bug; the
// corpus policy (README) is that a fuzzer find lands together with its fix
// and its reduced repro.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/oracle.h"
#include "fuzz/reduce.h"

#ifndef RTLSAT_REGRESS_DIR
#error "RTLSAT_REGRESS_DIR must point at the committed corpus"
#endif

namespace rtlsat::fuzz {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(RTLSAT_REGRESS_DIR)) {
    if (entry.path().extension() == ".rtl")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(RegressCorpus, HasSeeds) { EXPECT_GE(corpus_files().size(), 3u); }

class RegressCorpus : public ::testing::TestWithParam<std::string> {};

TEST_P(RegressCorpus, FullOracleMatrixAgrees) {
  ir::NetId goal = ir::kNoNet;
  const ir::Circuit circuit = load_repro_file(GetParam(), &goal);
  ASSERT_NE(goal, ir::kNoNet);

  OracleOptions options;
  options.timeout_seconds = 60;  // repros are tiny; never trips in practice
  options.portfolio_jobs = 2;
  const OracleReport report = run_oracle(circuit, goal, options);
  EXPECT_TRUE(report.ok()) << GetParam() << ": " << report.summary() << "\n  "
                           << (report.mismatches.empty()
                                   ? std::string("-")
                                   : report.mismatches.front());
  EXPECT_NE(report.consensus, '?') << GetParam();
}

std::string corpus_test_name(
    const ::testing::TestParamInfo<std::string>& info) {
  std::string name = std::filesystem::path(info.param).stem().string();
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, RegressCorpus,
                         ::testing::ValuesIn(corpus_files()),
                         corpus_test_name);

}  // namespace
}  // namespace rtlsat::fuzz
