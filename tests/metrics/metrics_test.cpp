#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/hdpll.h"
#include "metrics/memory.h"
#include "metrics/sampler.h"
#include "metrics/solver_gauges.h"
#include "metrics/trajectory.h"
#include "portfolio/portfolio.h"
#include "sat/solver.h"
#include "trace/json.h"
#include "trace/sink.h"
#include "trace/trace.h"

namespace rtlsat::metrics {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

trace::JsonValue parse_line(const std::string& line) {
  trace::JsonValue value;
  std::string error;
  EXPECT_TRUE(trace::json_parse(line, &value, &error)) << error << ": " << line;
  EXPECT_TRUE(value.is_object()) << line;
  return value;
}

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, CounterHandlesAreIdempotentAndSumShards) {
  MetricsRegistry registry;
  Counter* c = registry.counter("t.counter", {{"k", "v"}});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(registry.counter("t.counter", {{"k", "v"}}), c);
  EXPECT_EQ(registry.size(), 1u);

  // Increments from many threads land in per-thread shards; value() must
  // still see every one of them.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST(Registry, GaugeMonotoneFlagSurvivesScrape) {
  MetricsRegistry registry;
  Gauge* cumulative = registry.gauge("t.decisions", {}, /*monotone=*/true);
  Gauge* instant = registry.gauge("t.trail");
  cumulative->set(42);
  instant->set(7);
  EXPECT_TRUE(cumulative->monotone());
  EXPECT_FALSE(instant->monotone());

  const std::vector<MetricsRegistry::Sample> samples = registry.scrape();
  ASSERT_EQ(samples.size(), 2u);
  // scrape() sorts by (name, source).
  EXPECT_EQ(samples[0].name, "t.decisions");
  EXPECT_TRUE(samples[0].monotone);
  EXPECT_EQ(samples[0].value, 42);
  EXPECT_EQ(samples[1].name, "t.trail");
  EXPECT_FALSE(samples[1].monotone);
  EXPECT_EQ(samples[1].value, 7);
}

TEST(Registry, CanonicalLabelsAreSortedByKey) {
  EXPECT_EQ(canonical_labels({}), "");
  EXPECT_EQ(canonical_labels({{"worker", "0"}, {"name", "HDPLL+S"}}),
            "name=HDPLL+S,worker=0");
  // Same set, different registration order -> same source string (and so the
  // same registry entry).
  MetricsRegistry registry;
  Gauge* a = registry.gauge("t.g", {{"b", "2"}, {"a", "1"}});
  Gauge* b = registry.gauge("t.g", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);
}

TEST(RegistryDeathTest, KindMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry registry;
  registry.counter("t.metric");
  EXPECT_DEATH((void)registry.gauge("t.metric"), "");
}

TEST(Registry, HistogramShardsMergeExactly) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.histogram("t.lbd");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) h->observe((t + i) % 16);
    });
  for (auto& t : threads) t.join();
  const Histogram merged = h->snapshot();
  EXPECT_EQ(merged.count(), kThreads * kPerThread);
  EXPECT_LE(merged.max(), 15);
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(Exposition, NameSanitization) {
  EXPECT_EQ(exposition_name("solver.decisions"), "rtlsat_solver_decisions");
}

TEST(Exposition, RoundTripsThroughParser) {
  MetricsRegistry registry;
  registry.counter("t.imports", {{"worker", "0"}})->add(5);
  registry.counter("t.imports", {{"worker", "1"}})->add(9);
  registry.gauge("t.trail")->set(123);
  HistogramMetric* h = registry.histogram("t.lbd", {{"worker", "0"}});
  for (int i = 1; i <= 10; ++i) h->observe(i);

  std::ostringstream out;
  registry.expose(out);
  const std::string text = out.str();
  // One # TYPE line per family even with several label sets.
  EXPECT_EQ(text.find("# TYPE rtlsat_t_imports counter"),
            text.rfind("# TYPE rtlsat_t_imports counter"));

  std::map<std::string, double> parsed;
  std::string error;
  ASSERT_TRUE(parse_exposition(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.at("rtlsat_t_imports{worker=\"0\"}"), 5);
  EXPECT_EQ(parsed.at("rtlsat_t_imports{worker=\"1\"}"), 9);
  EXPECT_EQ(parsed.at("rtlsat_t_trail"), 123);
  EXPECT_EQ(parsed.at("rtlsat_t_lbd_count{worker=\"0\"}"), 10);
  EXPECT_EQ(parsed.at("rtlsat_t_lbd_sum{worker=\"0\"}"), 55);
  // Cumulative buckets: the largest le bound holds every observation.
  double largest = -1;
  for (const auto& [key, value] : parsed)
    if (key.rfind("rtlsat_t_lbd_bucket", 0) == 0 &&
        key.find("le=\"+Inf\"") != std::string::npos)
      largest = value;
  EXPECT_EQ(largest, 10);
}

// The acceptance-criterion round trip: the exposition and the sampler JSONL
// series are two views of one scrape, so every counter/gauge the sampler
// writes must appear in expose() with the same value.
TEST(Exposition, AgreesWithSamplerSeries) {
  MetricsRegistry registry;
  SolverGauges gauges =
      make_solver_gauges(&registry, {{"worker", "0"}, {"name", "cfg"}});
  gauges.decisions->set(100);
  gauges.trail->set(17);
  gauges.clause_db_bytes->set(4096);
  gauges.lbd->observe(3);
  gauges.lbd->observe(5);

  SamplerOptions options;
  options.collect_in_memory = true;
  options.include_process = false;
  options.clock = [] { return 1.0; };
  Sampler sampler(&registry, options);
  sampler.tick();
  std::vector<std::string> lines = sampler.drain();
  ASSERT_EQ(lines.size(), 1u);
  const trace::JsonValue line = parse_line(lines[0]);

  std::ostringstream out;
  registry.expose(out);
  std::map<std::string, double> exposed;
  std::string error;
  ASSERT_TRUE(parse_exposition(out.str(), &exposed, &error)) << error;
  const std::string label_suffix = "{name=\"cfg\",worker=\"0\"}";

  int checked = 0;
  for (const auto& [key, value] : line.object) {
    // Skip the line-framing fields, the derived rates, and the label echo —
    // only raw metric fields have exposition counterparts (histograms expand
    // into _count/_sum there, checked via lbd_count below).
    if (key == "t_s" || key == "source" || key == "name" || key == "worker")
      continue;
    if (key.size() >= 6 && key.rfind("_per_s") == key.size() - 6) continue;
    if (!value.is_number()) continue;
    if (key.find(".lbd_") != std::string::npos) continue;
    EXPECT_EQ(exposed.at(exposition_name(key) + label_suffix), value.number)
        << key;
    ++checked;
  }
  EXPECT_GE(checked, 10);  // the full SolverGauges family was cross-checked
  EXPECT_EQ(exposed.at("rtlsat_solver_lbd_count" + label_suffix), 2);
  const trace::JsonValue* lbd_count = line.find("solver.lbd_count");
  ASSERT_NE(lbd_count, nullptr);
  EXPECT_EQ(lbd_count->number, 2);
}

// ---------------------------------------------------------------------------
// Sampler

TEST(Sampler, FakeClockRatesAreExactAndFirstSampleHasNone) {
  MetricsRegistry registry;
  Gauge* decisions = registry.gauge("solver.decisions", {}, /*monotone=*/true);
  Gauge* trail = registry.gauge("solver.trail");

  double now = 0.0;
  SamplerOptions options;
  options.collect_in_memory = true;
  options.include_process = false;
  options.clock = [&now] { return now; };
  Sampler sampler(&registry, options);

  decisions->set(100);
  trail->set(50);
  sampler.tick();  // t=0: establishes the baseline, no rate yet

  now = 2.0;
  decisions->set(700);
  trail->set(60);
  sampler.tick();  // t=2: rate = (700-100)/2

  const std::vector<std::string> lines = sampler.drain();
  ASSERT_EQ(lines.size(), 2u);
  const trace::JsonValue first = parse_line(lines[0]);
  const trace::JsonValue second = parse_line(lines[1]);

  EXPECT_EQ(first.find("t_s")->number, 0.0);
  EXPECT_EQ(second.find("t_s")->number, 2.0);
  EXPECT_EQ(first.find("solver.decisions")->number, 100);
  EXPECT_EQ(first.find("solver.decisions_per_s"), nullptr);
  EXPECT_EQ(second.find("solver.decisions")->number, 700);
  ASSERT_NE(second.find("solver.decisions_per_s"), nullptr);
  EXPECT_DOUBLE_EQ(second.find("solver.decisions_per_s")->number, 300.0);
  // Plain gauges never get a rate.
  EXPECT_EQ(first.find("solver.trail_per_s"), nullptr);
  EXPECT_EQ(second.find("solver.trail_per_s"), nullptr);
}

TEST(Sampler, BackwardsValueResetsTheRateBaseline) {
  MetricsRegistry registry;
  Gauge* decisions = registry.gauge("solver.decisions", {}, /*monotone=*/true);
  double now = 0.0;
  SamplerOptions options;
  options.collect_in_memory = true;
  options.include_process = false;
  options.clock = [&now] { return now; };
  Sampler sampler(&registry, options);

  decisions->set(1000);
  sampler.tick();
  now = 1.0;
  decisions->set(10);  // handle reused for a fresh solve
  sampler.tick();
  now = 2.0;
  decisions->set(110);
  sampler.tick();

  const std::vector<std::string> lines = sampler.drain();
  ASSERT_EQ(lines.size(), 3u);
  // The backwards move reports no rate; the next sample differences against
  // the new baseline.
  EXPECT_EQ(parse_line(lines[1]).find("solver.decisions_per_s"), nullptr);
  const trace::JsonValue third = parse_line(lines[2]);
  ASSERT_NE(third.find("solver.decisions_per_s"), nullptr);
  EXPECT_DOUBLE_EQ(third.find("solver.decisions_per_s")->number, 100.0);
}

TEST(Sampler, WritesProcessLineAndLabelEchoToSink) {
  const std::string path = temp_path("rtlsat_sampler_sink.jsonl");
  std::filesystem::remove(path);
  {
    MetricsRegistry registry;
    registry.gauge("solver.trail", {{"worker", "3"}})->set(9);
    trace::JsonlSink sink(path);
    ASSERT_TRUE(sink.ok());
    SamplerOptions options;
    options.sink = &sink;
    Sampler sampler(&registry, options);
    sampler.tick();
    EXPECT_EQ(sampler.samples(), 1);
    EXPECT_EQ(sink.lines_written(), 2);  // one metric source + process
  }
  const std::vector<std::string> lines = split_lines(read_file(path));
  ASSERT_EQ(lines.size(), 2u);
  bool saw_worker = false, saw_process = false;
  for (const std::string& raw : lines) {
    const trace::JsonValue line = parse_line(raw);
    ASSERT_NE(line.find("source"), nullptr);
    const std::string source = line.find("source")->string;
    if (source == "process") {
      saw_process = true;
      ASSERT_NE(line.find("rss_kb"), nullptr);
      ASSERT_NE(line.find("rss_peak_kb"), nullptr);
      EXPECT_GT(line.find("rss_kb")->number, 0);
      EXPECT_GE(line.find("rss_peak_kb")->number, line.find("rss_kb")->number);
    } else {
      saw_worker = true;
      EXPECT_EQ(source, "worker=3");
      ASSERT_NE(line.find("worker"), nullptr);
      EXPECT_EQ(line.find("worker")->string, "3");  // label echo
      EXPECT_EQ(line.find("solver.trail")->number, 9);
    }
  }
  EXPECT_TRUE(saw_worker);
  EXPECT_TRUE(saw_process);
  std::filesystem::remove(path);
}

TEST(Sampler, StopTakesAFinalSampleAndIsIdempotent) {
  MetricsRegistry registry;
  registry.gauge("solver.trail")->set(1);
  SamplerOptions options;
  options.collect_in_memory = true;
  options.include_process = false;
  options.interval_seconds = 3600;  // never fires on its own
  Sampler sampler(&registry, options);
  sampler.start();
  sampler.stop();  // interrupts the sleep, samples once, joins
  sampler.stop();
  EXPECT_EQ(sampler.samples(), 1);
  EXPECT_EQ(sampler.drain().size(), 1u);
}

// ---------------------------------------------------------------------------
// Solver integration

// The saturating-accumulator circuit from tests/trace — small, but forces
// decisions and conflicts through the structural search.
core::SolveResult solve_quickstartish(metrics::SolverGauges* gauges,
                                      Stats* stats) {
  ir::Circuit c("t");
  const ir::NetId acc = c.add_input("acc", 8);
  const ir::NetId in = c.add_input("in", 8);
  const ir::NetId cap = c.add_const(200, 8);
  const ir::NetId saturated = c.add_min(c.add_add(acc, in), cap);
  const ir::NetId goal = c.add_and(c.add_eq(saturated, cap),
                                   c.add_lt(acc, c.add_const(100, 8)));
  core::HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = true;
  options.gauges = gauges;
  core::HdpllSolver solver(c, options);
  solver.assume_bool(goal, true);
  const core::SolveResult result = solver.solve();
  *stats = solver.stats();
  return result;
}

std::map<std::string, std::int64_t> search_counters(const Stats& stats) {
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, value] : stats.all())
    if (name.rfind("time.", 0) != 0) out[name] = value;
  return out;
}

// Zero-drift: attaching gauges AND a live background sampler must not move a
// single search counter (the sampler only reads; publication only stores).
TEST(ZeroDrift, GaugesAndLiveSamplerDoNotChangeTheSearch) {
  Stats baseline_stats;
  const core::SolveResult baseline =
      solve_quickstartish(nullptr, &baseline_stats);

  MetricsRegistry registry;
  SolverGauges gauges = make_solver_gauges(&registry, {{"solver", "hdpll"}});
  SamplerOptions options;
  options.collect_in_memory = true;
  options.interval_seconds = 0.001;  // sample as hard as possible
  Sampler sampler(&registry, options);
  sampler.start();
  Stats sampled_stats;
  const core::SolveResult sampled =
      solve_quickstartish(&gauges, &sampled_stats);
  sampler.stop();

  EXPECT_EQ(sampled.status, baseline.status);
  EXPECT_EQ(search_counters(baseline_stats), search_counters(sampled_stats));
  EXPECT_GE(sampler.samples(), 1);

  // The published totals agree with the per-worker Stats view.
  EXPECT_EQ(gauges.decisions->value(), baseline_stats.get("hdpll.decisions"));
  EXPECT_EQ(gauges.conflicts->value(), baseline_stats.get("hdpll.conflicts"));
  EXPECT_EQ(gauges.phase->value(),
            static_cast<std::int64_t>(SolverPhase::kIdle));  // solve finished
}

TEST(SatSolver, PublishesGaugesAndMemoryAccounting) {
  MetricsRegistry registry;
  SolverGauges gauges = make_solver_gauges(&registry, {{"solver", "sat"}});
  sat::SolverOptions options;
  options.gauges = &gauges;
  sat::Solver solver(options);
  // Pigeonhole(4): UNSAT, forces real conflict analysis and learned clauses.
  const int holes = 4, pigeons = 5;
  std::vector<std::vector<sat::Var>> p(pigeons, std::vector<sat::Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = solver.new_var();
  for (auto& row : p) {
    std::vector<sat::Lit> clause;
    for (auto v : row) clause.push_back(sat::Lit(v, true));
    solver.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j)
        solver.add_clause({sat::Lit(p[i][h], false), sat::Lit(p[j][h], false)});

  EXPECT_GT(solver.memory_bytes(), 0);
  ASSERT_EQ(solver.solve(), sat::Result::kUnsat);
  EXPECT_GT(gauges.decisions->value(), 0);
  EXPECT_GT(gauges.conflicts->value(), 0);
  EXPECT_GT(gauges.propagations->value(), 0);
  EXPECT_GT(gauges.clause_db_bytes->value(), 0);
  EXPECT_GT(gauges.implication_graph_bytes->value(), 0);
  // Every learned clause contributed an LBD observation.
  EXPECT_GT(gauges.lbd->snapshot().count(), 0);
}

// ---------------------------------------------------------------------------
// Portfolio: per-worker series and heartbeats

TEST(Portfolio, SamplesAndHeartbeatsCarryWorkerIds) {
  ir::Circuit c("t");
  const ir::NetId acc = c.add_input("acc", 8);
  const ir::NetId in = c.add_input("in", 8);
  const ir::NetId cap = c.add_const(200, 8);
  const ir::NetId saturated = c.add_min(c.add_add(acc, in), cap);
  const ir::NetId goal = c.add_and(c.add_eq(saturated, cap),
                                   c.add_lt(acc, c.add_const(100, 8)));

  const std::string progress_path = temp_path("rtlsat_portfolio_progress.jsonl");
  std::filesystem::remove(progress_path);
  MetricsRegistry registry;
  std::set<std::string> progress_workers;
  {
    trace::JsonlSink progress_sink(progress_path);
    ASSERT_TRUE(progress_sink.ok());
    portfolio::PortfolioOptions options;
    options.jobs = 2;
    options.deterministic = true;
    options.metrics = &registry;
    options.progress_sink = &progress_sink;
    options.progress_interval_seconds = 0.0;  // heartbeat on every report
    portfolio::Portfolio race(c, goal, true, options);
    (void)race.solve();
  }

  // Every worker registered its own labeled gauge family.
  std::set<std::string> sources;
  bool saw_decisions = false;
  for (const MetricsRegistry::Sample& sample : registry.scrape()) {
    sources.insert(sample.source);
    if (sample.name == "solver.decisions" && sample.value > 0)
      saw_decisions = true;
  }
  for (int w = 0; w < 2; ++w) {
    bool found = false;
    const std::string needle = "worker=" + std::to_string(w);
    for (const std::string& source : sources)
      if (source.find(needle) != std::string::npos) found = true;
    EXPECT_TRUE(found) << needle;
  }
  EXPECT_TRUE(saw_decisions);

  // A sampler scraping that registry emits one line per worker source.
  SamplerOptions soptions;
  soptions.collect_in_memory = true;
  soptions.include_process = false;
  Sampler sampler(&registry, soptions);
  sampler.tick();
  std::set<std::string> sampled_workers;
  for (const std::string& raw : sampler.drain()) {
    const trace::JsonValue line = parse_line(raw);
    if (line.find("worker") != nullptr)
      sampled_workers.insert(line.find("worker")->string);
  }
  EXPECT_EQ(sampled_workers, (std::set<std::string>{"0", "1"}));

  // Heartbeat lines are tagged "<index>:<config name>".
  const std::vector<std::string> lines = split_lines(read_file(progress_path));
  ASSERT_GE(lines.size(), 2u);  // at least the finish() report per worker
  for (const std::string& raw : lines) {
    const trace::JsonValue line = parse_line(raw);
    ASSERT_NE(line.find("worker"), nullptr) << raw;
    const std::string tag = line.find("worker")->string;
    ASSERT_GE(tag.size(), 2u);
    progress_workers.insert(tag.substr(0, tag.find(':')));
  }
  EXPECT_EQ(progress_workers, (std::set<std::string>{"0", "1"}));
  std::filesystem::remove(progress_path);
}

// ---------------------------------------------------------------------------
// Process memory

TEST(Memory, ReadProcMemoryReportsResidentSet) {
  const ProcMemory mem = read_proc_memory();
#ifdef __linux__
  ASSERT_TRUE(mem.ok);
  EXPECT_GT(mem.rss_kb, 0);
  EXPECT_GE(mem.rss_peak_kb, mem.rss_kb);
#else
  EXPECT_FALSE(mem.ok);
#endif
}

// ---------------------------------------------------------------------------
// Trajectory format + regression gate

Trajectory small_trajectory() {
  Trajectory t;
  t.utc_date = "20260807";
  t.git_sha = "abc1234";
  t.fingerprint.host = "host";
  t.fingerprint.cpu = "cpu-model";
  t.fingerprint.threads = 16;
  t.rss_peak_kb = 12345;
  t.metrics_samples = 7;
  BenchResult slow;
  slow.name = "slow.bench";
  slow.repeats = 3;
  slow.median_s = 0.2;
  slow.min_s = 0.18;
  slow.max_s = 0.25;
  slow.counters["hdpll.conflicts"] = 999;
  t.benches.push_back(slow);
  BenchResult fast;  // under the 5 ms compare floor
  fast.name = "fast.bench";
  fast.repeats = 3;
  fast.median_s = 0.001;
  fast.min_s = 0.001;
  fast.max_s = 0.002;
  t.benches.push_back(fast);
  return t;
}

TEST(Trajectory, JsonRoundTripPreservesEveryField) {
  const Trajectory t = small_trajectory();
  Trajectory back;
  std::string error;
  ASSERT_TRUE(trajectory_from_json(trajectory_to_json(t), &back, &error))
      << error;
  EXPECT_EQ(back.schema, kTrajectorySchema);
  EXPECT_EQ(back.utc_date, t.utc_date);
  EXPECT_EQ(back.git_sha, t.git_sha);
  EXPECT_EQ(back.fingerprint.cpu, t.fingerprint.cpu);
  EXPECT_EQ(back.fingerprint.threads, t.fingerprint.threads);
  EXPECT_EQ(back.rss_peak_kb, t.rss_peak_kb);
  EXPECT_EQ(back.metrics_samples, t.metrics_samples);
  ASSERT_EQ(back.benches.size(), 2u);
  EXPECT_EQ(back.benches[0].name, "slow.bench");
  EXPECT_DOUBLE_EQ(back.benches[0].median_s, 0.2);
  EXPECT_EQ(back.benches[0].counters.at("hdpll.conflicts"), 999);
  EXPECT_EQ(default_trajectory_filename(t), "BENCH_20260807_abc1234.json");
}

TEST(Trajectory, FromJsonRejectsWrongSchema) {
  Trajectory t = small_trajectory();
  std::string json = trajectory_to_json(t);
  const std::string schema = kTrajectorySchema;
  json.replace(json.find(schema), schema.size(), "not_a_trajectory");
  Trajectory back;
  std::string error;
  EXPECT_FALSE(trajectory_from_json(json, &back, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Trajectory, CompareFlagsOnlyAboveRatioAndFloor) {
  const Trajectory base = small_trajectory();
  Trajectory current = base;
  const CompareOptions options;

  EXPECT_EQ(compare_trajectories(base, current, options).status,
            CompareReport::Status::kOk);

  // 4x on the sub-floor bench but still under max_ratio * min_seconds:
  // exempt (scheduler noise on a microsecond bench, not a regression).
  current.benches[1].median_s = 0.004;
  EXPECT_EQ(compare_trajectories(base, current, options).status,
            CompareReport::Status::kOk);

  // 2x on the real bench: flagged, and the report names it.
  current.benches[0].median_s = 0.4;
  const CompareReport report = compare_trajectories(base, current, options);
  EXPECT_EQ(report.status, CompareReport::Status::kRegression);
  ASSERT_GE(report.regressions.size(), 1u);
  EXPECT_NE(report.regressions[0].find("slow.bench"), std::string::npos);
}

TEST(Trajectory, CompareSkipsAcrossMachinesUnlessForced) {
  const Trajectory base = small_trajectory();
  Trajectory current = base;
  current.fingerprint.cpu = "different-cpu";
  current.benches[0].median_s = 10.0;  // would be a huge regression

  CompareOptions options;
  EXPECT_EQ(compare_trajectories(base, current, options).status,
            CompareReport::Status::kSkipped);
  options.force = true;
  EXPECT_EQ(compare_trajectories(base, current, options).status,
            CompareReport::Status::kRegression);
}

// ---------------------------------------------------------------------------
// Crash flush: buffered sinks survive an abort() (satellite: flush the
// ring-buffered Tracer and open telemetry sinks on abnormal exit).

TEST(CrashFlushDeathTest, AbortFlushesBufferedTracerSinks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string jsonl = temp_path("rtlsat_crash_trace.jsonl");
  const std::string chrome = temp_path("rtlsat_crash_trace.trace.json");
  std::filesystem::remove(jsonl);
  std::filesystem::remove(chrome);

  EXPECT_DEATH(
      {
        trace::TracerOptions options;
        options.jsonl_path = jsonl;
        options.chrome_path = chrome;
        trace::Tracer tracer(options);
        for (int i = 0; i < 50; ++i)
          tracer.record(trace::EventKind::kConflict, 1, i);
        // Events sit in the ring (capacity 16k, nothing flushed yet); the
        // SIGABRT handler must write them out before the process dies.
        std::abort();
      },
      "");

  const std::vector<std::string> lines = split_lines(read_file(jsonl));
  EXPECT_GE(lines.size(), 50u);
  bool saw_conflict = false;
  for (const std::string& raw : lines)
    if (raw.find("\"conflict\"") != std::string::npos) saw_conflict = true;
  EXPECT_TRUE(saw_conflict);

  // The Chrome trace got its closing footer on the signal path, so the file
  // parses as a complete JSON document.
  trace::JsonValue chrome_doc;
  std::string error;
  ASSERT_TRUE(trace::json_parse(read_file(chrome), &chrome_doc, &error))
      << error;
  std::filesystem::remove(jsonl);
  std::filesystem::remove(chrome);
}

}  // namespace
}  // namespace rtlsat::metrics
