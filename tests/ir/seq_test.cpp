#include "ir/seq.h"

#include <gtest/gtest.h>

namespace rtlsat::ir {
namespace {

SeqCircuit counter() {
  SeqCircuit seq("cnt");
  Circuit& c = seq.comb();
  const NetId en = c.add_input("en", 1);
  const NetId q = seq.add_register("q", 4, 0);
  seq.bind_next(q, c.add_mux(en, c.add_inc(q), q));
  seq.add_property("bounded", c.add_lt(q, c.add_const(15, 4)));
  return seq;
}

TEST(SeqCircuit, RegistersAreCombInputs) {
  SeqCircuit seq("t");
  Circuit& c = seq.comb();
  const NetId in = c.add_input("in", 8);
  const NetId q = seq.add_register("q", 8, 42);
  seq.bind_next(q, in);
  EXPECT_EQ(seq.registers().size(), 1u);
  EXPECT_EQ(seq.registers()[0].init, 42);
  EXPECT_EQ(seq.registers()[0].q, q);
  // q is an input of the comb core but not a free input.
  EXPECT_EQ(c.inputs().size(), 2u);
  EXPECT_EQ(seq.free_inputs(), std::vector<NetId>{in});
  seq.validate();
}

TEST(SeqCircuit, PropertyLookup) {
  SeqCircuit seq("t");
  Circuit& c = seq.comb();
  const NetId q = seq.add_register("q", 1, 0);
  seq.bind_next(q, c.add_not(q));
  seq.add_property("p1", q);
  EXPECT_EQ(seq.property("p1"), q);
  EXPECT_EQ(seq.property("nope"), kNoNet);
}

TEST(SeqCircuit, CounterShape) {
  const SeqCircuit seq = counter();
  EXPECT_EQ(seq.registers().size(), 1u);
  EXPECT_EQ(seq.free_inputs().size(), 1u);
  EXPECT_EQ(seq.properties().size(), 1u);
}

}  // namespace
}  // namespace rtlsat::ir
