// Canonical property-cone tests (ir/cone.h): isomorphic circuits —
// renamed, renumbered, commutatively permuted, padded with dead logic —
// must produce equal canonical text (hence equal cone_hash), structurally
// different cones must not, and the canonical input order must transfer
// models faithfully. A fuzz corpus sweep checks the digest does not
// collide across distinct canonical texts.
#include "ir/cone.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "fuzz/generator.h"
#include "ir/circuit.h"
#include "util/rng.h"

namespace rtlsat::ir {
namespace {

// a + b == 100 ∧ a < 20, with hooks to rename everything and to permute
// the commutative operands.
Circuit build(const std::string& a_name, const std::string& b_name,
              bool swap_commutative, std::int64_t constant, NetId* goal_out) {
  Circuit c("c");
  const NetId a = c.add_input(a_name, 8);
  const NetId b = c.add_input(b_name, 8);
  const NetId sum = swap_commutative ? c.add_add(b, a) : c.add_add(a, b);
  const NetId eq = c.add_eq(sum, c.add_const(constant, 8));
  const NetId lt = c.add_lt(a, c.add_const(20, 8));
  *goal_out = swap_commutative ? c.add_and(lt, eq) : c.add_and(eq, lt);
  return c;
}

TEST(CanonicalCone, IdenticalCircuitsHashEqual) {
  NetId goal1, goal2;
  const Circuit c1 = build("a", "b", false, 100, &goal1);
  const Circuit c2 = build("a", "b", false, 100, &goal2);
  const CanonicalCone k1 = canonical_cone(c1, goal1);
  const CanonicalCone k2 = canonical_cone(c2, goal2);
  EXPECT_EQ(k1.text, k2.text);
  EXPECT_EQ(k1.hash, k2.hash);
  EXPECT_GT(k1.num_nodes, 0u);
}

TEST(CanonicalCone, RenamedNetsHashEqual) {
  NetId goal1, goal2;
  const Circuit c1 = build("a", "b", false, 100, &goal1);
  const Circuit c2 = build("left_op", "right_op", false, 100, &goal2);
  EXPECT_EQ(canonical_cone(c1, goal1).text, canonical_cone(c2, goal2).text);
}

TEST(CanonicalCone, PermutedCommutativeOperandsHashEqual) {
  NetId goal1, goal2;
  const Circuit c1 = build("a", "b", false, 100, &goal1);
  const Circuit c2 = build("a", "b", true, 100, &goal2);
  EXPECT_EQ(canonical_cone(c1, goal1).text, canonical_cone(c2, goal2).text);
}

TEST(CanonicalCone, DeadLogicOutsideTheConeIsIgnored) {
  NetId goal1, goal2;
  const Circuit c1 = build("a", "b", false, 100, &goal1);
  Circuit c2 = build("a", "b", false, 100, &goal2);
  // Nodes the goal cannot see: an extra input and arithmetic over it.
  const NetId junk = c2.add_input("junk", 12);
  c2.add_lt(c2.add_mulc(junk, 7), c2.add_const(9, 12));
  EXPECT_EQ(canonical_cone(c1, goal1).text, canonical_cone(c2, goal2).text);
  // But the cone input list only covers cone inputs.
  EXPECT_EQ(canonical_cone(c2, goal2).inputs.size(), 2u);
}

TEST(CanonicalCone, StructurallyDifferentConesDiffer) {
  NetId goal1, goal2;
  const Circuit c1 = build("a", "b", false, 100, &goal1);
  const Circuit c2 = build("a", "b", false, 101, &goal2);  // constant differs
  EXPECT_NE(canonical_cone(c1, goal1).text, canonical_cone(c2, goal2).text);
}

TEST(CanonicalCone, CircuitConeHashMatchesCanonicalCone) {
  NetId goal;
  const Circuit c = build("a", "b", false, 100, &goal);
  EXPECT_EQ(c.cone_hash(goal), canonical_cone(c, goal).hash);
}

TEST(CanonicalCone, CanonicalInputOrderTransfersModels) {
  // The model-transfer contract: equal text ⟹ assigning v_i to inputs[i]
  // in each circuit yields the same goal value. Drive both circuits through
  // their canonical input lists and compare goals on a value sweep.
  NetId goal1, goal2;
  const Circuit c1 = build("a", "b", false, 100, &goal1);
  const Circuit c2 = build("x", "y", true, 100, &goal2);
  const CanonicalCone k1 = canonical_cone(c1, goal1);
  const CanonicalCone k2 = canonical_cone(c2, goal2);
  ASSERT_EQ(k1.text, k2.text);
  ASSERT_EQ(k1.inputs.size(), k2.inputs.size());
  const std::int64_t probes[][2] = {{4, 96}, {96, 4}, {19, 81}, {0, 0}};
  for (const auto& probe : probes) {
    std::unordered_map<NetId, std::int64_t> m1, m2;
    for (std::size_t i = 0; i < k1.inputs.size(); ++i) {
      m1[k1.inputs[i]] = probe[i];
      m2[k2.inputs[i]] = probe[i];
    }
    EXPECT_EQ(c1.evaluate(m1)[goal1] != 0, c2.evaluate(m2)[goal2] != 0)
        << probe[0] << "," << probe[1];
  }
}

TEST(CanonicalCone, NoDigestCollisionsOnFuzzCorpus) {
  // Across a generated corpus, equal hash must imply equal canonical text —
  // a digest collision between distinct cones would be invisible to the
  // serve cache's bucketing (text is the key, so soundness holds; this
  // guards the hash *quality*).
  Rng rng(987654);
  fuzz::GeneratorOptions options;
  options.max_steps = 24;
  std::unordered_map<std::uint64_t, std::string> seen;
  for (int i = 0; i < 60; ++i) {
    const fuzz::FuzzInstance inst = fuzz::generate(rng, options);
    const CanonicalCone cone = canonical_cone(inst.circuit, inst.goal);
    const auto [it, inserted] = seen.emplace(cone.hash, cone.text);
    if (!inserted) {
      EXPECT_EQ(it->second, cone.text) << "digest collision on corpus item "
                                       << i << ": " << inst.description;
    }
  }
  EXPECT_GT(seen.size(), 1u);
}

}  // namespace
}  // namespace rtlsat::ir
