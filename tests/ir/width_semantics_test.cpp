// Width-edge semantics: 1-bit arithmetic, maximum widths, and the
// agreements between evaluator, propagation rules, and bit-blasting that
// the rest of the system assumes.
#include <gtest/gtest.h>

#include "bitblast/bitblast.h"
#include "ir/circuit.h"
#include "prop/engine.h"

namespace rtlsat::ir {
namespace {

TEST(WidthSemantics, OneBitAdditionIsXor) {
  // (a + b) mod 2 — the degenerate adder.
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId s = c.add_add(a, b);
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      const auto values = c.evaluate({{a, av}, {b, bv}});
      EXPECT_EQ(values[s], (av + bv) % 2);
    }
  }
}

TEST(WidthSemantics, OneBitAddBitblastAgrees) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId s = c.add_add(a, b);
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      sat::Solver solver;
      bitblast::BitBlaster blaster(c, solver);
      blaster.assert_equals(a, av);
      blaster.assert_equals(b, bv);
      ASSERT_EQ(solver.solve(), sat::Result::kSat);
      EXPECT_EQ(blaster.model_value(s), (av + bv) % 2);
    }
  }
}

TEST(WidthSemantics, MaxWidthDomain) {
  Circuit c("t");
  const NetId x = c.add_input("x", kMaxWidth);
  EXPECT_EQ(c.domain(x).hi(), (std::int64_t{1} << kMaxWidth) - 1);
  prop::Engine engine(c);
  EXPECT_EQ(engine.interval(x).hi(), (std::int64_t{1} << kMaxWidth) - 1);
}

TEST(WidthSemantics, WideArithmeticPropagates) {
  Circuit c("t");
  const NetId x = c.add_input("x", 40);
  const NetId y = c.add_input("y", 40);
  const NetId s = c.add_add(x, y);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(x, Interval(1'000'000'000'000, 1'000'000'000'010),
                            prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(y, Interval::point(5), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  EXPECT_EQ(engine.interval(s),
            Interval(1'000'000'000'005, 1'000'000'000'015));
}

TEST(WidthSemantics, ConcatToMaxWidthRejectedBeyondCap) {
  Circuit c("t");
  const NetId a = c.add_input("a", 30);
  const NetId b = c.add_input("b", 30);
  const NetId cat = c.add_concat(a, b);  // exactly 60: allowed
  EXPECT_EQ(c.width(cat), 60);
}

TEST(WidthSemantics, EvaluateWideConcat) {
  Circuit c("t");
  const NetId a = c.add_input("a", 20);
  const NetId b = c.add_input("b", 20);
  const NetId cat = c.add_concat(a, b);
  const auto values = c.evaluate({{a, 0x12345}, {b, 0xABCDE}});
  EXPECT_EQ(values[cat], (std::int64_t{0x12345} << 20) | 0xABCDE);
}

TEST(WidthSemantics, ZextThenTruncPreservesValue) {
  Circuit c("t");
  const NetId x = c.add_input("x", 6);
  const NetId z = c.add_trunc(c.add_zext(x, 12), 6);
  for (const std::int64_t v : {0, 1, 31, 63}) {
    EXPECT_EQ(c.evaluate({{x, v}})[z], v);
  }
}

}  // namespace
}  // namespace rtlsat::ir
