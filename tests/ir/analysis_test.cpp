#include "ir/analysis.h"

#include <gtest/gtest.h>

namespace rtlsat::ir {
namespace {

// Small circuit with one mux and one comparator for predicate extraction.
struct Fixture {
  Circuit c{"t"};
  NetId a = c.add_input("a", 8);
  NetId b = c.add_input("b", 8);
  NetId sel = c.add_input("sel", 1);
  NetId lt = c.add_lt(a, b);
  NetId g = c.add_and(sel, lt);
  NetId m = c.add_mux(g, a, b);
};

TEST(Levelize, DistanceFromInputs) {
  Fixture f;
  const auto level = levelize(f.c);
  EXPECT_EQ(level[f.a], 0);
  EXPECT_EQ(level[f.sel], 0);
  EXPECT_EQ(level[f.lt], 1);
  EXPECT_EQ(level[f.g], 2);
  EXPECT_EQ(level[f.m], 3);
}

TEST(Fanouts, ListsReaders) {
  Fixture f;
  const auto fo = fanouts(f.c);
  // `a` feeds the comparator and the mux.
  EXPECT_EQ(fo[f.a].size(), 2u);
  EXPECT_EQ(fo[f.g], std::vector<NetId>{f.m});
  const auto counts = fanout_counts(f.c);
  EXPECT_EQ(counts[f.a], 2);
  EXPECT_EQ(counts[f.m], 0);
}

TEST(FaninCone, Transitive) {
  Fixture f;
  const auto cone = fanin_cone(f.c, f.g);
  EXPECT_TRUE(cone.mask[f.g]);
  EXPECT_TRUE(cone.mask[f.lt]);
  EXPECT_TRUE(cone.mask[f.sel]);
  EXPECT_TRUE(cone.mask[f.a]);
  EXPECT_FALSE(cone.mask[f.m]);  // downstream of the root
  // `members` agrees with the mask and is in ascending (topological) order.
  std::size_t n_masked = 0;
  for (const auto b : cone.mask) n_masked += b ? 1 : 0;
  EXPECT_EQ(cone.members.size(), n_masked);
  for (std::size_t i = 0; i + 1 < cone.members.size(); ++i)
    EXPECT_LT(cone.members[i], cone.members[i + 1]);
}

TEST(Predicates, ComparatorOutputsAndMuxSelects) {
  Fixture f;
  const auto preds = extract_predicates(f.c);
  bool found_lt = false, found_sel_g = false;
  for (const auto& p : preds) {
    if (p.net == f.lt) {
      found_lt = true;
      EXPECT_TRUE(p.is_comparator_output);
    }
    if (p.net == f.g) {
      found_sel_g = true;
      EXPECT_TRUE(p.is_mux_select);
    }
  }
  EXPECT_TRUE(found_lt);
  EXPECT_TRUE(found_sel_g);
}

TEST(Predicates, SortedByLevel) {
  Fixture f;
  const auto preds = extract_predicates(f.c);
  for (std::size_t i = 1; i < preds.size(); ++i)
    EXPECT_LE(preds[i - 1].level, preds[i].level);
}

TEST(Predicates, BooleanMuxIsNotPredicate) {
  Circuit c("t");
  const NetId s = c.add_input("s", 1);
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  c.add_mux(s, a, b);  // 1-bit mux: control logic, not a data-path predicate
  EXPECT_TRUE(extract_predicates(c).empty());
}

TEST(PredicateCone, IncludesUpstreamBooleans) {
  Fixture f;
  const auto cone = predicate_logic_cone(f.c);
  // sel, lt, and g are all 1-bit and upstream of (or equal to) a predicate.
  EXPECT_NE(std::find(cone.begin(), cone.end(), f.sel), cone.end());
  EXPECT_NE(std::find(cone.begin(), cone.end(), f.lt), cone.end());
  EXPECT_NE(std::find(cone.begin(), cone.end(), f.g), cone.end());
}

}  // namespace
}  // namespace rtlsat::ir
