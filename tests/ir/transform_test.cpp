#include "ir/transform.h"

#include <gtest/gtest.h>

#include "bmc/unroll.h"
#include "itc99/itc99.h"
#include "util/rng.h"

namespace rtlsat::ir {
namespace {

TEST(ExtractCone, DropsUnreachableLogic) {
  Circuit c("t");
  const NetId a = c.add_input("a", 8);
  const NetId b = c.add_input("b", 8);
  const NetId used = c.add_lt(a, b);
  c.add_add(a, b);  // dead: no property depends on it
  const auto result = extract_cone(c, {used});
  EXPECT_NE(result.net_map[used], kNoNet);
  EXPECT_LT(result.circuit.num_nets(), c.num_nets());
  // The dead adder is gone.
  const auto counts = result.circuit.op_counts();
  EXPECT_EQ(counts.arith, 1u);  // the comparator only
}

TEST(ExtractCone, PreservesNames) {
  Circuit c("t");
  const NetId a = c.add_input("alpha", 4);
  const NetId s = c.add_inc(a);
  c.set_net_name(s, "succ");
  const auto result = extract_cone(c, {s});
  EXPECT_NE(result.circuit.find_net("alpha"), kNoNet);
  EXPECT_NE(result.circuit.find_net("succ"), kNoNet);
}

TEST(Simplify, ExtractOfConcatCollapses) {
  Circuit c("t");
  const NetId hi = c.add_input("hi", 4);
  const NetId lo = c.add_input("lo", 4);
  const NetId cat = c.add_concat(hi, lo);
  const NetId low_field = c.add_extract(cat, 3, 1);   // inside lo
  const NetId high_field = c.add_extract(cat, 7, 4);  // exactly hi
  const auto result = simplify(c, {low_field, high_field});
  // The high field maps straight to the hi input; the concat is dead.
  EXPECT_EQ(result.net_map[high_field], result.net_map[hi]);
  for (NetId id = 0; id < result.circuit.num_nets(); ++id)
    EXPECT_NE(result.circuit.node(id).op, Op::kConcat);
}

TEST(Simplify, ExtractOfZextPadding) {
  Circuit c("t");
  const NetId x = c.add_input("x", 4);
  const NetId z = c.add_zext(x, 8);
  const NetId pad = c.add_extract(z, 7, 5);   // all padding: constant 0
  const NetId body = c.add_extract(z, 2, 1);  // inside x
  const auto result = simplify(c, {pad, body});
  EXPECT_EQ(result.circuit.node(result.net_map[pad]).op, Op::kConst);
  EXPECT_EQ(result.circuit.node(result.net_map[pad]).imm, 0);
}

TEST(Simplify, ShrOfConcatDropsLowPart) {
  Circuit c("t");
  const NetId hi = c.add_input("hi", 4);
  const NetId lo = c.add_input("lo", 4);
  const NetId cat = c.add_concat(hi, lo);
  const NetId shifted = c.add_shr(cat, 4);
  const auto result = simplify(c, {shifted});
  EXPECT_EQ(result.circuit.node(result.net_map[shifted]).op, Op::kZext);
}

TEST(Simplify, SemanticsPreservedOnRandomCircuits) {
  Rng rng(5150);
  for (int iter = 0; iter < 25; ++iter) {
    Circuit c("rand");
    std::vector<NetId> words;
    for (int i = 0; i < 2; ++i)
      words.push_back(c.add_input("w" + std::to_string(i), 6));
    for (int step = 0; step < 15; ++step) {
      const NetId a = words[rng.below(words.size())];
      const NetId b = words[rng.below(words.size())];
      switch (rng.below(6)) {
        case 0: words.push_back(c.add_add(a, b)); break;
        case 1:
          words.push_back(c.add_concat(c.add_extract(a, 3, 0),
                                       c.add_extract(b, 1, 0)));
          break;
        case 2: words.push_back(c.add_zext(c.add_extract(a, 4, 2), 6)); break;
        case 3: words.push_back(c.add_shr(a, 2)); break;
        case 4: words.push_back(c.add_sub(a, b)); break;
        case 5: words.push_back(c.add_notw(a)); break;
      }
    }
    const NetId root = words.back();
    const auto result = simplify(c, {root});
    const NetId new_root = result.net_map[root];
    ASSERT_NE(new_root, kNoNet);
    for (int s = 0; s < 10; ++s) {
      std::unordered_map<NetId, std::int64_t> in_old, in_new;
      for (const NetId in : c.inputs()) {
        const std::int64_t v = rng.range(0, 63);
        in_old[in] = v;
        in_new[result.circuit.find_net(c.net_name(in))] = v;
      }
      EXPECT_EQ(c.evaluate(in_old)[root],
                result.circuit.evaluate(in_new)[new_root]);
    }
  }
}

TEST(Simplify, ShrinksUnrolledB13) {
  // The serial shift register's unrolled concat/shr chains collapse.
  const auto seq = itc99::build("b13");
  const auto instance = bmc::unroll(seq, "1", 20);
  const auto before = instance.circuit.op_counts();
  const auto result = simplify(instance.circuit, {instance.goal});
  const auto after = result.circuit.op_counts();
  EXPECT_LT(after.arith + after.boolean, before.arith + before.boolean);
}

}  // namespace
}  // namespace rtlsat::ir
