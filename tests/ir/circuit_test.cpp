#include "ir/circuit.h"

#include <gtest/gtest.h>

namespace rtlsat::ir {
namespace {

TEST(Circuit, InputsAreTracked) {
  Circuit c("t");
  const NetId a = c.add_input("a", 8);
  const NetId b = c.add_input("b", 1);
  EXPECT_EQ(c.inputs(), (std::vector<NetId>{a, b}));
  EXPECT_EQ(c.width(a), 8);
  EXPECT_TRUE(c.is_bool(b));
  EXPECT_EQ(c.domain(a), Interval(0, 255));
}

TEST(Circuit, HashConsingDeduplicates) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  EXPECT_EQ(c.add_and(a, b), c.add_and(a, b));
  EXPECT_EQ(c.add_and(a, b), c.add_and(b, a));  // canonical operand order
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  EXPECT_EQ(c.add_add(x, y), c.add_add(y, x));
}

TEST(Circuit, InputsNeverDeduplicate) {
  Circuit c("t");
  EXPECT_NE(c.add_input("a", 4), c.add_input("b", 4));
}

TEST(Circuit, ConstantFolding) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId one = c.add_const(1, 1);
  const NetId zero = c.add_const(0, 1);
  EXPECT_EQ(c.add_and(a, one), a);
  EXPECT_EQ(c.add_and(a, zero), zero);
  EXPECT_EQ(c.add_or(a, zero), a);
  EXPECT_EQ(c.add_or(a, one), one);
  EXPECT_EQ(c.add_not(c.add_not(a)), a);
  EXPECT_EQ(c.add_xor(a, a), zero);
  EXPECT_EQ(c.add_xor(a, zero), a);
  EXPECT_EQ(c.node(c.add_xor(a, one)).op, Op::kNot);
}

TEST(Circuit, WordFolding) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId k0 = c.add_const(0, 8);
  EXPECT_EQ(c.add_add(x, k0), x);
  EXPECT_EQ(c.add_sub(x, k0), x);
  EXPECT_EQ(c.add_sub(x, x), k0);
  EXPECT_EQ(c.add_mulc(x, 1), x);
  EXPECT_EQ(c.add_mulc(x, 0), k0);
  EXPECT_EQ(c.add_shl(x, 0), x);
  // Constant arithmetic folds with wrap.
  const NetId k200 = c.add_const(200, 8);
  const NetId k100 = c.add_const(100, 8);
  EXPECT_EQ(c.node(c.add_add(k200, k100)).imm, 44);  // 300 mod 256
  EXPECT_EQ(c.node(c.add_sub(k100, k200)).imm, 156);
}

TEST(Circuit, MuxFolding) {
  Circuit c("t");
  const NetId s = c.add_input("s", 1);
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  EXPECT_EQ(c.add_mux(s, x, x), x);
  EXPECT_EQ(c.add_mux(c.add_const(1, 1), x, y), x);
  EXPECT_EQ(c.add_mux(c.add_const(0, 1), x, y), y);
}

TEST(Circuit, EqLowersToInequalityPair) {
  // §2.1: comparison operators are represented as a pair of inequalities.
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId eq = c.add_eq(x, y);
  EXPECT_EQ(c.node(eq).op, Op::kAnd);
  for (NetId o : c.node(eq).operands) EXPECT_EQ(c.node(o).op, Op::kLe);
}

TEST(Circuit, BooleanEqIsXnor) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId eq = c.add_eq(a, b);
  EXPECT_EQ(c.node(eq).op, Op::kNot);
}

TEST(Circuit, MinMaxLowerToComparatorPlusMux) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId mn = c.add_min(x, y);
  EXPECT_EQ(c.node(mn).op, Op::kMux);
  EXPECT_EQ(c.node(c.node(mn).operands[0]).op, Op::kLt);
  EXPECT_EQ(c.node(c.add_min_raw(x, y)).op, Op::kMin);
}

TEST(Circuit, GtGeCanonicalizeBySwap) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  EXPECT_EQ(c.add_gt(x, y), c.add_lt(y, x));
  EXPECT_EQ(c.add_ge(x, y), c.add_le(y, x));
}

TEST(Circuit, ExtractIdentityFolds) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  EXPECT_EQ(c.add_extract(x, 7, 0), x);
  EXPECT_EQ(c.width(c.add_extract(x, 5, 2)), 4);
  EXPECT_EQ(c.add_zext(x, 8), x);
  EXPECT_EQ(c.width(c.add_zext(x, 12)), 12);
}

TEST(Circuit, NamesRoundTrip) {
  Circuit c("t");
  const NetId a = c.add_input("a", 4);
  const NetId s = c.add_inc(a);
  c.set_net_name(s, "a_plus_1");
  EXPECT_EQ(c.find_net("a_plus_1"), s);
  EXPECT_EQ(c.find_net("a"), a);
  EXPECT_EQ(c.find_net("nothing"), kNoNet);
  EXPECT_EQ(c.net_name(s), "a_plus_1");
}

TEST(Circuit, EvaluateCombinational) {
  Circuit c("t");
  const NetId a = c.add_input("a", 8);
  const NetId b = c.add_input("b", 8);
  const NetId sum = c.add_add(a, b);
  const NetId lt = c.add_lt(a, b);
  const NetId pick = c.add_mux(lt, a, b);  // min(a,b)
  const auto values = c.evaluate({{a, 200}, {b, 100}});
  EXPECT_EQ(values[sum], 44);  // wraps at 8 bits
  EXPECT_EQ(values[lt], 0);
  EXPECT_EQ(values[pick], 100);
}

TEST(Circuit, EvaluateWiringOps) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId hi_nibble = c.add_extract(x, 7, 4);
  const NetId shr2 = c.add_shr(x, 2);
  const NetId shl1 = c.add_shl(x, 1);
  const NetId inv = c.add_notw(x);
  const auto values = c.evaluate({{x, 0b10110100}});
  EXPECT_EQ(values[hi_nibble], 0b1011);
  EXPECT_EQ(values[shr2], 0b101101);
  EXPECT_EQ(values[shl1], 0b01101000);  // top bit drops
  EXPECT_EQ(values[inv], 0b01001011);
}

TEST(Circuit, OpCountsSeparateArithAndBool) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  c.add_and(a, b);           // 1 bool
  c.add_add(x, y);           // 1 arith
  c.add_lt(x, y);            // 1 arith (comparators count as arith)
  const auto counts = c.op_counts();
  EXPECT_EQ(counts.boolean, 1u);
  EXPECT_EQ(counts.arith, 2u);
}

TEST(Circuit, ValidatePassesOnWellFormed) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  c.add_lt(c.add_inc(x), x);
  c.validate();
}

TEST(Circuit, DotDumpMentionsNames) {
  Circuit c("t");
  const NetId a = c.add_input("alpha", 2);
  c.add_inc(a);
  const std::string dot = c.to_dot();
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

}  // namespace
}  // namespace rtlsat::ir
