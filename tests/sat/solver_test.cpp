#include "sat/solver.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rtlsat::sat {
namespace {

TEST(Lit, EncodingRoundTrips) {
  const Lit p(5, true);
  EXPECT_EQ(p.var(), 5u);
  EXPECT_TRUE(p.positive());
  EXPECT_FALSE((~p).positive());
  EXPECT_EQ((~~p), p);
  EXPECT_NE(p, ~p);
}

TEST(Solver, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({Lit(a, true)});
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({Lit(a, true)});
  s.add_clause({Lit(a, false)});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, EmptyClauseIsUnsat) {
  Solver s;
  s.new_var();
  s.add_clause({});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, TautologyIgnored) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({Lit(a, true), Lit(a, false)});
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(Solver, UnitPropagationChain) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_clause({Lit(a, true)});
  s.add_clause({Lit(a, false), Lit(b, true)});   // a → b
  s.add_clause({Lit(b, false), Lit(c, true)});   // b → c
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_value(b));
  EXPECT_TRUE(s.model_value(c));
}

TEST(Solver, PigeonHole32IsUnsat) {
  // 3 pigeons, 2 holes: classic small UNSAT needing real search.
  Solver s;
  Var p[3][2];
  for (auto& row : p)
    for (Var& v : row) v = s.new_var();
  for (auto& row : p)
    s.add_clause({Lit(row[0], true), Lit(row[1], true)});
  for (int h = 0; h < 2; ++h)
    for (int i = 0; i < 3; ++i)
      for (int j = i + 1; j < 3; ++j)
        s.add_clause({Lit(p[i][h], false), Lit(p[j][h], false)});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, PigeonHole54IsUnsat) {
  Solver s;
  constexpr int kPigeons = 5, kHoles = 4;
  Var p[kPigeons][kHoles];
  for (auto& row : p)
    for (Var& v : row) v = s.new_var();
  for (auto& row : p) {
    std::vector<Lit> clause;
    for (Var v : row) clause.push_back(Lit(v, true));
    s.add_clause(clause);
  }
  for (int h = 0; h < kHoles; ++h)
    for (int i = 0; i < kPigeons; ++i)
      for (int j = i + 1; j < kPigeons; ++j)
        s.add_clause({Lit(p[i][h], false), Lit(p[j][h], false)});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, Assumptions) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({Lit(a, false), Lit(b, true)});  // a → b
  EXPECT_EQ(s.solve({Lit(a, true), Lit(b, false)}), Result::kUnsat);
  EXPECT_EQ(s.solve({Lit(a, true)}), Result::kSat);
  EXPECT_TRUE(s.model_value(b));
}

// Random 3-SAT near/below the phase transition, cross-checked against
// brute-force enumeration.
class Random3Sat : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Random3Sat, MatchesBruteForce) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    const int n = 10;
    const int m = static_cast<int>(rng.range(20, 50));
    std::vector<std::vector<Lit>> clauses;
    for (int k = 0; k < m; ++k) {
      std::vector<Lit> clause;
      for (int j = 0; j < 3; ++j)
        clause.push_back(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
      clauses.push_back(clause);
    }
    bool brute_sat = false;
    for (std::uint32_t assign = 0; assign < (1u << n) && !brute_sat;
         ++assign) {
      bool all = true;
      for (const auto& clause : clauses) {
        bool any = false;
        for (const Lit l : clause)
          any = any || (((assign >> l.var()) & 1) == (l.positive() ? 1u : 0u));
        all = all && any;
      }
      brute_sat = all;
    }
    Solver s;
    for (int v = 0; v < n; ++v) s.new_var();
    for (auto& clause : clauses) s.add_clause(clause);
    const Result got = s.solve();
    ASSERT_EQ(got == Result::kSat, brute_sat);
    if (brute_sat) {
      for (const auto& clause : clauses) {
        bool any = false;
        for (const Lit l : clause)
          any = any || (s.model_value(l.var()) == l.positive());
        EXPECT_TRUE(any);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3Sat,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(Solver, ManyRestartsStillSound) {
  // Tight restart interval to exercise the restart path.
  SolverOptions options;
  options.restart_base = 2;
  Solver s(options);
  constexpr int kPigeons = 6, kHoles = 5;
  std::vector<std::vector<Var>> p(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : p)
    for (Var& v : row) v = s.new_var();
  for (auto& row : p) {
    std::vector<Lit> clause;
    for (Var v : row) clause.push_back(Lit(v, true));
    s.add_clause(clause);
  }
  for (int h = 0; h < kHoles; ++h)
    for (int i = 0; i < kPigeons; ++i)
      for (int j = i + 1; j < kPigeons; ++j)
        s.add_clause({Lit(p[i][h], false), Lit(p[j][h], false)});
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().get("sat.restarts"), 0);
}

TEST(Solver, StatsPopulated) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({Lit(a, true), Lit(b, true)});
  s.add_clause({Lit(a, false), Lit(b, true)});
  s.add_clause({Lit(a, true), Lit(b, false)});
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_GT(s.stats().get("sat.decisions") + s.stats().get("sat.propagations"),
            0);
}

}  // namespace
}  // namespace rtlsat::sat
