// Regression tests for the incremental solve(assumptions) interface: the
// re-entrancy bugs fixed alongside it (dirty trail on the kSat,
// assumption-kUnsat, and timeout return paths) made every second call on
// one solver unsound, so these tests lean on back-to-back calls.
#include <gtest/gtest.h>

#include <algorithm>

#include "sat/solver.h"

namespace rtlsat::sat {
namespace {

void add_pigeonhole(Solver& s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p)
    for (Var& v : row) v = s.new_var();
  for (auto& row : p) {
    std::vector<Lit> clause;
    for (Var v : row) clause.push_back(Lit(v, true));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j)
        s.add_clause({Lit(p[i][h], false), Lit(p[j][h], false)});
}

bool core_contains(const std::vector<Lit>& core, Lit l) {
  return std::find(core.begin(), core.end(), l) != core.end();
}

// The historical bug: solve(assumptions) returned kSat without restoring
// root level, so the assumptions stayed on the trail as pseudo-decisions
// and the *next* call saw them as facts. Here the second call's verdict
// flips from the correct kSat to kUnsat on the broken code.
TEST(SolverIncremental, BackToBackAssumptionsAreIndependent) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({Lit(a, false), Lit(b, true)});  // a → b
  ASSERT_EQ(s.solve({Lit(a, true)}), Result::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  // ¬b is consistent with the clause (choose ¬a) — but not with a stale
  // trail still holding a = b = true.
  EXPECT_EQ(s.solve({Lit(b, false)}), Result::kSat);
  EXPECT_FALSE(s.model_value(b));
  EXPECT_FALSE(s.model_value(a));
}

// Second historical bug: a falsified assumption returned kUnsat with the
// earlier assumptions still enqueued, so even assumption-free follow-up
// calls inherited them.
TEST(SolverIncremental, AssumptionUnsatDoesNotPoisonSolver) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_clause({Lit(a, false), Lit(b, true)});  // a → b
  s.add_clause({Lit(b, false), Lit(c, true)});  // b → c
  ASSERT_EQ(s.solve({Lit(a, true), Lit(c, false)}), Result::kUnsat);
  // The database itself is untouched: still satisfiable without (and with
  // compatible) assumptions.
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.solve({Lit(c, false)}), Result::kSat);
  EXPECT_FALSE(s.model_value(a));
}

TEST(SolverIncremental, FailedAssumptionCoreIsReported) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  const Var free_var = s.new_var();
  s.add_clause({Lit(a, false), Lit(b, true)});  // a → b
  s.add_clause({Lit(b, false), Lit(c, true)});  // b → c
  ASSERT_EQ(
      s.solve({Lit(free_var, true), Lit(a, true), Lit(c, false)}),
      Result::kUnsat);
  const std::vector<Lit>& core = s.failed_assumptions();
  // {a, ¬c} is jointly refuted; the unrelated assumption must not appear.
  EXPECT_TRUE(core_contains(core, Lit(a, true)));
  EXPECT_TRUE(core_contains(core, Lit(c, false)));
  EXPECT_FALSE(core_contains(core, Lit(free_var, true)));
}

TEST(SolverIncremental, ContradictoryAssumptionPairCore) {
  Solver s;
  const Var a = s.new_var();
  s.new_var();
  ASSERT_EQ(s.solve({Lit(a, true), Lit(a, false)}), Result::kUnsat);
  EXPECT_TRUE(s.ok());
  const std::vector<Lit>& core = s.failed_assumptions();
  EXPECT_TRUE(core_contains(core, Lit(a, true)));
  EXPECT_TRUE(core_contains(core, Lit(a, false)));
}

TEST(SolverIncremental, RootUnsatClearsOkAndStays) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({Lit(a, true)});
  s.add_clause({Lit(a, false)});
  EXPECT_EQ(s.solve({Lit(a, true)}), Result::kUnsat);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.failed_assumptions().empty());
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SolverIncremental, ModelSurvivesTrailRestoration) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({Lit(a, true), Lit(b, true)});
  ASSERT_EQ(s.solve({Lit(a, false)}), Result::kSat);
  // The trail is back at root level, but the snapshot must still answer.
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_TRUE(s.check_invariants().empty());
}

TEST(SolverIncremental, ClausesCanBeAddedBetweenSolves) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_EQ(s.solve({Lit(a, true), Lit(b, true)}), Result::kSat);
  s.add_clause({Lit(a, false), Lit(b, false)});  // ¬(a ∧ b)
  EXPECT_EQ(s.solve({Lit(a, true), Lit(b, true)}), Result::kUnsat);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.solve({Lit(a, true)}), Result::kSat);
  EXPECT_FALSE(s.model_value(b));
}

// Learned clauses persist across calls: a pigeonhole instance guarded by
// an activation variable g (every clause weakened with g) is UNSAT only
// under the assumption ¬g. The first refutation distills the unit clause
// {g}; the second identical query must answer from it without searching.
TEST(SolverIncremental, LearnedClausesPersistAcrossCalls) {
  Solver s;
  const Var g = s.new_var();
  constexpr int kPigeons = 6, kHoles = 5;
  std::vector<std::vector<Var>> p(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : p)
    for (Var& v : row) v = s.new_var();
  for (auto& row : p) {
    std::vector<Lit> clause{Lit(g, true)};
    for (Var v : row) clause.push_back(Lit(v, true));
    s.add_clause(clause);
  }
  for (int h = 0; h < kHoles; ++h)
    for (int i = 0; i < kPigeons; ++i)
      for (int j = i + 1; j < kPigeons; ++j)
        s.add_clause(
            {Lit(g, true), Lit(p[i][h], false), Lit(p[j][h], false)});

  ASSERT_EQ(s.solve({Lit(g, false)}), Result::kUnsat);
  EXPECT_TRUE(s.ok());  // refuted only under ¬g
  const std::int64_t first_conflicts = s.stats().get("sat.conflicts");
  EXPECT_GT(first_conflicts, 0);
  ASSERT_EQ(s.solve({Lit(g, false)}), Result::kUnsat);
  // The persisted learning answers the repeat query outright.
  EXPECT_EQ(s.stats().get("sat.conflicts"), first_conflicts);
  // And the database stays satisfiable with the guard released.
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_value(g));
}

TEST(SolverIncremental, TimeoutLeavesSolverReusable) {
  Solver s;
  add_pigeonhole(s, 8);  // hard enough to out-run a microscopic budget
  s.set_budget(1e-9);
  const Result budgeted = s.solve();
  ASSERT_EQ(budgeted, Result::kTimeout);
  EXPECT_TRUE(s.check_invariants().empty());
  // Re-arm with no deadline: the same solver finishes the job.
  s.set_budget(0);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SolverIncremental, CancelLeavesSolverReusable) {
  StopSource source;
  Solver s;
  add_pigeonhole(s, 6);
  source.request_stop();
  s.set_budget(0, source.token());
  ASSERT_EQ(s.solve(), Result::kCancelled);
  EXPECT_TRUE(s.check_invariants().empty());
  s.set_budget(0);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

// Stress: a long alternating sequence of assumption sets over one solver.
// An at-most-one chain over selectors x0..x3 (SAT) plus a g-guarded
// pigeonhole core (UNSAT only when ¬g is assumed) flips each round
// between a satisfiable and an assumption-refuted query; every call must
// answer correctly with the invariants intact.
TEST(SolverIncremental, AlternatingAssumptionSequenceStaysSound) {
  Solver s;
  const Var g = s.new_var();
  std::vector<Var> x;
  for (int i = 0; i < 4; ++i) x.push_back(s.new_var());
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t j = i + 1; j < x.size(); ++j)
      s.add_clause({Lit(x[i], false), Lit(x[j], false)});  // at-most-one
  constexpr int kPigeons = 5, kHoles = 4;
  std::vector<std::vector<Var>> p(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : p)
    for (Var& v : row) v = s.new_var();
  for (auto& row : p) {
    std::vector<Lit> clause{Lit(g, true)};
    for (Var v : row) clause.push_back(Lit(v, true));
    s.add_clause(clause);
  }
  for (int h = 0; h < kHoles; ++h)
    for (int i = 0; i < kPigeons; ++i)
      for (int j = i + 1; j < kPigeons; ++j)
        s.add_clause(
            {Lit(g, true), Lit(p[i][h], false), Lit(p[j][h], false)});

  for (int round = 0; round < 12; ++round) {
    const Var chosen = x[static_cast<std::size_t>(round) % x.size()];
    if (round % 2 == 0) {
      ASSERT_EQ(s.solve({Lit(chosen, true)}), Result::kSat) << round;
      EXPECT_TRUE(s.model_value(chosen));
    } else {
      ASSERT_EQ(s.solve({Lit(g, false), Lit(chosen, true)}), Result::kUnsat)
          << round;
      EXPECT_TRUE(s.ok());
      EXPECT_TRUE(core_contains(s.failed_assumptions(), Lit(g, false)));
    }
    ASSERT_TRUE(s.check_invariants().empty()) << round;
  }
}

}  // namespace
}  // namespace rtlsat::sat
