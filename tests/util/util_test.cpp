#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/timer.h"

namespace rtlsat {
namespace {

// Keeps a computed value alive without volatile compound assignment.
void benchmarkish_use(std::int64_t v) { EXPECT_GE(v, 0); }

TEST(Strings, Format) {
  EXPECT_EQ(str_format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(str_format("%.2f", 1.005), "1.00");
  EXPECT_EQ(str_format("%s", ""), "");
}

TEST(Strings, Split) {
  const auto fields = split("  a b\tc\n d  ");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[3], "d");
  EXPECT_TRUE(split("").empty());
  EXPECT_TRUE(split("   ").empty());
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("b13_1(100)", "b13"));
  EXPECT_FALSE(starts_with("b1", "b13"));
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("7", 3), "7  ");
  EXPECT_EQ(pad_left("long", 2), "long");
}

TEST(Strings, FormatRuntimeMatchesPaperConventions) {
  EXPECT_EQ(format_runtime(1.234, false, false), "1.23");
  EXPECT_EQ(format_runtime(500, true, false), "-to-");
  EXPECT_EQ(format_runtime(0, false, true), "-A-");
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, RangeInclusive) {
  Rng rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, FlipIsBalancedEnough) {
  Rng rng(2);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.flip();
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(Stats, CountersAccumulate) {
  Stats stats;
  stats.add("x", 3);
  stats.counter("x") += 2;
  EXPECT_EQ(stats.get("x"), 5);
  EXPECT_EQ(stats.get("missing"), 0);
  EXPECT_NE(stats.to_string().find("x = 5"), std::string::npos);
  stats.clear();
  EXPECT_EQ(stats.get("x"), 0);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  std::int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  benchmarkish_use(sink);
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.micros(), 0);
}

TEST(Deadline, DefaultNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, ArmedExpires) {
  Deadline d(1e-9);
  EXPECT_TRUE(d.armed());
  std::int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  benchmarkish_use(sink);
  EXPECT_TRUE(d.expired());
}

}  // namespace
}  // namespace rtlsat
