#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/timer.h"

namespace rtlsat {
namespace {

// Keeps a computed value alive without volatile compound assignment.
void benchmarkish_use(std::int64_t v) { EXPECT_GE(v, 0); }

TEST(Strings, Format) {
  EXPECT_EQ(str_format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(str_format("%.2f", 1.005), "1.00");
  EXPECT_EQ(str_format("%s", ""), "");
}

TEST(Strings, Split) {
  const auto fields = split("  a b\tc\n d  ");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[3], "d");
  EXPECT_TRUE(split("").empty());
  EXPECT_TRUE(split("   ").empty());
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("b13_1(100)", "b13"));
  EXPECT_FALSE(starts_with("b1", "b13"));
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("7", 3), "7  ");
  EXPECT_EQ(pad_left("long", 2), "long");
}

TEST(Strings, FormatRuntimeMatchesPaperConventions) {
  EXPECT_EQ(format_runtime(1.234, false, false), "1.23");
  EXPECT_EQ(format_runtime(500, true, false), "-to-");
  EXPECT_EQ(format_runtime(0, false, true), "-A-");
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, RangeInclusive) {
  Rng rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, FlipIsBalancedEnough) {
  Rng rng(2);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.flip();
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(Stats, CountersAccumulate) {
  Stats stats;
  stats.add("x", 3);
  stats.counter("x") += 2;
  EXPECT_EQ(stats.get("x"), 5);
  EXPECT_EQ(stats.get("missing"), 0);
  EXPECT_NE(stats.to_string().find("x = 5"), std::string::npos);
  stats.clear();
  EXPECT_EQ(stats.get("x"), 0);
}

TEST(Stats, CounterReferencesAreStable) {
  // The hot-path contract: handles resolved once stay valid as the map grows
  // (std::map nodes never move).
  Stats stats;
  std::int64_t& first = stats.counter("first");
  for (int i = 0; i < 1000; ++i) stats.counter("filler" + std::to_string(i));
  first += 7;
  EXPECT_EQ(stats.get("first"), 7);
  EXPECT_EQ(&first, &stats.counter("first"));
}

TEST(Histogram, BucketIndexIsPowerOfTwo) {
  // Bucket 0 is (−∞, 0]; bucket i ≥ 1 covers [2^(i−1), 2^i − 1].
  EXPECT_EQ(Histogram::bucket_index(-5), 0);
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(7), 3);
  EXPECT_EQ(Histogram::bucket_index(8), 4);
  EXPECT_EQ(Histogram::bucket_index(INT64_MAX), Histogram::kBuckets - 1);
  for (int i = 1; i < Histogram::kBuckets - 1; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lo(i)), i);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_hi(i)), i);
  }
}

TEST(Histogram, SummaryStatistics) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  for (const std::int64_t v : {3, 1, 4, 1, 5}) h.add(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 14);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 5);
  EXPECT_DOUBLE_EQ(h.mean(), 2.8);
  EXPECT_EQ(h.buckets()[1], 2);  // the two 1s
  EXPECT_EQ(h.buckets()[2], 1);  // 3 falls in [2, 3]
  EXPECT_EQ(h.buckets()[3], 2);  // 4 and 5 fall in [4, 7]
  EXPECT_NE(h.to_string().find("count=5"), std::string::npos);
}

TEST(Stats, HistogramsLiveBesideCounters) {
  Stats stats;
  EXPECT_EQ(stats.find_histogram("h"), nullptr);
  Histogram& h = stats.histogram("h");
  h.add(10);
  ASSERT_NE(stats.find_histogram("h"), nullptr);
  EXPECT_EQ(stats.find_histogram("h")->count(), 1);
  EXPECT_EQ(stats.histograms().size(), 1u);
  EXPECT_NE(stats.to_string().find("count=1"), std::string::npos);
  stats.clear();
  EXPECT_EQ(stats.find_histogram("h"), nullptr);
}

namespace {
struct CapturedLog {
  std::vector<std::string> messages;
  std::vector<LogLevel> levels;
  double last_t_seconds = -1;
  std::uint64_t last_thread_id = 0;
};

void capture_sink(void* user, const LogRecord& record) {
  auto* captured = static_cast<CapturedLog*>(user);
  captured->messages.emplace_back(record.message);
  captured->levels.push_back(record.level);
  captured->last_t_seconds = record.t_seconds;
  captured->last_thread_id = record.thread_id;
}
}  // namespace

TEST(Log, SinkCapturesRecordsAndRestores) {
  CapturedLog captured;
  set_log_sink(&capture_sink, &captured);
  RTLSAT_WARN("answer is %d", 42);
  set_log_sink(nullptr, nullptr);  // restore default stderr behavior
  RTLSAT_WARN("not captured");
  ASSERT_EQ(captured.messages.size(), 1u);
  EXPECT_EQ(captured.messages[0], "answer is 42");  // formatted, no tag/newline
  EXPECT_EQ(captured.levels[0], LogLevel::kWarn);
  EXPECT_GE(captured.last_t_seconds, 0.0);
}

TEST(Log, SinkRespectsLevelFilter) {
  CapturedLog captured;
  set_log_sink(&capture_sink, &captured);
  RTLSAT_DEBUG("below the default kWarn threshold");
  set_log_sink(nullptr, nullptr);
  EXPECT_TRUE(captured.messages.empty());
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  std::int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  benchmarkish_use(sink);
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.micros(), 0);
}

TEST(Deadline, DefaultNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, ArmedExpires) {
  Deadline d(1e-9);
  EXPECT_TRUE(d.armed());
  std::int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  benchmarkish_use(sink);
  EXPECT_TRUE(d.expired());
}

}  // namespace
}  // namespace rtlsat
