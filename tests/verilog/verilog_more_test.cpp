// Additional Verilog-frontend coverage: operator corners, multi-reg always
// blocks, output-reg ports, and frontend/solver integration.
#include <gtest/gtest.h>

#include "bmc/sim.h"
#include "bmc/unroll.h"
#include "bitblast/bitblast.h"
#include "verilog/verilog.h"

namespace rtlsat::verilog {
namespace {

TEST(VerilogMore, NestedTernaryChains) {
  const auto seq = parse(R"(
    module grade(input clk, input [6:0] score, output [1:0] g);
      wire [1:0] tier = score >= 90 ? 2'd3 :
                        score >= 75 ? 2'd2 :
                        score >= 50 ? 2'd1 : 2'd0;
      assign g = tier;
      property sane = g <= 2'd3;
    endmodule
  )");
  const ir::Circuit& c = seq.comb();
  const ir::NetId score = c.find_net("score");
  const ir::NetId g = c.find_net("g");
  EXPECT_EQ(c.evaluate({{score, 95}})[g], 3);
  EXPECT_EQ(c.evaluate({{score, 80}})[g], 2);
  EXPECT_EQ(c.evaluate({{score, 60}})[g], 1);
  EXPECT_EQ(c.evaluate({{score, 10}})[g], 0);
}

TEST(VerilogMore, MultiRegAlwaysBlock) {
  const auto seq = parse(R"(
    module pair(input clk, input step);
      reg [3:0] a = 1;
      reg [3:0] b = 2;
      always @(posedge clk) begin
        if (step) begin
          a <= b;
          b <= a + b;
        end
      end
      property ordered = a <= b;
    endmodule
  )");
  // Nonblocking semantics: both updates read the OLD values.
  const ir::NetId step = seq.comb().find_net("step");
  const ir::NetId a = seq.comb().find_net("a");
  const ir::NetId b = seq.comb().find_net("b");
  bmc::Simulator sim(seq);
  sim.step({{step, 1}});
  EXPECT_EQ(sim.register_value(a), 2);  // old b
  EXPECT_EQ(sim.register_value(b), 3);  // old a + old b
  sim.step({{step, 1}});
  EXPECT_EQ(sim.register_value(a), 3);
  EXPECT_EQ(sim.register_value(b), 5);
}

TEST(VerilogMore, ConcatOfThree) {
  const auto seq = parse(R"(
    module cat(input clk, input [1:0] a, input [1:0] b, input [1:0] c);
      wire [5:0] all = {a, b, c};
      property p = all >= 6'd0;
    endmodule
  )");
  const ir::Circuit& comb = seq.comb();
  const auto values = comb.evaluate({{comb.find_net("a"), 0b11},
                                     {comb.find_net("b"), 0b01},
                                     {comb.find_net("c"), 0b10}});
  EXPECT_EQ(values[comb.find_net("all")], 0b110110);
}

TEST(VerilogMore, OutputRegIsStateful) {
  const auto seq = parse(R"(
    module toggler(input clk, input en, output reg q);
      always @(posedge clk) if (en) q <= !q;
      property p = q <= 1'b1;
    endmodule
  )");
  ASSERT_EQ(seq.registers().size(), 1u);
  EXPECT_EQ(seq.registers()[0].init, 0);
  const ir::NetId en = seq.comb().find_net("en");
  const ir::NetId q = seq.registers()[0].q;
  bmc::Simulator sim(seq);
  sim.step({{en, 1}});
  EXPECT_EQ(sim.register_value(q), 1);
  sim.step({{en, 0}});
  EXPECT_EQ(sim.register_value(q), 1);
  sim.step({{en, 1}});
  EXPECT_EQ(sim.register_value(q), 0);
}

TEST(VerilogMore, UndrivenRegisterHolds) {
  const auto seq = parse(R"(
    module hold(input clk);
      reg [3:0] frozen = 9;
      property p = frozen == 4'd9;
    endmodule
  )");
  // BMC proves the hold property at any depth.
  const auto instance = bmc::unroll(seq, "p", 5);
  EXPECT_EQ(bitblast::check_sat(instance.circuit, instance.goal).result,
            sat::Result::kUnsat);
}

TEST(VerilogMore, PartSelectOfExpressionRejected) {
  // Selects apply to identifiers only in this subset.
  EXPECT_THROW(parse(R"(
    module m(input clk, input [3:0] a);
      wire x = (a + a)[0];
    endmodule
  )"),
               VerilogError);
}

TEST(VerilogMore, DanglingElseBindsInner) {
  const auto seq = parse(R"(
    module dangle(input clk, input a, input b);
      reg [1:0] r = 0;
      always @(posedge clk)
        if (a)
          if (b) r <= 2'd1;
          else r <= 2'd2;
      property p = r <= 2'd2;
    endmodule
  )");
  const ir::NetId a = seq.comb().find_net("a");
  const ir::NetId b = seq.comb().find_net("b");
  const ir::NetId r = seq.registers()[0].q;
  bmc::Simulator sim(seq);
  sim.step({{a, 0}, {b, 0}});
  EXPECT_EQ(sim.register_value(r), 0);  // outer if false: hold
  sim.step({{a, 1}, {b, 0}});
  EXPECT_EQ(sim.register_value(r), 2);  // else bound to inner if
  sim.step({{a, 1}, {b, 1}});
  EXPECT_EQ(sim.register_value(r), 1);
}

}  // namespace
}  // namespace rtlsat::verilog
