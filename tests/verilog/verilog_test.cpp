#include "verilog/verilog.h"

#include <gtest/gtest.h>

#include "bmc/sim.h"
#include "bmc/unroll.h"
#include "core/hdpll.h"

namespace rtlsat::verilog {
namespace {

TEST(Verilog, PortsAndWires) {
  const auto seq = parse(R"(
    module adder(input clk, input [7:0] a, input [7:0] b, output [8:0] y);
      wire [8:0] sum = {1'b0, a} + {1'b0, b};
      assign y = sum;
    endmodule
  )");
  EXPECT_EQ(seq.comb().name(), "adder");
  EXPECT_EQ(seq.free_inputs().size(), 2u);  // clk dropped
  const ir::NetId y = seq.comb().find_net("y");
  ASSERT_NE(y, ir::kNoNet);
  EXPECT_EQ(seq.comb().width(y), 9);
}

TEST(Verilog, ExpressionsEvaluateCorrectly) {
  const auto seq = parse(R"(
    module expr(input clk, input [7:0] a, input [7:0] b, input s);
      wire [7:0] add = a + b;
      wire [7:0] sub = a - b;
      wire [7:0] shifted = a << 2;
      wire [7:0] picked = s ? a : b;
      wire lt = a < b;
      wire eqc = a == 8'd42;
      wire [3:0] nib = a[7:4];
      wire bit0 = a[0];
      wire both = lt && bit0;
      wire [7:0] inv = ~a;
      property dummy = 1'b1 == 1'b1;
    endmodule
  )");
  const ir::Circuit& c = seq.comb();
  const auto values = c.evaluate({{c.find_net("a"), 0b10101100},
                                  {c.find_net("b"), 200},
                                  {c.find_net("s"), 1}});
  EXPECT_EQ(values[c.find_net("add")], (0b10101100 + 200) % 256);
  EXPECT_EQ(values[c.find_net("sub")], (0b10101100 - 200 + 256) % 256);
  EXPECT_EQ(values[c.find_net("shifted")], (0b10101100 << 2) % 256);
  EXPECT_EQ(values[c.find_net("picked")], 0b10101100);
  EXPECT_EQ(values[c.find_net("lt")], 1);
  EXPECT_EQ(values[c.find_net("eqc")], 0);
  EXPECT_EQ(values[c.find_net("nib")], 0b1010);
  EXPECT_EQ(values[c.find_net("inv")], 0b01010011);
}

TEST(Verilog, RegistersAndAlways) {
  const auto seq = parse(R"(
    module cnt(input clk, input en, output reg [3:0] q);
      always @(posedge clk) begin
        if (en) q <= q + 1;
      end
      property bounded = q <= 4'd15;
    endmodule
  )");
  ASSERT_EQ(seq.registers().size(), 1u);
  const ir::NetId q = seq.registers()[0].q;
  const ir::NetId en = seq.free_inputs()[0];
  bmc::Simulator sim(seq);
  sim.step({{en, 1}});
  sim.step({{en, 1}});
  sim.step({{en, 0}});
  EXPECT_EQ(sim.register_value(q), 2);  // two enabled steps, one hold
}

TEST(Verilog, IfElseChainsBecomeMuxTrees) {
  const auto seq = parse(R"(
    module fsm(input clk, input go, input stop);
      reg [1:0] state = 0;
      always @(posedge clk) begin
        if (state == 2'd0) begin
          if (go) state <= 2'd1;
        end else if (state == 2'd1) begin
          state <= stop ? 2'd2 : 2'd1;
        end else begin
          state <= 2'd0;
        end
      end
      property sane = state <= 2'd2;
    endmodule
  )");
  const ir::NetId state = seq.registers()[0].q;
  const ir::NetId go = seq.comb().find_net("go");
  const ir::NetId stop = seq.comb().find_net("stop");
  bmc::Simulator sim(seq);
  sim.step({{go, 0}, {stop, 0}});
  EXPECT_EQ(sim.register_value(state), 0);  // hold without go
  sim.step({{go, 1}, {stop, 0}});
  EXPECT_EQ(sim.register_value(state), 1);
  sim.step({{go, 0}, {stop, 1}});
  EXPECT_EQ(sim.register_value(state), 2);
  sim.step({{go, 0}, {stop, 0}});
  EXPECT_EQ(sim.register_value(state), 0);  // unconditional return
}

TEST(Verilog, UnsizedConstantsTakeContextWidth) {
  const auto seq = parse(R"(
    module w(input clk, input [5:0] x);
      wire [5:0] y = x + 7;
      wire big = x > 40;
      property p = y >= 0;
    endmodule
  )");
  const ir::Circuit& c = seq.comb();
  const auto values = c.evaluate({{c.find_net("x"), 60}});
  EXPECT_EQ(values[c.find_net("y")], (60 + 7) % 64);
  EXPECT_EQ(values[c.find_net("big")], 1);
}

TEST(Verilog, BitwiseWordOps) {
  const auto seq = parse(R"(
    module bw(input clk, input [3:0] a, input [3:0] b);
      wire [3:0] o = a | b;
      wire [3:0] x = a ^ b;
      wire [3:0] n = a & b;
      property p = o >= n;
    endmodule
  )");
  const ir::Circuit& c = seq.comb();
  const auto values =
      c.evaluate({{c.find_net("a"), 0b1100}, {c.find_net("b"), 0b1010}});
  EXPECT_EQ(values[c.find_net("o")], 0b1110);
  EXPECT_EQ(values[c.find_net("x")], 0b0110);
  EXPECT_EQ(values[c.find_net("n")], 0b1000);
}

TEST(Verilog, CommentsAndLiterals) {
  const auto seq = parse(R"(
    module lit(input clk); // line comment
      /* block
         comment */
      wire [7:0] h = 8'hA5;
      wire [7:0] b = 8'b1010_0101;
      wire [7:0] o = 8'o245;
      property all_equal = h == b && b == o;
    endmodule
  )");
  const ir::Circuit& c = seq.comb();
  const auto values = c.evaluate({});
  EXPECT_EQ(values[seq.property("all_equal")], 1);
}

TEST(Verilog, ErrorsCarryLines) {
  try {
    parse("module m(input clk);\n  wire q = nothere;\nendmodule");
    FAIL() << "expected VerilogError";
  } catch (const VerilogError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW(parse("module m(input clk); wire [7:0] w = 1'b0 + 9'd0; endmodule"),
               VerilogError);  // width mismatch
  EXPECT_THROW(parse("module m(input clk); reg r = 0; assign r = 1'b1; endmodule"),
               VerilogError);  // assign to reg... (reg is not assignable)
  EXPECT_THROW(parse("module m(input clk, input x); always @(posedge clk) x <= 1'b0; endmodule"),
               VerilogError);  // nonblocking to non-reg
}

TEST(Verilog, EndToEndBmc) {
  // A property-checking round trip: parse, unroll, solve, replay.
  const auto seq = parse(R"(
    module sat_counter(input clk, input [3:0] inc, output reg [7:0] acc);
      always @(posedge clk) begin
        if (acc + {4'd0, inc} <= 8'd200) acc <= acc + {4'd0, inc};
        else acc <= 8'd200;
      end
      property capped = acc <= 8'd200;
      property small = acc <= 8'd100;
    endmodule
  )");
  {
    const auto instance = bmc::unroll(seq, "capped", 6);
    core::HdpllOptions options;
    options.structural_decisions = true;
    core::HdpllSolver solver(instance.circuit, options);
    solver.assume_bool(instance.goal, true);
    EXPECT_EQ(solver.solve().status, core::SolveStatus::kUnsat);
  }
  {
    const auto instance = bmc::unroll(seq, "small", 8);
    core::HdpllOptions options;
    options.structural_decisions = true;
    options.predicate_learning = true;
    core::HdpllSolver solver(instance.circuit, options);
    solver.assume_bool(instance.goal, true);
    EXPECT_EQ(solver.solve().status, core::SolveStatus::kSat);
  }
}

}  // namespace
}  // namespace rtlsat::verilog
