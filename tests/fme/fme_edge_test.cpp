// Edge cases for the Fourier–Motzkin solver beyond the main suite: large
// coefficients, long equality chains, tight boxes, and the splintering
// paths.
#include <gtest/gtest.h>

#include "fme/fme.h"

namespace rtlsat::fme {
namespace {

TEST(FmeEdge, PointBoxJustEvaluates) {
  System s;
  const Var x = s.add_var(Interval::point(7));
  const Var y = s.add_var(Interval::point(3));
  s.add_le({{x, 1}, {y, 1}}, 10);  // 7+3 ≤ 10 holds with equality
  Solver solver;
  std::vector<std::int64_t> model;
  EXPECT_EQ(solver.solve(s, &model), Result::kSat);
  EXPECT_EQ(model[x], 7);
  s.add_le({{x, 1}, {y, 1}}, 9);
  Solver solver2;
  EXPECT_EQ(solver2.solve(s, nullptr), Result::kUnsat);
}

TEST(FmeEdge, LongEqualityChain) {
  // x0 = x1 + 1 = x2 + 2 = … — a BMC-like substitution chain.
  System s;
  constexpr int kLen = 40;
  std::vector<Var> vars;
  for (int i = 0; i < kLen; ++i) vars.push_back(s.add_var(Interval(0, 1000)));
  for (int i = 0; i + 1 < kLen; ++i)
    s.add_eq({{vars[i], 1}, {vars[i + 1], -1}}, 1);  // x_i − x_{i+1} = 1
  s.add_eq({{vars[kLen - 1], 1}}, 5);
  Solver solver;
  std::vector<std::int64_t> model;
  ASSERT_EQ(solver.solve(s, &model), Result::kSat);
  EXPECT_EQ(model[vars[0]], 5 + kLen - 1);
}

TEST(FmeEdge, PowerOfTwoCoefficients) {
  // The concat/extract encodings: x = a·2^8 + b with field bounds.
  System s;
  const Var x = s.add_var(Interval(0, (1 << 16) - 1));
  const Var a = s.add_var(Interval(0, 255));
  const Var b = s.add_var(Interval(0, 255));
  s.add_eq({{x, 1}, {a, -256}, {b, -1}}, 0);
  s.add_eq({{a, 1}}, 0x12);
  s.add_eq({{b, 1}}, 0x34);
  Solver solver;
  std::vector<std::int64_t> model;
  ASSERT_EQ(solver.solve(s, &model), Result::kSat);
  EXPECT_EQ(model[x], 0x1234);
}

TEST(FmeEdge, LatticeGapRequiresDarkShadowOrSplinter) {
  // 6x ≡ 3 (mod 9) style: 6x − 9y = 3 is solvable (x=2,y=1), but
  // 6x − 9y = 1 is not (gcd 3 ∤ 1).
  {
    System s;
    const Var x = s.add_var(Interval(0, 50));
    const Var y = s.add_var(Interval(0, 50));
    s.add_eq({{x, 6}, {y, -9}}, 3);
    Solver solver;
    std::vector<std::int64_t> model;
    ASSERT_EQ(solver.solve(s, &model), Result::kSat);
    EXPECT_EQ(6 * model[x] - 9 * model[y], 3);
  }
  {
    System s;
    const Var x = s.add_var(Interval(0, 50));
    const Var y = s.add_var(Interval(0, 50));
    s.add_eq({{x, 6}, {y, -9}}, 1);
    Solver solver;
    EXPECT_EQ(solver.solve(s, nullptr), Result::kUnsat);
  }
}

TEST(FmeEdge, ManySmallComponents) {
  System s;
  std::vector<Var> vars;
  for (int i = 0; i < 30; ++i) {
    const Var a = s.add_var(Interval(0, 9));
    const Var b = s.add_var(Interval(0, 9));
    s.add_eq({{a, 1}, {b, -1}}, i % 5);  // a = b + (i mod 5)
    vars.push_back(a);
    vars.push_back(b);
  }
  Solver solver;
  std::vector<std::int64_t> model;
  ASSERT_EQ(solver.solve(s, &model), Result::kSat);
  for (int i = 0; i < 30; ++i)
    EXPECT_EQ(model[vars[2 * i]] - model[vars[2 * i + 1]], i % 5);
}

TEST(FmeEdge, NegativeBoundsWork) {
  // The solver is not restricted to circuit domains.
  System s;
  const Var x = s.add_var(Interval(-50, 50));
  const Var y = s.add_var(Interval(-50, 50));
  s.add_le({{x, 1}, {y, 1}}, -60);  // forces both deep negative
  Solver solver;
  std::vector<std::int64_t> model;
  ASSERT_EQ(solver.solve(s, &model), Result::kSat);
  EXPECT_LE(model[x] + model[y], -60);
}

TEST(FmeEdge, StatsExported) {
  System s;
  const Var x = s.add_var(Interval(0, 10));
  s.add_le({{x, 2}}, 7);
  Solver solver;
  ASSERT_EQ(solver.solve(s, nullptr), Result::kSat);
  EXPECT_GT(solver.stats().get("fme.calls"), 0);
}

}  // namespace
}  // namespace rtlsat::fme
