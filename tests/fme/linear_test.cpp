#include "fme/linear.h"

#include <gtest/gtest.h>

namespace rtlsat::fme {
namespace {

TEST(LinearConstraint, NormalizeMergesAndSorts) {
  LinearConstraint c{{{2, 3}, {0, 1}, {2, -3}, {1, 5}}, 7};
  c.normalize();
  ASSERT_EQ(c.terms.size(), 2u);
  EXPECT_EQ(c.terms[0].var, 0u);
  EXPECT_EQ(c.terms[0].coeff, 1);
  EXPECT_EQ(c.terms[1].var, 1u);
  EXPECT_EQ(c.terms[1].coeff, 5);
}

TEST(LinearConstraint, GroundHolds) {
  LinearConstraint sat{{}, 0};
  LinearConstraint unsat{{}, -1};
  EXPECT_TRUE(sat.ground_holds());
  EXPECT_FALSE(unsat.ground_holds());
}

TEST(LinearConstraint, CoeffOf) {
  LinearConstraint c{{{0, 2}, {3, -1}}, 0};
  EXPECT_EQ(c.coeff_of(0), 2);
  EXPECT_EQ(c.coeff_of(3), -1);
  EXPECT_EQ(c.coeff_of(1), 0);
}

TEST(LinearConstraint, Satisfied) {
  LinearConstraint c{{{0, 1}, {1, 2}}, 10};  // x + 2y ≤ 10
  EXPECT_TRUE(satisfied(c, {2, 4}));
  EXPECT_FALSE(satisfied(c, {3, 4}));
}

TEST(System, AddEqExpandsToTwoInequalities) {
  System s;
  const Var x = s.add_var(Interval(0, 10));
  s.add_eq({{x, 1}}, 5);
  ASSERT_EQ(s.constraints().size(), 2u);
  EXPECT_EQ(s.constraints()[0].bound, 5);
  EXPECT_EQ(s.constraints()[1].bound, -5);
  EXPECT_EQ(s.constraints()[1].terms[0].coeff, -1);
}

TEST(System, BoundsRestriction) {
  System s;
  const Var x = s.add_var(Interval(0, 255));
  s.restrict_bounds(x, Interval(10, 300));
  EXPECT_EQ(s.bounds(x), Interval(10, 255));
}

TEST(System, ToStringMentionsEverything) {
  System s;
  const Var x = s.add_var(Interval(0, 3));
  s.add_le({{x, 2}}, 5);
  const std::string text = s.to_string();
  EXPECT_NE(text.find("x0"), std::string::npos);
  EXPECT_NE(text.find("<= 5"), std::string::npos);
}

}  // namespace
}  // namespace rtlsat::fme
