#include "fme/fme.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rtlsat::fme {
namespace {

std::vector<std::int64_t> solve_sat(const System& s) {
  Solver solver;
  std::vector<std::int64_t> model;
  EXPECT_EQ(solver.solve(s, &model), Result::kSat);
  return model;
}

void expect_unsat(const System& s) {
  Solver solver;
  EXPECT_EQ(solver.solve(s, nullptr), Result::kUnsat);
}

TEST(Fme, EmptySystemIsSat) {
  System s;
  s.add_var(Interval(0, 7));
  const auto model = solve_sat(s);
  EXPECT_TRUE(Interval(0, 7).contains(model[0]));
}

TEST(Fme, SingleVariableChain) {
  System s;
  const Var x = s.add_var(Interval(0, 100));
  s.add_le({{x, 1}}, 30);    // x ≤ 30
  s.add_le({{x, -1}}, -25);  // x ≥ 25
  const auto model = solve_sat(s);
  EXPECT_GE(model[x], 25);
  EXPECT_LE(model[x], 30);
}

TEST(Fme, InfeasibleBounds) {
  System s;
  const Var x = s.add_var(Interval(0, 10));
  s.add_le({{x, 1}}, 3);
  s.add_le({{x, -1}}, -7);  // x ≥ 7 contradicts x ≤ 3
  expect_unsat(s);
}

TEST(Fme, TwoVariableElimination) {
  System s;
  const Var x = s.add_var(Interval(0, 15));
  const Var y = s.add_var(Interval(0, 15));
  s.add_le({{x, 1}, {y, -1}}, -1);  // x < y
  s.add_le({{y, 1}}, 5);
  const auto model = solve_sat(s);
  EXPECT_LT(model[x], model[y]);
  EXPECT_LE(model[y], 5);
}

TEST(Fme, EqualityChainPropagates) {
  System s;
  const Var a = s.add_var(Interval(0, 255));
  const Var b = s.add_var(Interval(0, 255));
  const Var c = s.add_var(Interval(0, 255));
  s.add_eq_2(a, 1, b, -1, 0);   // a = b
  s.add_eq_2(b, 1, c, -1, -3);  // b = c − 3
  s.add_eq({{c, 1}}, 10);       // c = 10
  const auto model = solve_sat(s);
  EXPECT_EQ(model[c], 10);
  EXPECT_EQ(model[b], 7);
  EXPECT_EQ(model[a], 7);
}

TEST(Fme, IntegerGapDetected) {
  // 2x = 7 has no integer solution though the real relaxation is feasible.
  System s;
  const Var x = s.add_var(Interval(0, 10));
  s.add_eq({{x, 2}}, 7);
  expect_unsat(s);
}

TEST(Fme, DarkShadowCoefficients) {
  // 3x ≤ 2y ∧ 2y ≤ 3x + 1 with wide bounds: needs non-unit eliminations.
  System s;
  const Var x = s.add_var(Interval(0, 50));
  const Var y = s.add_var(Interval(0, 50));
  s.add_le({{x, 3}, {y, -2}}, 0);
  s.add_le({{y, 2}, {x, -3}}, 1);
  const auto model = solve_sat(s);
  EXPECT_LE(3 * model[x], 2 * model[y]);
  EXPECT_LE(2 * model[y], 3 * model[x] + 1);
}

TEST(Fme, OmegaClassicNoSolution) {
  // 3x + 2y = 1 over non-negative ints with y ≥ 2 and x ≥ 0 is infeasible.
  System s;
  const Var x = s.add_var(Interval(0, 100));
  const Var y = s.add_var(Interval(2, 100));
  s.add_eq({{x, 3}, {y, 2}}, 1);
  expect_unsat(s);
}

TEST(Fme, IndependentComponentsSolveSeparately) {
  System s;
  const Var a = s.add_var(Interval(0, 9));
  const Var b = s.add_var(Interval(0, 9));
  const Var c = s.add_var(Interval(0, 9));
  const Var d = s.add_var(Interval(0, 9));
  s.add_eq_2(a, 1, b, -1, 2);  // a = b + 2
  s.add_eq_2(c, 1, d, -1, -4);  // c = d − 4
  const auto model = solve_sat(s);
  EXPECT_EQ(model[a], model[b] + 2);
  EXPECT_EQ(model[c], model[d] - 4);
}

TEST(Fme, ComponentUnsatFailsWhole) {
  System s;
  const Var a = s.add_var(Interval(0, 9));
  const Var b = s.add_var(Interval(0, 9));
  s.add_eq_2(a, 1, b, -1, 0);  // a = b (fine)
  const Var c = s.add_var(Interval(0, 3));
  s.add_le({{c, -1}}, -5);  // c ≥ 5 out of bounds
  expect_unsat(s);
}

TEST(Fme, ModularAdderConstraint) {
  // The arith_check encoding of an 8-bit adder: x + y − z − 256·o = 0,
  // o ∈ {0,1}, with x=200, y=100 forced ⟹ z = 44, o = 1.
  System s;
  const Var x = s.add_var(Interval::point(200));
  const Var y = s.add_var(Interval::point(100));
  const Var z = s.add_var(Interval(0, 255));
  const Var o = s.add_var(Interval(0, 1));
  s.add_le({{x, 1}, {y, 1}, {z, -1}, {o, -256}}, 0);
  s.add_le({{x, -1}, {y, -1}, {z, 1}, {o, 256}}, 0);
  const auto model = solve_sat(s);
  EXPECT_EQ(model[z], 44);
  EXPECT_EQ(model[o], 1);
}

TEST(Fme, SplinterOnDisjointLattice) {
  // 4x − 4y = 2 is infeasible (left side always ≡ 0 mod 4); triggers
  // non-unit eliminations whose dark shadow refutes.
  System s;
  const Var x = s.add_var(Interval(0, 20));
  const Var y = s.add_var(Interval(0, 20));
  s.add_eq({{x, 4}, {y, -4}}, 2);
  expect_unsat(s);
}

TEST(Fme, ModelRespectsBoundsAlways) {
  Rng rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    System s;
    std::vector<Var> vars;
    for (int v = 0; v < 4; ++v) {
      const std::int64_t lo = rng.range(0, 20);
      vars.push_back(s.add_var(Interval(lo, lo + rng.range(0, 20))));
    }
    // Random difference constraints.
    for (int k = 0; k < 4; ++k) {
      const Var a = vars[rng.below(vars.size())];
      const Var b = vars[rng.below(vars.size())];
      if (a == b) continue;
      s.add_le({{a, 1}, {b, -1}}, rng.range(-5, 10));
    }
    Solver solver;
    std::vector<std::int64_t> model;
    if (solver.solve(s, &model) == Result::kSat) {
      for (Var v = 0; v < s.num_vars(); ++v)
        EXPECT_TRUE(s.bounds(v).contains(model[v]));
      for (const auto& c : s.constraints())
        EXPECT_TRUE(satisfied(c, model));
    }
  }
}

// Exhaustive cross-check against brute force on tiny random systems: the
// solver's SAT/UNSAT answer must match enumeration exactly.
class FmeBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FmeBruteForce, MatchesEnumeration) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    System s;
    const int n = 3;
    for (int v = 0; v < n; ++v) s.add_var(Interval(0, 6));
    const int m = static_cast<int>(rng.range(1, 4));
    for (int k = 0; k < m; ++k) {
      std::vector<Term> terms;
      for (Var v = 0; v < static_cast<Var>(n); ++v) {
        const std::int64_t coeff = rng.range(-3, 3);
        if (coeff != 0) terms.push_back({v, coeff});
      }
      if (terms.empty()) continue;
      s.add_le(std::move(terms), rng.range(-6, 12));
    }
    bool brute_sat = false;
    for (std::int64_t a = 0; a <= 6 && !brute_sat; ++a)
      for (std::int64_t b = 0; b <= 6 && !brute_sat; ++b)
        for (std::int64_t c = 0; c <= 6 && !brute_sat; ++c) {
          bool all = true;
          for (const auto& lc : s.constraints())
            all = all && satisfied(lc, {a, b, c});
          brute_sat = all;
        }
    Solver solver;
    std::vector<std::int64_t> model;
    const Result got = solver.solve(s, &model);
    ASSERT_EQ(got == Result::kSat, brute_sat) << s.to_string();
    if (brute_sat) {
      for (const auto& lc : s.constraints())
        EXPECT_TRUE(satisfied(lc, model));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmeBruteForce,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace rtlsat::fme
