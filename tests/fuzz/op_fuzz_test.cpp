#include "fuzz/op_fuzz.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rtlsat::fuzz {
namespace {

// The exhaustive width sweep lives in interval_exhaustive_test.cpp; here we
// pin the randomized property-based drivers themselves so a regression in
// the fuzzers (a vacuous premise, a crashed sampler) is caught even when
// the library under test is healthy.

TEST(OpFuzz, RandomizedIntervalSweepIsClean) {
  Rng rng(2024);
  const std::vector<std::string> violations = fuzz_interval_ops(rng, 5000);
  ASSERT_TRUE(violations.empty())
      << violations.size() << " violations; first: " << violations.front();
}

TEST(OpFuzz, RandomizedIntervalSweepIsDeterministic) {
  Rng a(7), b(7);
  EXPECT_EQ(fuzz_interval_ops(a, 500), fuzz_interval_ops(b, 500));
}

TEST(OpFuzz, FmeAgainstEnumerationIsClean) {
  Rng rng(99);
  const std::vector<std::string> violations = fuzz_fme(rng, 500);
  ASSERT_TRUE(violations.empty())
      << violations.size() << " violations; first: " << violations.front();
}

TEST(OpFuzz, ExhaustiveCheckCountsWork) {
  std::int64_t checks = 0;
  const std::vector<std::string> violations =
      exhaustive_interval_check(2, &checks);
  EXPECT_TRUE(violations.empty());
  // Width 2 already covers thousands of concrete (interval, value) pairs;
  // a collapsed count means an enumeration loop regressed.
  EXPECT_GT(checks, 1000);
}

}  // namespace
}  // namespace rtlsat::fuzz
