#include "fuzz/oracle.h"

#include <gtest/gtest.h>

#include "fuzz/generator.h"
#include "ir/circuit.h"
#include "util/rng.h"

namespace rtlsat::fuzz {
namespace {

OracleOptions fast_options() {
  OracleOptions options;
  options.timeout_seconds = 30;
  options.portfolio_jobs = 2;
  return options;
}

TEST(Oracle, AgreesOnSatInstance) {
  ir::Circuit c("sat");
  const ir::NetId x = c.add_input("x", 4);
  const ir::NetId goal = c.add_eq(x, c.add_const(5, 4));
  const OracleReport report = run_oracle(c, goal, fast_options());
  EXPECT_EQ(report.consensus, 'S');
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.brute_ran);
  EXPECT_EQ(report.brute_sat_count, 1);
}

TEST(Oracle, AgreesOnUnsatInstance) {
  ir::Circuit c("unsat");
  const ir::NetId x = c.add_input("x", 3);
  const ir::NetId low = c.add_lt(x, c.add_const(3, 3));
  const ir::NetId high = c.add_lt(c.add_const(5, 3), x);
  const ir::NetId goal = c.add_and({low, high});
  const OracleReport report = run_oracle(c, goal, fast_options());
  EXPECT_EQ(report.consensus, 'U');
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.brute_ran);
  EXPECT_EQ(report.brute_sat_count, 0);
}

TEST(Oracle, BruteForceSkippedPastBitBudget) {
  ir::Circuit c("wide");
  const ir::NetId x = c.add_input("x", 40);
  const ir::NetId goal = c.add_lt(x, c.add_const(7, 40));
  OracleOptions options = fast_options();
  options.run_portfolio = false;
  const OracleReport report = run_oracle(c, goal, options);
  EXPECT_FALSE(report.brute_ran);
  EXPECT_EQ(report.consensus, 'S');
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Oracle, ZeroInputCircuitHandled) {
  // Constant goals are rejected by the generator but the oracle must not
  // choke on a circuit whose only input feeds dead logic.
  ir::Circuit c("zero");
  const ir::NetId x = c.add_input("x", 2);
  const ir::NetId goal = c.add_le(c.add_const(0, 2), x);  // tautology
  const OracleReport report = run_oracle(c, goal, fast_options());
  EXPECT_EQ(report.consensus, 'S');
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.brute_sat_count, 4);  // every width-2 value satisfies
}

// The full matrix on a batch of generated instances: this is the fuzzing
// loop in miniature and the tripwire that keeps the engines agreeing.
TEST(Oracle, GeneratedInstancesAgreeAcrossEngines) {
  GeneratorOptions gen;
  gen.max_width = 8;
  OracleOptions options = fast_options();
  options.run_portfolio = false;  // covered by portfolio_test; keep this fast
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    const FuzzInstance inst = generate(rng, gen);
    const OracleReport report = run_oracle(inst.circuit, inst.goal, options);
    ASSERT_TRUE(report.ok()) << "seed " << seed << " (" << inst.description
                             << "): " << report.summary() << "\n  "
                             << (report.mismatches.empty()
                                     ? std::string("-")
                                     : report.mismatches.front());
    ASSERT_NE(report.consensus, '?') << inst.description;
  }
}

}  // namespace
}  // namespace rtlsat::fuzz
