#include "fuzz/oracle.h"

#include <gtest/gtest.h>

#include "fuzz/generator.h"
#include "ir/circuit.h"
#include "util/rng.h"

namespace rtlsat::fuzz {
namespace {

OracleOptions fast_options() {
  OracleOptions options;
  options.timeout_seconds = 30;
  options.portfolio_jobs = 2;
  return options;
}

TEST(Oracle, AgreesOnSatInstance) {
  ir::Circuit c("sat");
  const ir::NetId x = c.add_input("x", 4);
  const ir::NetId goal = c.add_eq(x, c.add_const(5, 4));
  const OracleReport report = run_oracle(c, goal, fast_options());
  EXPECT_EQ(report.consensus, 'S');
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.brute_ran);
  EXPECT_EQ(report.brute_sat_count, 1);
}

TEST(Oracle, AgreesOnUnsatInstance) {
  ir::Circuit c("unsat");
  const ir::NetId x = c.add_input("x", 3);
  const ir::NetId low = c.add_lt(x, c.add_const(3, 3));
  const ir::NetId high = c.add_lt(c.add_const(5, 3), x);
  const ir::NetId goal = c.add_and({low, high});
  const OracleReport report = run_oracle(c, goal, fast_options());
  EXPECT_EQ(report.consensus, 'U');
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.brute_ran);
  EXPECT_EQ(report.brute_sat_count, 0);
}

TEST(Oracle, BruteForceSkippedPastBitBudget) {
  ir::Circuit c("wide");
  const ir::NetId x = c.add_input("x", 40);
  const ir::NetId goal = c.add_lt(x, c.add_const(7, 40));
  OracleOptions options = fast_options();
  options.run_portfolio = false;
  const OracleReport report = run_oracle(c, goal, options);
  EXPECT_FALSE(report.brute_ran);
  EXPECT_EQ(report.consensus, 'S');
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Oracle, ZeroInputCircuitHandled) {
  // Constant goals are rejected by the generator but the oracle must not
  // choke on a circuit whose only input feeds dead logic.
  ir::Circuit c("zero");
  const ir::NetId x = c.add_input("x", 2);
  const ir::NetId goal = c.add_le(c.add_const(0, 2), x);  // tautology
  const OracleReport report = run_oracle(c, goal, fast_options());
  EXPECT_EQ(report.consensus, 'S');
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.brute_sat_count, 4);  // every width-2 value satisfies
}

// The full matrix on a batch of generated instances: this is the fuzzing
// loop in miniature and the tripwire that keeps the engines agreeing.
TEST(Oracle, GeneratedInstancesAgreeAcrossEngines) {
  GeneratorOptions gen;
  gen.max_width = 8;
  OracleOptions options = fast_options();
  options.run_portfolio = false;  // covered by portfolio_test; keep this fast
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    const FuzzInstance inst = generate(rng, gen);
    const OracleReport report = run_oracle(inst.circuit, inst.goal, options);
    ASSERT_TRUE(report.ok()) << "seed " << seed << " (" << inst.description
                             << "): " << report.summary() << "\n  "
                             << (report.mismatches.empty()
                                     ? std::string("-")
                                     : report.mismatches.front());
    ASSERT_NE(report.consensus, '?') << inst.description;
  }
}

TEST(PresolveOracle, CleanOnDecidedSatAndUnsat) {
  // Presolve decides both instances; the differential must confirm the
  // verdicts against the direct solver and audit any model it produced.
  ir::Circuit sat("dec-sat");
  const ir::NetId a = sat.add_input("a", 4);
  const ir::NetId sat_goal =
      sat.add_le(sat.add_zext(a, 8), sat.add_const(20, 8));
  EXPECT_TRUE(compare_presolve(sat, sat_goal, fast_options()).empty());

  ir::Circuit unsat("dec-unsat");
  const ir::NetId b = unsat.add_input("b", 4);
  const ir::NetId unsat_goal =
      unsat.add_eq(unsat.add_zext(b, 8), unsat.add_const(200, 8));
  EXPECT_TRUE(compare_presolve(unsat, unsat_goal, fast_options()).empty());
}

TEST(PresolveOracle, CleanOnUndecidedInstance) {
  // a + b == 100 ∧ a < 20 is interval-undecidable: the oracle solves the
  // simplified circuit, transfers the witness back by input name, and
  // checks net-by-net agreement through the net map.
  ir::Circuit c("undec");
  const ir::NetId a = c.add_input("a", 8);
  const ir::NetId b = c.add_input("b", 8);
  const ir::NetId goal =
      c.add_and(c.add_eq(c.add_add(a, b), c.add_const(100, 8)),
                c.add_lt(a, c.add_const(20, 8)));
  const std::vector<std::string> mismatches =
      compare_presolve(c, goal, fast_options());
  EXPECT_TRUE(mismatches.empty())
      << (mismatches.empty() ? std::string("-") : mismatches.front());
}

TEST(PresolveOracle, GeneratedInstancesStayClean) {
  GeneratorOptions gen;
  gen.max_width = 8;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    const FuzzInstance inst = generate(rng, gen);
    const std::vector<std::string> mismatches =
        compare_presolve(inst.circuit, inst.goal, fast_options());
    ASSERT_TRUE(mismatches.empty())
        << "seed " << seed << " (" << inst.description
        << "): " << mismatches.front();
  }
}

}  // namespace
}  // namespace rtlsat::fuzz
