#include "fuzz/generator.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "ir/circuit.h"
#include "util/rng.h"

namespace rtlsat::fuzz {
namespace {

TEST(Generator, DeterministicPerSeed) {
  GeneratorOptions options;
  Rng a(42), b(42);
  const FuzzInstance first = generate(a, options);
  const FuzzInstance second = generate(b, options);
  EXPECT_EQ(first.description, second.description);
  EXPECT_EQ(first.circuit.num_nets(), second.circuit.num_nets());
  EXPECT_EQ(first.goal, second.goal);
}

TEST(Generator, GoalIsNonConstantBool) {
  GeneratorOptions options;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const FuzzInstance inst = generate(rng, options);
    ASSERT_TRUE(inst.circuit.is_bool(inst.goal)) << inst.description;
    ASSERT_NE(inst.circuit.node(inst.goal).op, ir::Op::kConst)
        << inst.description;
    inst.circuit.validate();
  }
}

TEST(Generator, RespectsWidthBounds) {
  GeneratorOptions options;
  options.min_width = 3;
  options.max_width = 7;
  options.wide_stress_percent = 0;
  options.sequential_percent = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const FuzzInstance inst = generate(rng, options);
    EXPECT_GE(inst.base_width, 3);
    EXPECT_LE(inst.base_width, 7);
  }
}

TEST(Generator, EvaluatesOnArbitraryInputs) {
  GeneratorOptions options;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const FuzzInstance inst = generate(rng, options);
    std::unordered_map<ir::NetId, std::int64_t> values;
    for (const ir::NetId in : inst.circuit.inputs()) {
      const std::int64_t top =
          (std::int64_t{1} << inst.circuit.width(in)) - 1;
      values[in] = static_cast<std::int64_t>(rng.next()) & top;
    }
    const std::vector<std::int64_t> nets = inst.circuit.evaluate(values);
    const std::int64_t g = nets[inst.goal];
    EXPECT_TRUE(g == 0 || g == 1) << inst.description;
  }
}

TEST(Generator, SequentialInstancesUnrollToCircuits) {
  GeneratorOptions options;
  options.sequential_percent = 100;
  std::set<std::string> descriptions;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const FuzzInstance inst = generate(rng, options);
    EXPECT_TRUE(inst.from_sequential) << inst.description;
    EXPECT_TRUE(inst.circuit.is_bool(inst.goal));
    descriptions.insert(inst.description);
  }
  // Different seeds must explore different shapes.
  EXPECT_GT(descriptions.size(), 5u);
}

}  // namespace
}  // namespace rtlsat::fuzz
