#include "fuzz/reduce.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "ir/circuit.h"
#include "parser/rtl_format.h"

namespace rtlsat::fuzz {
namespace {

// A bulky instance whose "failure" is a semantic property of the goal cone:
// the goal evaluates to 1 when every input is 3. The surrounding noise is
// reducible; the witness property is not.
ir::Circuit noisy_circuit(ir::NetId* goal) {
  ir::Circuit c("noisy");
  const ir::NetId x = c.add_input("x", 4);
  const ir::NetId y = c.add_input("y", 4);
  const ir::NetId z = c.add_input("z", 4);
  const ir::NetId eq3 = c.add_eq(x, c.add_const(3, 4));
  // Noise: arithmetic whose value never decides the goal.
  const ir::NetId noise1 = c.add_add(y, z);
  const ir::NetId noise2 = c.add_mulc(noise1, 5);
  const ir::NetId noise3 = c.add_lt(noise2, c.add_const(11, 4));
  const ir::NetId padded = c.add_or({eq3, c.add_and({noise3, eq3})});
  *goal = padded;
  return c;
}

bool sat_at_all_threes(const ir::Circuit& c, ir::NetId goal) {
  std::unordered_map<ir::NetId, std::int64_t> values;
  for (const ir::NetId in : c.inputs()) values[in] = 3;
  return c.evaluate(values)[goal] == 1;
}

TEST(Reduce, ShrinksWhilePreservingPredicate) {
  ir::NetId goal = ir::kNoNet;
  const ir::Circuit c = noisy_circuit(&goal);
  ASSERT_TRUE(sat_at_all_threes(c, goal));

  const ReduceResult result = reduce(c, goal, sat_at_all_threes);
  EXPECT_LE(result.final_nodes, result.initial_nodes);
  EXPECT_LT(result.final_nodes, c.num_nets());
  EXPECT_TRUE(sat_at_all_threes(result.circuit, result.goal));
  EXPECT_GT(result.attempts, 0);
}

TEST(Reduce, ReproRoundTripsThroughParser) {
  ir::NetId goal = ir::kNoNet;
  const ir::Circuit c = noisy_circuit(&goal);
  const std::string text = write_repro(c, goal);

  ir::NetId parsed_goal = ir::kNoNet;
  const ir::Circuit parsed = load_repro(text, &parsed_goal);
  ASSERT_NE(parsed_goal, ir::kNoNet);
  EXPECT_TRUE(parsed.is_bool(parsed_goal));
  EXPECT_EQ(parsed.inputs().size(), c.inputs().size());
  EXPECT_TRUE(sat_at_all_threes(parsed, parsed_goal));
}

TEST(Reduce, KeepsDeadNetsWhenPredicateObservesThem) {
  // Predicate sensitive to logic OUTSIDE the goal cone: the circuit must
  // contain a mulc net. Cone extraction would drop it; the reducer must
  // notice and fall back to the dead-preserving mode.
  ir::Circuit c("dead");
  const ir::NetId x = c.add_input("x", 4);
  const ir::NetId dead = c.add_mulc(x, 3);  // not in the goal cone
  (void)dead;
  const ir::NetId goal = c.add_lt(x, c.add_const(9, 4));
  const Interesting has_mulc = [](const ir::Circuit& cc, ir::NetId) {
    for (ir::NetId id = 0; id < cc.num_nets(); ++id)
      if (cc.node(id).op == ir::Op::kMulC) return true;
    return false;
  };
  ASSERT_TRUE(has_mulc(c, goal));
  const ReduceResult result = reduce(c, goal, has_mulc);
  EXPECT_TRUE(has_mulc(result.circuit, result.goal));
}

TEST(Reduce, RejectsConstantGoalRepro) {
  ir::Circuit c("const");
  const ir::NetId x = c.add_input("x", 2);
  (void)x;
  const ir::NetId goal = c.add_const(1, 1);
  EXPECT_DEATH(write_repro(c, goal), "constant goal");
}

}  // namespace
}  // namespace rtlsat::fuzz
