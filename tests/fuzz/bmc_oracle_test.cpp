// Incremental-vs-fresh BMC differential fuzzing: on generated sequential
// designs, the warm path (one growing circuit + one persistent solver,
// bmc/incremental.h) must be verdict-for-verdict interchangeable with
// fresh-per-frame unroll+solve, and every incremental SAT witness must
// replay by simulation. This is the oracle ISSUE 9 relies on to call the
// two paths equivalent.
#include <gtest/gtest.h>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "itc99/itc99.h"
#include "util/rng.h"

namespace rtlsat::fuzz {
namespace {

OracleOptions bmc_options() {
  OracleOptions options;
  options.timeout_seconds = 30;
  return options;
}

TEST(BmcOracle, GeneratedSequentialDesignsAgree) {
  GeneratorOptions gen;
  gen.sequential_percent = 100;
  gen.max_registers = 3;
  gen.max_bound = 5;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    const ir::SeqCircuit seq = generate_seq(rng, gen);
    const auto mismatches =
        compare_bmc_paths(seq, "p0", gen.max_bound, bmc_options());
    for (const std::string& m : mismatches)
      ADD_FAILURE() << "seed " << seed << ": " << m;
  }
}

TEST(BmcOracle, Itc99DesignsAgree) {
  // Real designs exercise deeper reconvergence than the generator; b01
  // crosses from UNSAT to SAT inside the swept range, so both verdict
  // kinds (and the witness replay) are covered.
  const auto a = compare_bmc_paths(itc99::build("b01"), "1", 10,
                                   bmc_options());
  for (const std::string& m : a) ADD_FAILURE() << "b01: " << m;
  const auto b = compare_bmc_paths(itc99::build("b06"), "1", 4,
                                   bmc_options());
  for (const std::string& m : b) ADD_FAILURE() << "b06: " << m;
}

}  // namespace
}  // namespace rtlsat::fuzz
