#include "itc99/itc99.h"

#include <gtest/gtest.h>

#include "bitblast/bitblast.h"
#include "bmc/unroll.h"

namespace rtlsat::itc99 {
namespace {

sat::Result bmc_oracle(const ir::SeqCircuit& seq, std::string_view prop,
                       int bound) {
  const auto instance = bmc::unroll(seq, prop, bound);
  return bitblast::check_sat(instance.circuit, instance.goal).result;
}

TEST(Registry, AllCircuitsBuildAndValidate) {
  for (const std::string& name : available()) {
    const ir::SeqCircuit seq = build(name);
    EXPECT_EQ(seq.comb().name(), name);
    EXPECT_FALSE(seq.registers().empty()) << name;
    EXPECT_FALSE(seq.properties().empty()) << name;
    seq.validate();
  }
}

TEST(B01, StateMachineShape) {
  const auto seq = build_b01();
  EXPECT_EQ(seq.free_inputs().size(), 2u);  // line1, line2
  EXPECT_EQ(seq.registers().size(), 4u);
  EXPECT_NE(seq.property("1"), ir::kNoNet);
}

TEST(B01, Property1PeriodTwentyPattern) {
  // The paper's b01_1 family: S at bounds ≡ 10 (mod 20), U at ≡ 0.
  const auto seq = build_b01();
  EXPECT_EQ(bmc_oracle(seq, "1", 10), sat::Result::kSat);
  EXPECT_EQ(bmc_oracle(seq, "1", 20), sat::Result::kUnsat);
}

TEST(B01, Property2MutualExclusionHolds) {
  const auto seq = build_b01();
  EXPECT_EQ(bmc_oracle(seq, "2", 8), sat::Result::kUnsat);
}

TEST(B02, Property1IllegalStateUnreachable) {
  const auto seq = build_b02();
  EXPECT_EQ(bmc_oracle(seq, "1", 8), sat::Result::kUnsat);
  EXPECT_EQ(bmc_oracle(seq, "1", 13), sat::Result::kUnsat);
}

TEST(B02, Property3ReachabilityProbe) {
  const auto seq = build_b02();
  EXPECT_EQ(bmc_oracle(seq, "3", 4), sat::Result::kSat);
}

TEST(B03, TimerInvariantsHold) {
  const auto seq = build_b03();
  EXPECT_EQ(bmc_oracle(seq, "1", 12), sat::Result::kUnsat);
  EXPECT_EQ(bmc_oracle(seq, "2", 12), sat::Result::kUnsat);
}

TEST(B03, OwnershipReachable) {
  // Earliest grant to requester 3 is at t=3 (round-robin scan), the timer
  // expires 9 cycles later, and the release clears it the cycle after —
  // the violation is observable at exactly t = 12.
  const auto seq = build_b03();
  EXPECT_EQ(bmc_oracle(seq, "3", 12), sat::Result::kSat);
  EXPECT_EQ(bmc_oracle(seq, "3", 11), sat::Result::kUnsat);
}

TEST(B04, Property1ViolableAtEveryBound) {
  // The all-S family of Table 2.
  const auto seq = build_b04();
  EXPECT_EQ(bmc_oracle(seq, "1", 2), sat::Result::kSat);
  EXPECT_EQ(bmc_oracle(seq, "1", 7), sat::Result::kSat);
}

TEST(B04, Property2MinMaxOrderInvariant) {
  const auto seq = build_b04();
  EXPECT_EQ(bmc_oracle(seq, "2", 5), sat::Result::kUnsat);
}

TEST(B13, ShapeMatchesPaperScale) {
  const auto seq = build_b13();
  EXPECT_GE(seq.registers().size(), 10u);
  const auto counts = seq.comb().op_counts();
  // Tables 1–2 imply roughly 60–90 word ops per frame for b13.
  EXPECT_GE(counts.arith, 40u);
  EXPECT_GE(counts.boolean, 20u);
}

TEST(B13, InvariantFamiliesAreUnsat) {
  const auto seq = build_b13();
  for (const char* prop : {"1", "2", "3", "5", "8"}) {
    EXPECT_EQ(bmc_oracle(seq, prop, 6), sat::Result::kUnsat)
        << "property " << prop;
  }
}

TEST(B13, Property40ReachableAtPaperBound) {
  const auto seq = build_b13();
  EXPECT_EQ(bmc_oracle(seq, "40", 13), sat::Result::kSat);
  EXPECT_EQ(bmc_oracle(seq, "40", 5), sat::Result::kUnsat);  // too shallow
}

TEST(B13, BitWidthsWithinPaperRange) {
  const auto seq = build_b13();
  const ir::Circuit& c = seq.comb();
  int min_w = 64, max_w = 0;
  for (const auto& r : seq.registers()) {
    min_w = std::min(min_w, c.width(r.q));
    max_w = std::max(max_w, c.width(r.q));
  }
  EXPECT_LE(min_w, 3);
  EXPECT_GE(max_w, 8);
  EXPECT_LE(max_w, 10);
}


TEST(B06, InvariantsHoldAndProbeReachable) {
  const auto seq = build_b06();
  EXPECT_EQ(bmc_oracle(seq, "1", 8), sat::Result::kUnsat);
  EXPECT_EQ(bmc_oracle(seq, "2", 8), sat::Result::kUnsat);
  // Five served interrupts need five WAIT→INTR→ACK→RETI rounds.
  EXPECT_EQ(bmc_oracle(seq, "3", 8), sat::Result::kUnsat);
}

TEST(B10, VotingInvariants) {
  const auto seq = build_b10();
  EXPECT_EQ(bmc_oracle(seq, "1", 8), sat::Result::kUnsat);
  EXPECT_EQ(bmc_oracle(seq, "2", 8), sat::Result::kUnsat);
  // Five won rounds need five LOAD/COMPARE/EMIT cycles: 4 steps each after
  // the initial start, so reachable at bound 21.
  EXPECT_EQ(bmc_oracle(seq, "3", 21), sat::Result::kSat);
  EXPECT_EQ(bmc_oracle(seq, "3", 10), sat::Result::kUnsat);
}

}  // namespace
}  // namespace rtlsat::itc99
