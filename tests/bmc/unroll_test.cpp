#include "bmc/unroll.h"

#include <gtest/gtest.h>

#include "bitblast/bitblast.h"

namespace rtlsat::bmc {
namespace {

using ir::Circuit;
using ir::NetId;

// A 4-bit counter with enable; property: q < 15 at the checked frame.
ir::SeqCircuit counter() {
  ir::SeqCircuit seq("cnt");
  Circuit& c = seq.comb();
  const NetId en = c.add_input("en", 1);
  const NetId q = seq.add_register("q", 4, 0);
  seq.bind_next(q, c.add_mux(en, c.add_inc(q), q));
  seq.add_property("lt15", c.add_lt(q, c.add_const(15, 4)));
  seq.add_property("lt8", c.add_lt(q, c.add_const(8, 4)));
  return seq;
}

TEST(Unroll, NamesEncodeInstance) {
  const auto instance = unroll(counter(), "lt15", 3);
  EXPECT_EQ(instance.name, "cnt_lt15(3)");
  EXPECT_EQ(instance.bound, 3);
  EXPECT_NE(instance.goal, ir::kNoNet);
}

TEST(Unroll, FrameInputsAreFresh) {
  const auto instance = unroll(counter(), "lt15", 4);
  // One free input (en) per frame 0..4 (the final frame also gets one).
  EXPECT_EQ(instance.circuit.inputs().size(), 5u);
  EXPECT_NE(instance.circuit.find_net("en@0"), ir::kNoNet);
  EXPECT_NE(instance.circuit.find_net("en@3"), ir::kNoNet);
}

TEST(Unroll, FinalFrameSemantics) {
  // q can reach 15 only after 15 enabled steps: the violation of lt15 at
  // exactly bound 15 is SAT, at bound 14 UNSAT.
  const auto sat_instance = unroll(counter(), "lt15", 15);
  EXPECT_EQ(bitblast::check_sat(sat_instance.circuit, sat_instance.goal).result,
            sat::Result::kSat);
  const auto unsat_instance = unroll(counter(), "lt15", 14);
  EXPECT_EQ(
      bitblast::check_sat(unsat_instance.circuit, unsat_instance.goal).result,
      sat::Result::kUnsat);
}

TEST(Unroll, ExactDepthIsNotMonotone) {
  // A free-running counter shows the paper's non-monotone b01_1 pattern:
  // "q = 3" holds after exactly k steps iff k ≡ 3 (mod 4).
  ir::SeqCircuit seq("free");
  Circuit& c = seq.comb();
  const NetId unused = c.add_input("in", 1);
  (void)unused;
  const NetId q = seq.add_register("q", 2, 0);
  seq.bind_next(q, c.add_inc(q));
  seq.add_property("ne3", c.add_not(c.add_eqc(q, 3)));
  const auto instance3 = unroll(seq, "ne3", 3);
  EXPECT_EQ(bitblast::check_sat(instance3.circuit, instance3.goal).result,
            sat::Result::kSat);
  const auto instance4 = unroll(seq, "ne3", 4);
  EXPECT_EQ(bitblast::check_sat(instance4.circuit, instance4.goal).result,
            sat::Result::kUnsat);
  const auto instance7 = unroll(seq, "ne3", 7);
  EXPECT_EQ(bitblast::check_sat(instance7.circuit, instance7.goal).result,
            sat::Result::kSat);
}

TEST(UnrollAny, CumulativeIsMonotone) {
  // unroll_any covers every frame ≤ k, so SAT persists as k grows.
  const auto instance = unroll_any(counter(), "lt8", 9);
  EXPECT_EQ(bitblast::check_sat(instance.circuit, instance.goal).result,
            sat::Result::kSat);
  const auto bigger = unroll_any(counter(), "lt8", 12);
  EXPECT_EQ(bitblast::check_sat(bigger.circuit, bigger.goal).result,
            sat::Result::kSat);
}

TEST(Unroll, FrameMapTracksRegisters) {
  const auto seq = counter();
  const auto instance = unroll(seq, "lt15", 2);
  ASSERT_EQ(instance.frame_map.size(), 3u);  // frames 0,1,2
  const NetId q = seq.registers()[0].q;
  // Frame 0 register value is the reset constant.
  const NetId q0 = instance.frame_map[0][q];
  EXPECT_EQ(instance.circuit.node(q0).op, ir::Op::kConst);
  EXPECT_EQ(instance.circuit.node(q0).imm, 0);
}

TEST(Unroll, OpCountsScaleLinearly) {
  const auto i10 = unroll(counter(), "lt15", 10);
  const auto i20 = unroll(counter(), "lt15", 20);
  const auto c10 = i10.circuit.op_counts();
  const auto c20 = i20.circuit.op_counts();
  EXPECT_GT(c20.arith, c10.arith);
  EXPECT_LE(c20.arith, 2 * c10.arith + 8);  // roughly linear in the bound
}

TEST(Unroll, GoalIsNamed) {
  const auto instance = unroll(counter(), "lt15", 2);
  EXPECT_EQ(instance.circuit.find_net("goal"), instance.goal);
}

}  // namespace
}  // namespace rtlsat::bmc
