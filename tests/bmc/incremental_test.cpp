// Incremental BMC: one growing unrolling + one persistent solver must give
// verdicts interchangeable with fresh-per-frame unroll()+solve(), and SAT
// witnesses must replay on the growing circuit independently of the
// solver.
#include <gtest/gtest.h>

#include "bmc/incremental.h"
#include "bmc/sweep.h"
#include "bmc/unroll.h"
#include "itc99/itc99.h"

namespace rtlsat::bmc {
namespace {

core::HdpllOptions solver_options() {
  core::HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = true;
  options.timeout_seconds = 60;
  return options;
}

core::SolveStatus fresh_verdict(const ir::SeqCircuit& seq,
                                const std::string& property, int bound,
                                bool cumulative) {
  const BmcInstance instance = cumulative ? unroll_any(seq, property, bound)
                                          : unroll(seq, property, bound);
  core::HdpllSolver solver(instance.circuit, solver_options());
  solver.assume_bool(instance.goal, true);
  return solver.solve().status;
}

TEST(IncrementalBmc, MatchesFreshUnrollAcrossBounds) {
  // b01 property 1: UNSAT through bound 9, first counterexample at 10.
  const ir::SeqCircuit seq = itc99::build("b01");
  IncrementalBmc inc(seq, "1", solver_options());
  for (int bound = 1; bound <= 10; ++bound) {
    const core::SolveResult r = inc.solve_bound(bound);
    EXPECT_EQ(r.status, fresh_verdict(seq, "1", bound, /*cumulative=*/false))
        << inc.name(bound);
  }
  EXPECT_FALSE(inc.solver().root_unsat());
}

TEST(IncrementalBmc, SatWitnessReplaysOnGrowingCircuit) {
  const ir::SeqCircuit seq = itc99::build("b01");
  IncrementalBmc inc(seq, "1", solver_options());
  const core::SolveResult r = inc.solve_bound(10);
  ASSERT_EQ(r.status, core::SolveStatus::kSat);
  // Replay independently of the solver: the model must drive the bound-10
  // goal (= ¬P in frame 10) to 1 on the circuit itself.
  const ir::NetId goal = inc.ensure_bound(10);
  const auto values = inc.circuit().evaluate(r.input_model);
  EXPECT_EQ(values[goal], 1);
}

TEST(IncrementalBmc, GrowingCircuitMatchesOneShotFrames) {
  // Frame-for-frame structural equivalence with the one-shot unroller:
  // after ensure_bound(k) the circuit holds exactly unroll(k)'s nets, in
  // the same order with the same per-frame input names.
  const ir::SeqCircuit seq = itc99::build("b02");
  IncrementalBmc inc(seq, "1", solver_options());
  inc.ensure_bound(3);
  const BmcInstance one_shot = unroll(seq, "1", 3);
  ASSERT_EQ(inc.frame_map().size(), one_shot.frame_map.size());
  for (std::size_t f = 0; f < one_shot.frame_map.size(); ++f)
    EXPECT_EQ(inc.frame_map()[f], one_shot.frame_map[f]) << "frame " << f;
  for (ir::NetId id = 0; id < one_shot.circuit.num_nets(); ++id) {
    EXPECT_EQ(inc.circuit().node(id).op, one_shot.circuit.node(id).op)
        << "net " << id;
  }
}

TEST(IncrementalBmc, CumulativeGoalMatchesUnrollAny) {
  const ir::SeqCircuit seq = itc99::build("b01");
  IncrementalBmc inc(seq, "1", solver_options(), /*cumulative=*/true);
  for (int bound = 1; bound <= 11; ++bound) {
    const core::SolveResult r = inc.solve_bound(bound);
    EXPECT_EQ(r.status, fresh_verdict(seq, "1", bound, /*cumulative=*/true))
        << inc.name(bound);
  }
}

TEST(IncrementalBmc, BoundsCanRepeatAndGoBackwards) {
  const ir::SeqCircuit seq = itc99::build("b02");
  IncrementalBmc inc(seq, "1", solver_options());
  const auto s3 = inc.solve_bound(3).status;
  const auto s1 = inc.solve_bound(1).status;
  const auto s3_again = inc.solve_bound(3).status;
  EXPECT_EQ(s1, fresh_verdict(seq, "1", 1, false));
  EXPECT_EQ(s3, fresh_verdict(seq, "1", 3, false));
  EXPECT_EQ(s3_again, s3);
}

TEST(IncrementalSweep, AgreesWithFreshSweep) {
  const ir::SeqCircuit seq = itc99::build("b01");
  SweepOptions fresh;
  fresh.solver = solver_options();
  fresh.incremental = false;
  SweepOptions incremental = fresh;
  incremental.incremental = true;
  const SweepResult a = sweep(seq, "1", 12, fresh);
  const SweepResult b = sweep(seq, "1", 12, incremental);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  EXPECT_EQ(a.first_sat_bound, b.first_sat_bound);
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].status, b.frames[i].status) << a.frames[i].name;
    EXPECT_EQ(a.frames[i].name, b.frames[i].name);
  }
}

TEST(IncrementalSweep, CertifyFallsBackToSelfContainedFrames) {
  // certify + incremental: the sweep must still produce per-frame
  // certificates (the incremental solver cannot), so it falls back.
  const ir::SeqCircuit seq = itc99::build("b02");
  SweepOptions options;
  options.solver = solver_options();
  options.certify = true;
  options.incremental = true;
  const SweepResult result = sweep(seq, "1", 2, options);
  ASSERT_EQ(result.frames.size(), 2u);
  for (const FrameResult& frame : result.frames) {
    EXPECT_TRUE(frame.certified) << frame.name << ": " << frame.cert_error;
    EXPECT_GT(frame.cert_records, 0) << frame.name;
  }
}

TEST(CertPath, DistinctNamesNeverCollide) {
  // The old sanitizer mapped every non-filename character to '_', so
  // "b13_2(4)" and "b13_2[4]" shared one certificate file and the second
  // frame silently overwrote the first.
  const std::string a = cert_path_for_testing("certs", "b13_2(4)");
  const std::string b = cert_path_for_testing("certs", "b13_2[4]");
  EXPECT_NE(a, b);
  // Still filesystem-safe and stable for clean names.
  EXPECT_EQ(cert_path_for_testing("certs", "plain-name_1"),
            "certs/plain-name_1.cert.jsonl");
  for (const std::string& p : {a, b}) {
    for (const char ch : p.substr(6)) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
                  ch == '-' || ch == '.')
          << p;
    }
  }
}

}  // namespace
}  // namespace rtlsat::bmc
