#include "bmc/sim.h"

#include <gtest/gtest.h>

#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "itc99/itc99.h"
#include "util/rng.h"

namespace rtlsat::bmc {
namespace {

using ir::Circuit;
using ir::NetId;

ir::SeqCircuit counter() {
  ir::SeqCircuit seq("cnt");
  Circuit& c = seq.comb();
  const NetId en = c.add_input("en", 1);
  const NetId q = seq.add_register("q", 4, 3);
  seq.bind_next(q, c.add_mux(en, c.add_inc(q), q));
  seq.add_property("low", c.add_lt(q, c.add_const(8, 4)));
  return seq;
}

TEST(Simulator, ResetAndStep) {
  const auto seq = counter();
  const NetId en = seq.free_inputs()[0];
  const NetId q = seq.registers()[0].q;
  Simulator sim(seq);
  EXPECT_EQ(sim.register_value(q), 3);  // reset value
  sim.step({{en, 1}});
  EXPECT_EQ(sim.register_value(q), 4);
  sim.step({{en, 0}});
  EXPECT_EQ(sim.register_value(q), 4);  // hold
  EXPECT_EQ(sim.time(), 2);
  sim.reset();
  EXPECT_EQ(sim.register_value(q), 3);
  EXPECT_EQ(sim.time(), 0);
}

TEST(Simulator, PropertyMonitoring) {
  const auto seq = counter();
  const NetId en = seq.free_inputs()[0];
  Simulator sim(seq);
  for (int t = 0; t < 4; ++t) {
    sim.step({{en, 1}});
    EXPECT_TRUE(sim.property_holds("low")) << "t=" << t;
  }
  sim.step({{en, 1}});  // q was 7 entering this frame; latches 8
  sim.step({{en, 1}});
  EXPECT_FALSE(sim.property_holds("low"));
}

// The load-bearing cross-check: simulation and BMC unrolling must agree on
// every net of every frame for random input sequences, on every benchmark
// circuit.
class SimVsUnroll : public ::testing::TestWithParam<const char*> {};

TEST_P(SimVsUnroll, FramesMatch) {
  const ir::SeqCircuit seq = itc99::build(GetParam());
  const auto& props = seq.properties();
  const BmcInstance instance = unroll(seq, props[0].name, 8);
  Rng rng(static_cast<std::uint64_t>(GetParam()[1]) * 131);

  for (int trial = 0; trial < 5; ++trial) {
    // Random input sequence, applied both to the simulator and (via the
    // per-frame input nets) to the unrolled circuit.
    std::unordered_map<NetId, std::int64_t> unrolled_inputs;
    std::vector<std::unordered_map<NetId, std::int64_t>> frame_inputs(
        instance.bound + 1);
    for (const NetId in : instance.circuit.inputs()) {
      const std::string name = instance.circuit.net_name(in);
      const auto at = name.rfind('@');
      ASSERT_NE(at, std::string::npos) << name;
      const int frame = std::stoi(name.substr(at + 1));
      const NetId seq_net = seq.comb().find_net(name.substr(0, at));
      ASSERT_NE(seq_net, ir::kNoNet) << name;
      const std::int64_t v =
          rng.range(0, instance.circuit.domain(in).hi());
      unrolled_inputs[in] = v;
      frame_inputs[frame][seq_net] = v;
    }
    const auto unrolled_values = instance.circuit.evaluate(unrolled_inputs);

    Simulator sim(seq);
    for (int frame = 0; frame <= instance.bound; ++frame) {
      const auto& sim_values = sim.step(frame_inputs[frame]);
      for (NetId net = 0; net < seq.comb().num_nets(); ++net) {
        const NetId mapped = instance.frame_map[frame][net];
        ASSERT_EQ(sim_values[net], unrolled_values[mapped])
            << GetParam() << " frame " << frame << " net "
            << seq.comb().net_name(net);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, SimVsUnroll,
                         ::testing::Values("b01", "b02", "b03", "b04", "b06", "b10", "b13"));

TEST(Simulator, ReplaysBmcCounterexample) {
  // Solve a SAT BMC instance, then replay the witness through the
  // simulator: the property must fail in the final frame.
  const ir::SeqCircuit seq = itc99::build("b04");
  const BmcInstance instance = unroll(seq, "1", 4);
  core::HdpllOptions options;
  options.structural_decisions = true;
  core::HdpllSolver solver(instance.circuit, options);
  solver.assume_bool(instance.goal, true);
  const core::SolveResult result = solver.solve();
  ASSERT_EQ(result.status, core::SolveStatus::kSat);

  Simulator sim(seq);
  for (int frame = 0; frame <= instance.bound; ++frame) {
    std::unordered_map<NetId, std::int64_t> inputs;
    for (const NetId in : seq.free_inputs()) {
      const std::string name =
          seq.comb().net_name(in) + "@" + std::to_string(frame);
      const NetId unrolled = instance.circuit.find_net(name);
      ASSERT_NE(unrolled, ir::kNoNet);
      inputs[in] = result.input_model.at(unrolled);
    }
    sim.step(inputs);
  }
  EXPECT_FALSE(sim.property_holds("1"));
}

}  // namespace
}  // namespace rtlsat::bmc
