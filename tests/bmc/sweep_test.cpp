// Certifying BMC sweep: every UNSAT frame must come with a word
// certificate the independent checker accepts, and the sweep must stop at
// the first counterexample bound.
#include <gtest/gtest.h>

#include "bmc/sweep.h"
#include "itc99/itc99.h"

namespace rtlsat::bmc {
namespace {

SweepOptions certified_options() {
  SweepOptions options;
  options.solver.structural_decisions = true;
  options.solver.predicate_learning = true;
  options.solver.timeout_seconds = 60;
  options.certify = true;
  return options;
}

TEST(CertifyingSweep, InvariantFramesAllCertified) {
  // b13 property 2 holds: every frame is UNSAT and every frame's
  // certificate verifies.
  const ir::SeqCircuit seq = itc99::build("b13");
  const SweepResult result = sweep(seq, "2", 4, certified_options());
  ASSERT_EQ(result.frames.size(), 4u);
  EXPECT_EQ(result.first_sat_bound, -1);
  for (const FrameResult& frame : result.frames) {
    EXPECT_EQ(frame.status, core::SolveStatus::kUnsat) << frame.name;
    EXPECT_TRUE(frame.certified) << frame.name << ": " << frame.cert_error;
    EXPECT_GT(frame.cert_records, 0) << frame.name;
  }
  EXPECT_TRUE(result.all_certified());
}

TEST(CertifyingSweep, StopsAtCounterexampleBound) {
  // b01 property 1 is violable at depth 10: the nine UNSAT frames below
  // it are certified, and the sweep stops on the SAT frame.
  const ir::SeqCircuit seq = itc99::build("b01");
  const SweepResult result = sweep(seq, "1", 12, certified_options());
  ASSERT_EQ(result.first_sat_bound, 10);
  ASSERT_EQ(result.frames.size(), 10u);
  for (const FrameResult& frame : result.frames) {
    if (frame.bound < 10) {
      EXPECT_EQ(frame.status, core::SolveStatus::kUnsat) << frame.name;
    }
    EXPECT_TRUE(frame.certified) << frame.name << ": " << frame.cert_error;
  }
  EXPECT_EQ(result.frames.back().status, core::SolveStatus::kSat);
}

TEST(CertifyingSweep, CertificatesSavedToDirectory) {
  const ir::SeqCircuit seq = itc99::build("b02");
  SweepOptions options = certified_options();
  options.cert_dir = ::testing::TempDir();
  const SweepResult result = sweep(seq, "1", 2, options);
  ASSERT_EQ(result.frames.size(), 2u);
  EXPECT_TRUE(result.all_certified())
      << result.frames.front().cert_error << " / "
      << result.frames.back().cert_error;
}

TEST(CertifyingSweep, UncertifiedSweepStillSolves) {
  const ir::SeqCircuit seq = itc99::build("b02");
  SweepOptions options;
  options.solver.timeout_seconds = 60;
  const SweepResult result = sweep(seq, "1", 2, options);
  ASSERT_EQ(result.frames.size(), 2u);
  for (const FrameResult& frame : result.frames) {
    EXPECT_FALSE(frame.certified);
    EXPECT_EQ(frame.cert_records, 0);
  }
  EXPECT_TRUE(result.all_certified());  // vacuously: nothing rejected
}

// A saturating counter whose property "1" (q <= 10) holds by intervals
// alone: presolve decides every frame without touching the solver, and the
// register's reach invariant ⟨0,10⟩ is a strict subset of its domain.
ir::SeqCircuit saturating_counter() {
  ir::SeqCircuit seq("satctr");
  const ir::NetId q = seq.add_register("x", 4, 0);
  ir::Circuit& c = seq.comb();
  const ir::NetId step = c.add_zext(c.add_input("i", 1), 4);
  seq.bind_next(q, c.add_min_raw(c.add_add(q, step), c.add_const(10, 4)));
  seq.add_property("1", c.add_le(q, c.add_const(10, 4)));
  return seq;
}

TEST(PresolveSweep, FreshPathAgreesWithPlainSweep) {
  // b01 property 1: nine UNSAT frames then SAT at 10. Presolve must not
  // change any verdict or the first counterexample bound.
  const ir::SeqCircuit seq = itc99::build("b01");
  SweepOptions plain;
  plain.solver.timeout_seconds = 60;
  plain.incremental = false;
  SweepOptions pre = plain;
  pre.presolve = true;
  const SweepResult a = sweep(seq, "1", 12, plain);
  const SweepResult b = sweep(seq, "1", 12, pre);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  EXPECT_EQ(a.first_sat_bound, b.first_sat_bound);
  for (std::size_t i = 0; i < a.frames.size(); ++i)
    EXPECT_EQ(a.frames[i].status, b.frames[i].status) << a.frames[i].name;
}

TEST(PresolveSweep, DecidedFramesSkipTheSolver) {
  const ir::SeqCircuit seq = saturating_counter();
  SweepOptions options;
  options.solver.timeout_seconds = 60;
  options.incremental = false;
  options.presolve = true;
  const SweepResult result = sweep(seq, "1", 5, options);
  ASSERT_EQ(result.frames.size(), 5u);
  for (const FrameResult& frame : result.frames)
    EXPECT_EQ(frame.status, core::SolveStatus::kUnsat) << frame.name;
  EXPECT_EQ(result.stats.get("presolve.decided_frames"), 5);
}

TEST(PresolveSweep, IncrementalPathAssumesReachInvariants) {
  const ir::SeqCircuit seq = saturating_counter();
  SweepOptions plain;
  plain.solver.timeout_seconds = 60;
  plain.incremental = true;
  SweepOptions pre = plain;
  pre.presolve = true;
  const SweepResult a = sweep(seq, "1", 4, plain);
  const SweepResult b = sweep(seq, "1", 4, pre);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t i = 0; i < a.frames.size(); ++i)
    EXPECT_EQ(a.frames[i].status, b.frames[i].status) << a.frames[i].name;
  // Frame 0's state net is the constant init, so frames 1..4 each assume
  // the one register's ⟨0,10⟩ invariant.
  EXPECT_EQ(b.stats.get("presolve.invariants_assumed"), 4);
}

TEST(PresolveSweep, IncrementalPresolveKeepsSatVerdicts) {
  // Invariant assumptions must never turn a reachable counterexample UNSAT.
  const ir::SeqCircuit seq = itc99::build("b01");
  SweepOptions options;
  options.solver.timeout_seconds = 60;
  options.incremental = true;
  options.presolve = true;
  const SweepResult result = sweep(seq, "1", 12, options);
  EXPECT_EQ(result.first_sat_bound, 10);
}

TEST(PresolveSweep, CertifyIgnoresPresolve) {
  // Certificates must reference the original instance, so certify wins.
  const ir::SeqCircuit seq = itc99::build("b02");
  SweepOptions options = certified_options();
  options.presolve = true;
  const SweepResult result = sweep(seq, "1", 2, options);
  ASSERT_EQ(result.frames.size(), 2u);
  EXPECT_TRUE(result.all_certified());
  EXPECT_EQ(result.stats.get("presolve.decided_frames"), 0);
  for (const FrameResult& frame : result.frames)
    EXPECT_GT(frame.cert_records, 0) << frame.name;
}

}  // namespace
}  // namespace rtlsat::bmc
