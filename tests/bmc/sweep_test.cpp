// Certifying BMC sweep: every UNSAT frame must come with a word
// certificate the independent checker accepts, and the sweep must stop at
// the first counterexample bound.
#include <gtest/gtest.h>

#include "bmc/sweep.h"
#include "itc99/itc99.h"

namespace rtlsat::bmc {
namespace {

SweepOptions certified_options() {
  SweepOptions options;
  options.solver.structural_decisions = true;
  options.solver.predicate_learning = true;
  options.solver.timeout_seconds = 60;
  options.certify = true;
  return options;
}

TEST(CertifyingSweep, InvariantFramesAllCertified) {
  // b13 property 2 holds: every frame is UNSAT and every frame's
  // certificate verifies.
  const ir::SeqCircuit seq = itc99::build("b13");
  const SweepResult result = sweep(seq, "2", 4, certified_options());
  ASSERT_EQ(result.frames.size(), 4u);
  EXPECT_EQ(result.first_sat_bound, -1);
  for (const FrameResult& frame : result.frames) {
    EXPECT_EQ(frame.status, core::SolveStatus::kUnsat) << frame.name;
    EXPECT_TRUE(frame.certified) << frame.name << ": " << frame.cert_error;
    EXPECT_GT(frame.cert_records, 0) << frame.name;
  }
  EXPECT_TRUE(result.all_certified());
}

TEST(CertifyingSweep, StopsAtCounterexampleBound) {
  // b01 property 1 is violable at depth 10: the nine UNSAT frames below
  // it are certified, and the sweep stops on the SAT frame.
  const ir::SeqCircuit seq = itc99::build("b01");
  const SweepResult result = sweep(seq, "1", 12, certified_options());
  ASSERT_EQ(result.first_sat_bound, 10);
  ASSERT_EQ(result.frames.size(), 10u);
  for (const FrameResult& frame : result.frames) {
    if (frame.bound < 10) {
      EXPECT_EQ(frame.status, core::SolveStatus::kUnsat) << frame.name;
    }
    EXPECT_TRUE(frame.certified) << frame.name << ": " << frame.cert_error;
  }
  EXPECT_EQ(result.frames.back().status, core::SolveStatus::kSat);
}

TEST(CertifyingSweep, CertificatesSavedToDirectory) {
  const ir::SeqCircuit seq = itc99::build("b02");
  SweepOptions options = certified_options();
  options.cert_dir = ::testing::TempDir();
  const SweepResult result = sweep(seq, "1", 2, options);
  ASSERT_EQ(result.frames.size(), 2u);
  EXPECT_TRUE(result.all_certified())
      << result.frames.front().cert_error << " / "
      << result.frames.back().cert_error;
}

TEST(CertifyingSweep, UncertifiedSweepStillSolves) {
  const ir::SeqCircuit seq = itc99::build("b02");
  SweepOptions options;
  options.solver.timeout_seconds = 60;
  const SweepResult result = sweep(seq, "1", 2, options);
  ASSERT_EQ(result.frames.size(), 2u);
  for (const FrameResult& frame : result.frames) {
    EXPECT_FALSE(frame.certified);
    EXPECT_EQ(frame.cert_records, 0);
  }
  EXPECT_TRUE(result.all_certified());  // vacuously: nothing rejected
}

}  // namespace
}  // namespace rtlsat::bmc
