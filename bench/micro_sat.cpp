// Microbenchmarks for the CDCL core and the bit-blast translation, the
// baseline path of the Table 2 comparison.
#include <benchmark/benchmark.h>

#include "bitblast/bitblast.h"
#include "bmc/unroll.h"
#include "itc99/itc99.h"

using namespace rtlsat;

namespace {

void BM_PigeonHole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  const int pigeons = holes + 1;
  for (auto _ : state) {
    sat::Solver s;
    std::vector<std::vector<sat::Var>> p(pigeons, std::vector<sat::Var>(holes));
    for (auto& row : p)
      for (auto& v : row) v = s.new_var();
    for (auto& row : p) {
      std::vector<sat::Lit> clause;
      for (auto v : row) clause.push_back(sat::Lit(v, true));
      s.add_clause(clause);
    }
    for (int h = 0; h < holes; ++h)
      for (int i = 0; i < pigeons; ++i)
        for (int j = i + 1; j < pigeons; ++j)
          s.add_clause({sat::Lit(p[i][h], false), sat::Lit(p[j][h], false)});
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_PigeonHole)->Arg(4)->Arg(5)->Arg(6);

void BM_BitblastEncode(benchmark::State& state) {
  const auto seq = itc99::build("b13");
  const auto instance = bmc::unroll(seq, "1", static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sat::Solver solver;
    bitblast::BitBlaster blaster(instance.circuit, solver);
    benchmark::DoNotOptimize(blaster.bit(instance.goal, 0));
  }
}
BENCHMARK(BM_BitblastEncode)->Arg(5)->Arg(20);

void BM_BitblastSolveBmc(benchmark::State& state) {
  const auto seq = itc99::build("b01");
  const auto instance = bmc::unroll(seq, "2", static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bitblast::check_sat(instance.circuit, instance.goal));
  }
}
BENCHMARK(BM_BitblastSolveBmc)->Arg(5)->Arg(15);

}  // namespace

BENCHMARK_MAIN();
