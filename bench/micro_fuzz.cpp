// Microbenchmarks for the differential-fuzzing subsystem: instance
// generation throughput, oracle latency on small instances, and reducer
// cost per accepted shrink. These bound how many instances a CI
// fuzz-smoke second buys (docs/fuzzing.md).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "fuzz/generator.h"
#include "fuzz/op_fuzz.h"
#include "fuzz/oracle.h"
#include "fuzz/reduce.h"
#include "ir/circuit.h"
#include "util/rng.h"

using namespace rtlsat;

namespace {

void BM_FuzzGenerate(benchmark::State& state) {
  Rng rng(7);
  fuzz::GeneratorOptions options;
  options.max_width = static_cast<int>(state.range(0));
  std::int64_t nets = 0;
  for (auto _ : state) {
    auto instance = fuzz::generate(rng, options);
    nets += static_cast<std::int64_t>(instance.circuit.num_nets());
    benchmark::DoNotOptimize(instance.goal);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["nets/instance"] =
      benchmark::Counter(static_cast<double>(nets) /
                         static_cast<double>(state.iterations()));
}
BENCHMARK(BM_FuzzGenerate)->Arg(12)->Arg(60);

void BM_FuzzGenerateSequential(benchmark::State& state) {
  Rng rng(11);
  fuzz::GeneratorOptions options;
  options.sequential_percent = 100;
  for (auto _ : state) {
    auto instance = fuzz::generate(rng, options);
    benchmark::DoNotOptimize(instance.goal);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FuzzGenerateSequential);

// Full engine matrix on one small fixed instance — the per-instance cost
// floor of the differential loop. Portfolio off: its thread setup would
// dominate and is measured in micro_portfolio.
void BM_FuzzOracleSmallInstance(benchmark::State& state) {
  Rng rng(3);
  fuzz::GeneratorOptions gopts;
  gopts.max_width = 6;
  gopts.max_steps = 12;
  const auto instance = fuzz::generate(rng, gopts);
  fuzz::OracleOptions oopts;
  oopts.run_portfolio = false;
  for (auto _ : state) {
    auto report = fuzz::run_oracle(instance.circuit, instance.goal, oopts);
    benchmark::DoNotOptimize(report.consensus);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FuzzOracleSmallInstance)->Unit(benchmark::kMillisecond);

// Reducer on a synthetic noisy instance with a cheap structural predicate,
// isolating shrink machinery (rebuilds, round-trips) from oracle cost.
void BM_FuzzReduce(benchmark::State& state) {
  Rng rng(5);
  fuzz::GeneratorOptions gopts;
  gopts.min_steps = 24;
  gopts.max_steps = 36;
  const auto instance = fuzz::generate(rng, gopts);
  const auto interesting = [](const ir::Circuit& c, ir::NetId goal) {
    (void)goal;
    for (ir::NetId id = 0; id < c.num_nets(); ++id) {
      if (c.node(id).op == ir::Op::kMux) return true;
    }
    return false;
  };
  if (!interesting(instance.circuit, instance.goal)) {
    state.SkipWithError("generated instance has no mux; change the seed");
    return;
  }
  for (auto _ : state) {
    auto result = fuzz::reduce(instance.circuit, instance.goal, interesting);
    benchmark::DoNotOptimize(result.final_nodes);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FuzzReduce)->Unit(benchmark::kMillisecond);

void BM_FuzzIntervalOps(benchmark::State& state) {
  Rng rng(9);
  for (auto _ : state) {
    auto violations = fuzz::fuzz_interval_ops(rng, 100);
    benchmark::DoNotOptimize(violations.size());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FuzzIntervalOps);

void BM_FuzzFme(benchmark::State& state) {
  Rng rng(13);
  for (auto _ : state) {
    auto violations = fuzz::fuzz_fme(rng, 10);
    benchmark::DoNotOptimize(violations.size());
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_FuzzFme);

}  // namespace

BENCHMARK_MAIN();
