// Diffs two bench trajectory files (bench/trajectory_runner.cpp) and exits
// nonzero on a regression — the CI perf gate.
//
//   $ ./bench_compare baseline.json current.json
//   $ ./bench_compare --max-ratio 2.0 --min-seconds 0.01 baseline.json new.json
//   $ ./bench_compare --force a.json b.json   # ignore fingerprint mismatch
//   $ ./bench_compare --self-test             # exercise the gate itself
//
// Exit codes: 0 = ok (or skipped: fingerprints differ and --force not
// given), 1 = regression, 2 = usage or unreadable/invalid input.
//
// --self-test builds a synthetic trajectory, checks that comparing it with
// itself passes and that a 2x-slowed copy is flagged — run by CI before the
// real comparison so a silently broken gate cannot go green.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "metrics/trajectory.h"

using namespace rtlsat;

namespace {

bool load_trajectory(const std::string& path, metrics::Trajectory* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!metrics::trajectory_from_json(buffer.str(), out, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

metrics::Trajectory synthetic_trajectory() {
  metrics::Trajectory t;
  t.utc_date = "20260101";
  t.git_sha = "selftest";
  t.fingerprint.host = "selftest";
  t.fingerprint.cpu = "selftest-cpu";
  t.fingerprint.threads = 8;
  const char* names[] = {"alpha", "beta", "gamma"};
  double base = 0.02;
  for (const char* name : names) {
    metrics::BenchResult b;
    b.name = name;
    b.repeats = 3;
    b.median_s = base;
    b.min_s = base * 0.9;
    b.max_s = base * 1.2;
    b.counters["solver.conflicts"] = 1000;
    t.benches.push_back(b);
    base *= 3;
  }
  return t;
}

// The gate must pass identical inputs and flag a synthetic 2x slowdown
// (both through the JSON round-trip, so the serializer is covered too).
int self_test() {
  const metrics::Trajectory base = synthetic_trajectory();
  metrics::Trajectory slowed;
  std::string error;
  if (!metrics::trajectory_from_json(metrics::trajectory_to_json(base),
                                     &slowed, &error)) {
    std::fprintf(stderr, "self-test: round-trip failed: %s\n", error.c_str());
    return 1;
  }
  const metrics::CompareOptions options;
  const metrics::CompareReport same =
      metrics::compare_trajectories(base, slowed, options);
  if (same.status != metrics::CompareReport::Status::kOk) {
    std::fprintf(stderr, "self-test: identical trajectories did not pass\n");
    return 1;
  }
  for (metrics::BenchResult& b : slowed.benches) {
    b.median_s *= 2;
    b.min_s *= 2;
    b.max_s *= 2;
  }
  const metrics::CompareReport slow =
      metrics::compare_trajectories(base, slowed, options);
  if (slow.status != metrics::CompareReport::Status::kRegression ||
      slow.regressions.empty()) {
    std::fprintf(stderr, "self-test: 2x slowdown was not flagged\n");
    return 1;
  }
  std::printf("self-test ok: identical pass, 2x slowdown flagged (%zu/%zu)\n",
              slow.regressions.size(), slowed.benches.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  metrics::CompareOptions options;
  std::string baseline_path, current_path;
  double min_bmc_speedup = 1.5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-test") == 0) {
      return self_test();
    } else if (std::strcmp(argv[i], "--max-ratio") == 0 && i + 1 < argc) {
      options.max_ratio = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-seconds") == 0 && i + 1 < argc) {
      options.min_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-bmc-speedup") == 0 &&
               i + 1 < argc) {
      min_bmc_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--force") == 0) {
      options.force = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = argv[i];
    } else if (current_path.empty()) {
      current_path = argv[i];
    } else {
      std::fprintf(stderr, "too many arguments\n");
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--max-ratio R] [--min-seconds S] "
                 "[--min-bmc-speedup X] [--force] "
                 "<baseline.json> <current.json>\n       %s --self-test\n",
                 argv[0], argv[0]);
    return 2;
  }

  metrics::Trajectory baseline, current;
  if (!load_trajectory(baseline_path, &baseline) ||
      !load_trajectory(current_path, &current)) {
    return 2;
  }

  // Absolute gate, independent of the baseline (it is a ratio of two runs
  // inside one trajectory, so machine fingerprints don't matter): the
  // bmc.incremental workload publishes 100 * fresh / incremental sweep
  // wall time as bmc.speedup_pct, and the incremental path must stay at
  // least --min-bmc-speedup (default 1.5x) ahead — plus verdict-for-
  // verdict agreement, counted by the workload itself.
  for (const metrics::BenchResult& b : current.benches) {
    const auto speedup = b.counters.find("bmc.speedup_pct");
    if (speedup == b.counters.end()) continue;
    if (static_cast<double>(speedup->second) < min_bmc_speedup * 100) {
      std::fprintf(stderr,
                   "REGRESSION: %s incremental-vs-fresh speedup x%.2f is "
                   "below the x%.2f floor\n",
                   b.name.c_str(),
                   static_cast<double>(speedup->second) / 100.0,
                   min_bmc_speedup);
      return 1;
    }
    const auto agree = b.counters.find("bmc.verdicts_agree");
    if (agree != b.counters.end() && agree->second != 1) {
      std::fprintf(stderr,
                   "REGRESSION: %s incremental and fresh sweeps disagree\n",
                   b.name.c_str());
      return 1;
    }
    std::printf("%-28s incremental-vs-fresh x%.2f (floor x%.2f)\n",
                b.name.c_str(), static_cast<double>(speedup->second) / 100.0,
                min_bmc_speedup);
  }

  // Presolve soundness gate, also absolute: the presolve.table1 workload
  // cross-checks the presolve lane's verdict against the direct solver on
  // every instance and publishes the conjunction. Any disagreement is an
  // unsoundness, never a perf tradeoff, so it fails the gate outright.
  for (const metrics::BenchResult& b : current.benches) {
    const auto agree = b.counters.find("presolve.verdicts_agree");
    if (agree == b.counters.end()) continue;
    if (agree->second != 1) {
      std::fprintf(stderr,
                   "REGRESSION: %s presolved and direct verdicts disagree\n",
                   b.name.c_str());
      return 1;
    }
    std::printf("%-28s presolve verdicts agree\n", b.name.c_str());
  }

  const metrics::CompareReport report =
      metrics::compare_trajectories(baseline, current, options);
  for (const std::string& line : report.lines)
    std::printf("%s\n", line.c_str());
  switch (report.status) {
    case metrics::CompareReport::Status::kOk:
      std::printf("ok: no regressions (threshold x%.2f)\n", options.max_ratio);
      return 0;
    case metrics::CompareReport::Status::kSkipped:
      std::printf(
          "skipped: machine fingerprints differ (%s/%d threads vs %s/%d "
          "threads); use --force to compare anyway\n",
          baseline.fingerprint.cpu.c_str(), baseline.fingerprint.threads,
          current.fingerprint.cpu.c_str(), current.fingerprint.threads);
      return 0;
    case metrics::CompareReport::Status::kRegression:
      std::fprintf(stderr, "REGRESSION: %zu bench(es) above x%.2f:\n",
                   report.regressions.size(), options.max_ratio);
      for (const std::string& line : report.regressions)
        std::fprintf(stderr, "  %s\n", line.c_str());
      return 1;
  }
  return 2;
}
