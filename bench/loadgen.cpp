// Load generator for rtlsat-serve (docs/serve.md "Load generation").
//
// Drives N concurrent client connections against a server — an in-process
// one by default, or an external daemon via --port — and reports p50/p99
// request latency and jobs/sec for three workloads:
//
//   cold   every request solved fresh (cache bypassed via cache:false)
//   warm   one priming solve, then every request is a structural cache hit
//   mixed  round-robin over K distinct instances with the cache on — the
//          first touch of each instance misses, the rest hit
//
// The warm/cold p50 ratio is the headline number for the result cache; the
// serve-smoke CI job runs `--check-speedup 10` and fails the build when a
// warm hit is not at least 10x faster than a cold solve.
//
//   $ ./loadgen [--port P] [--clients N] [--requests M] [--instances K]
//               [--bound B] [--workers W] [--jobs J] [--json PATH]
//               [--check-speedup X] [--workload cold|warm|mixed|all]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bmc/unroll.h"
#include "itc99/itc99.h"
#include "parser/rtl_format.h"
#include "serve/client.h"
#include "serve/server.h"
#include "trace/json.h"
#include "util/timer.h"

using namespace rtlsat;

namespace {

struct Args {
  int port = 0;          // 0 = spawn an in-process server
  int clients = 4;
  int requests = 8;      // per client, per workload
  int instances = 4;     // distinct instances for the mixed workload
  int bound = 6;         // BMC unroll depth of the generated instances
  int workers = 2;       // in-process server: solve workers
  int jobs = 2;          // portfolio width per job
  std::string json_path;
  double check_speedup = 0;  // 0 = no gate
  std::string workload = "all";
};

struct Instance {
  std::string rtl;
  std::string goal;
};

struct WorkloadReport {
  std::string name;
  int clients = 0;
  int requests = 0;  // total across clients
  int ok = 0;
  int errors = 0;
  int cache_hits = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
  double jobs_per_second = 0;
};

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

// K distinct BMC instances: the same ITC'99 model at different bounds, so
// the cones differ structurally and never collide in the cache.
std::vector<Instance> make_instances(int count, int base_bound) {
  std::vector<Instance> out;
  const ir::SeqCircuit seq = itc99::build_b01();
  for (int i = 0; i < count; ++i) {
    bmc::BmcInstance bmc = bmc::unroll(seq, "1", base_bound + i);
    // The unroller's display name ("b01_1(6)") is not an .rtl token; give
    // the serialized circuit a parseable one.
    bmc.circuit.set_name("b01_1_k" + std::to_string(base_bound + i));
    Instance inst;
    inst.rtl = parser::write_circuit(bmc.circuit);
    inst.goal = bmc.circuit.net_name(bmc.goal);
    out.push_back(std::move(inst));
  }
  return out;
}

WorkloadReport run_workload(const Args& args, int port,
                            const std::string& name,
                            const std::vector<Instance>& instances,
                            bool use_cache) {
  WorkloadReport report;
  report.name = name;
  report.clients = args.clients;

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(args.clients));
  std::vector<int> oks(static_cast<std::size_t>(args.clients), 0);
  std::vector<int> errors(static_cast<std::size_t>(args.clients), 0);
  std::vector<int> hits(static_cast<std::size_t>(args.clients), 0);

  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(args.clients));
  for (int c = 0; c < args.clients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client;
      std::string error;
      if (!client.connect("127.0.0.1", port, &error)) {
        errors[static_cast<std::size_t>(c)] = args.requests;
        return;
      }
      for (int r = 0; r < args.requests; ++r) {
        // Interleave clients across instances so concurrent identical
        // queries happen (the dequeue-time cache recheck's territory).
        const Instance& inst =
            instances[static_cast<std::size_t>(c + r) % instances.size()];
        serve::SolveRequest request;
        request.rtl = inst.rtl;
        request.goal = inst.goal;
        request.use_cache = use_cache;
        request.jobs = args.jobs;
        serve::ResultMsg result;
        Timer latency;
        if (!client.solve(request, &result, &error)) {
          ++errors[static_cast<std::size_t>(c)];
          if (!client.connected() &&
              !client.connect("127.0.0.1", port, &error)) {
            errors[static_cast<std::size_t>(c)] += args.requests - r - 1;
            return;
          }
          continue;
        }
        latencies[static_cast<std::size_t>(c)].push_back(latency.seconds() *
                                                         1e3);
        ++oks[static_cast<std::size_t>(c)];
        if (result.cache_hit) ++hits[static_cast<std::size_t>(c)];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_seconds = wall.seconds();

  std::vector<double> all;
  for (int c = 0; c < args.clients; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    all.insert(all.end(), latencies[ci].begin(), latencies[ci].end());
    report.ok += oks[ci];
    report.errors += errors[ci];
    report.cache_hits += hits[ci];
  }
  report.requests = args.clients * args.requests;
  std::sort(all.begin(), all.end());
  report.p50_ms = percentile(all, 0.5);
  report.p99_ms = percentile(all, 0.99);
  double sum = 0;
  for (const double ms : all) sum += ms;
  report.mean_ms = all.empty() ? 0 : sum / static_cast<double>(all.size());
  report.jobs_per_second =
      wall_seconds > 0 ? static_cast<double>(report.ok) / wall_seconds : 0;
  return report;
}

void print_report(const WorkloadReport& r) {
  std::printf("%-6s clients=%d requests=%d ok=%d errors=%d hits=%d  "
              "p50=%.3fms p99=%.3fms mean=%.3fms  %.1f jobs/s\n",
              r.name.c_str(), r.clients, r.requests, r.ok, r.errors,
              r.cache_hits, r.p50_ms, r.p99_ms, r.mean_ms,
              r.jobs_per_second);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  const auto next_arg = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs a value\n", argv[*i]);
      std::exit(2);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--port") == 0) args.port = std::atoi(next_arg(&i));
    else if (std::strcmp(arg, "--clients") == 0) args.clients = std::atoi(next_arg(&i));
    else if (std::strcmp(arg, "--requests") == 0) args.requests = std::atoi(next_arg(&i));
    else if (std::strcmp(arg, "--instances") == 0) args.instances = std::atoi(next_arg(&i));
    else if (std::strcmp(arg, "--bound") == 0) args.bound = std::atoi(next_arg(&i));
    else if (std::strcmp(arg, "--workers") == 0) args.workers = std::atoi(next_arg(&i));
    else if (std::strcmp(arg, "--jobs") == 0) args.jobs = std::atoi(next_arg(&i));
    else if (std::strcmp(arg, "--json") == 0) args.json_path = next_arg(&i);
    else if (std::strcmp(arg, "--check-speedup") == 0) args.check_speedup = std::atof(next_arg(&i));
    else if (std::strcmp(arg, "--workload") == 0) args.workload = next_arg(&i);
    else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg);
      return 2;
    }
  }

  const std::vector<Instance> instances =
      make_instances(std::max(args.instances, 1), args.bound);
  const std::vector<Instance> single(instances.begin(),
                                     instances.begin() + 1);

  std::unique_ptr<serve::Server> server;
  int port = args.port;
  if (port == 0) {
    serve::ServerOptions options;
    options.solve_workers = args.workers;
    options.solve_jobs = args.jobs;
    server = std::make_unique<serve::Server>(options);
    std::string error;
    if (!server->start(&error)) {
      std::fprintf(stderr, "error: cannot start server: %s\n", error.c_str());
      return 1;
    }
    port = server->port();
    std::printf("in-process server on port %d (%d workers)\n", port,
                args.workers);
  }

  const bool all = args.workload == "all";
  std::vector<WorkloadReport> reports;
  double cold_p50 = 0;
  double warm_p50 = 0;
  if (all || args.workload == "cold") {
    reports.push_back(run_workload(args, port, "cold", single, false));
    cold_p50 = reports.back().p50_ms;
    print_report(reports.back());
  }
  if (all || args.workload == "warm") {
    // Prime the cache once so every timed request can hit.
    serve::Client primer;
    std::string error;
    serve::ResultMsg primed;
    serve::SolveRequest prime;
    prime.rtl = single[0].rtl;
    prime.goal = single[0].goal;
    if (!primer.connect("127.0.0.1", port, &error) ||
        !primer.solve(prime, &primed, &error)) {
      std::fprintf(stderr, "error: warm priming failed: %s\n", error.c_str());
      return 1;
    }
    reports.push_back(run_workload(args, port, "warm", single, true));
    warm_p50 = reports.back().p50_ms;
    print_report(reports.back());
  }
  if (all || args.workload == "mixed") {
    reports.push_back(run_workload(args, port, "mixed", instances, true));
    print_report(reports.back());
  }

  double speedup = 0;
  if (cold_p50 > 0 && warm_p50 > 0) {
    speedup = cold_p50 / warm_p50;
    std::printf("warm speedup: %.1fx (cold p50 %.3fms / warm p50 %.3fms)\n",
                speedup, cold_p50, warm_p50);
  }

  int total_errors = 0;
  for (const WorkloadReport& r : reports) total_errors += r.errors;

  if (!args.json_path.empty()) {
    trace::JsonWriter w;
    w.begin_object();
    w.key("bench").value("loadgen");
    w.key("workloads").begin_array();
    for (const WorkloadReport& r : reports) {
      w.begin_object();
      w.key("workload").value(r.name);
      w.key("clients").value(r.clients);
      w.key("requests").value(r.requests);
      w.key("ok").value(r.ok);
      w.key("errors").value(r.errors);
      w.key("cache_hits").value(r.cache_hits);
      w.key("p50_ms").value(r.p50_ms);
      w.key("p99_ms").value(r.p99_ms);
      w.key("mean_ms").value(r.mean_ms);
      w.key("jobs_per_s").value(r.jobs_per_second);
      w.end_object();
    }
    w.end_array();
    w.key("warm_speedup").value(speedup);
    w.end_object();
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.json_path.c_str());
      return 1;
    }
    std::fputs(w.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }

  if (server != nullptr) {
    server->drain();
    server->wait();
  }
  if (total_errors > 0) {
    std::fprintf(stderr, "FAIL: %d request errors\n", total_errors);
    return 1;
  }
  if (args.check_speedup > 0 && speedup < args.check_speedup) {
    std::fprintf(stderr, "FAIL: warm speedup %.1fx below the %.1fx gate\n",
                 speedup, args.check_speedup);
    return 1;
  }
  return 0;
}
