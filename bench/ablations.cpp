// Ablation benches for the design choices DESIGN.md calls out:
//   1. hybrid word literals in learned clauses vs Boolean-only resolution,
//   2. learning-threshold sweep (the §3.1 cost/benefit trade-off),
//   3. decision heuristic variants (activity vs random — §5.1's
//      "randomized decision strategy" observation),
//   4. word-relation learning on/off inside predicate learning.
#include <cstring>
#include <vector>

#include "bench_common.h"

using namespace rtlsat;
using namespace rtlsat::bench;

namespace {

BenchJson* g_json = nullptr;

void run_and_print(const char* label, const bmc::BmcInstance& instance,
                   const core::HdpllOptions& options) {
  const RunResult r = run_hdpll(instance, options);
  if (g_json != nullptr) g_json->add_row(instance.name, label, r);
  std::printf("  %-34s %c %9s\n", label, r.verdict, cell(r).c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  const bool full = args.full;
  const double timeout = args.smoke ? 10 : full ? 600 : 60;
  const int bound = args.smoke ? 15 : full ? 100 : 40;
  BenchJson json("ablations", args.json_path);
  g_json = &json;

  const ir::SeqCircuit b13 = itc99::build("b13");

  {
    std::printf("Ablation 1 — hybrid word literals in conflict clauses "
                "(b13_1(%d))\n", bound);
    const auto instance = bmc::unroll(b13, "1", bound);
    auto options = make_options(Config::kStructural, timeout, 0);
    run_and_print("hybrid clauses (paper)", instance, options);
    options.analyze.hybrid_word_literals = false;
    run_and_print("boolean-only clauses", instance, options);
  }

  {
    std::printf("\nAblation 2 — learning threshold sweep (b13_5(%d))\n",
                bound);
    const auto instance = bmc::unroll(b13, "5", bound);
    for (const int threshold : {0, 50, 250, 1000, 2500}) {
      auto options = make_options(Config::kStructuralPred, timeout, threshold);
      if (threshold == 0) options.predicate_learning = false;
      const RunResult r = run_hdpll(instance, options);
      json.add_row(instance.name, str_format("threshold_%d", threshold), r);
      std::printf("  threshold %-5d rels=%-5d learn=%6.2fs solve %c %9s\n",
                  threshold, r.learning.relations_learned, r.learning.seconds,
                  r.verdict, cell(r).c_str());
      std::fflush(stdout);
    }
  }

  {
    std::printf("\nAblation 3 — decision heuristics (b13_3(%d), the §5.1 "
                "anomaly family)\n", bound);
    const auto instance = bmc::unroll(b13, "3", bound);
    run_and_print("activity (paper base)", instance,
                  make_options(Config::kHdpll, timeout, 0));
    run_and_print("structural (+S)", instance,
                  make_options(Config::kStructural, timeout, 0));
    run_and_print("structural+learning (+S+P)", instance,
                  make_options(Config::kStructuralPred, timeout, 2000));
    auto random_options = make_options(Config::kHdpll, timeout, 0);
    random_options.random_decisions = true;
    run_and_print("randomized", instance, random_options);
  }

  {
    std::printf("\nAblation 4 — Luby restarts (b13_5(%d))\n", bound);
    const auto instance = bmc::unroll(b13, "5", bound);
    for (const int interval : {0, 32, 128, 512}) {
      auto options = make_options(Config::kHdpll, timeout, 0);
      options.restart_interval = interval;
      const RunResult r = run_hdpll(instance, options);
      json.add_row(instance.name, str_format("restart_%d", interval), r);
      std::printf("  restart interval %-5d %c %9s\n", interval, r.verdict,
                  cell(r).c_str());
      std::fflush(stdout);
    }
  }

  {
    std::printf("\nAblation 5 — word relations in predicate learning "
                "(b13_5(%d))\n", bound);
    const auto instance = bmc::unroll(b13, "5", bound);
    auto options = make_options(Config::kStructuralPred, timeout, 2000);
    run_and_print("boolean+word relations (paper)", instance, options);
    options.learning.learn_word_relations = false;
    run_and_print("boolean relations only", instance, options);
  }

  {
    std::printf("\nAblation 6 — word-domain split probing (b13_1(%d); "
                "extension along the paper's future-work direction)\n",
                bound);
    const auto instance = bmc::unroll(b13, "1", bound);
    auto options = make_options(Config::kStructuralPred, timeout, 2000);
    run_and_print("boolean probing only (paper)", instance, options);
    options.learning.word_probing = true;
    run_and_print("+ word-domain probing", instance, options);
  }
  return 0;
}
