// Reproduces paper Table 2: "Run-Time Analysis of Structural Decision
// Strategy" — HDPLL / HDPLL+S / HDPLL+S+P against two structure-blind
// stand-ins for the paper's UCLID and ICS columns (see DESIGN.md §2):
// bit-blast+CDCL and a chronological (no-learning) hybrid DPLL.
//
// Also prints the per-instance arith/bool operator counts (paper columns 3
// and 4) and the data-path implication counters that explain the §5.1
// b13_3 anomaly.
//
//   $ ./table2_structural           # scaled bound list
//   $ ./table2_structural --full    # the paper's 32-row bound list
//   $ ./table2_structural --jobs 4  # add a parallel-portfolio column
//     (--no-share disables its predicate-clause sharing)
//   $ ./table2_structural --metrics ts.jsonl   # live telemetry time series
#include <cstring>
#include <vector>

#include "bench_common.h"

using namespace rtlsat;
using namespace rtlsat::bench;

namespace {

struct Row {
  const char* circuit;
  const char* property;
  int bound;
  // Paper columns (seconds; negative = -to-; <-1e8 = aborted/absent).
  double paper_hdpll;
  double paper_s;
  double paper_sp;
};

constexpr double kTo = -1;  // the paper's 1200 s timeout marker

const std::vector<Row> kFullRows = {
    {"b01", "1", 50, 1.75, 1.46, 1.36},
    {"b01", "1", 100, 7.59, 10.36, 1.96},
    {"b02", "1", 50, 4.31, 3.51, 1.47},
    {"b02", "1", 100, 7.57, 3.8, 3.46},
    {"b04", "1", 50, 0.64, 0.06, 0.06},
    {"b04", "1", 100, 112.78, 0.34, 0.32},
    {"b13", "40", 13, 0.04, 0.02, 0.02},
    {"b13", "1", 50, 5.04, 0.34, 0.31},
    {"b13", "2", 50, 0.67, 1.13, 0.67},
    {"b13", "3", 50, 0.44, 0.05, 0.05},
    {"b13", "5", 50, 3.74, 2.19, 0.17},
    {"b13", "8", 50, 0.08, 0.35, 0.35},
    {"b13", "1", 100, 86.54, 0.73, 0.72},
    {"b13", "2", 100, 4.41, 4.29, 4.19},
    {"b13", "3", 100, 0.09, 1.94, 0.09},
    {"b13", "5", 100, 113.67, 52.96, 0.48},
    {"b13", "8", 100, 0.08, 0.36, 0.49},
    {"b13", "1", 200, 56.04, 4.39, 1.89},
    {"b13", "2", 200, 19.1, 7.47, 7.41},
    {"b13", "3", 200, 0.14, 4.07, 0.11},
    {"b13", "5", 200, 38.07, 16.34, 1.99},
    {"b13", "8", 200, 2.58, 2.69, 1.92},
    {"b13", "1", 300, 576.31, 245.27, 210.57},
    {"b13", "2", 300, 42.82, 19.15, 4.14},
    {"b13", "3", 300, 0.24, 3.33, 3.27},
    {"b13", "5", 300, 4.6, 1.1, 1.1},
    {"b13", "8", 300, 4.6, 4.1, 2.56},
    {"b13", "1", 400, 8.73, 6.7, 6.46},
    {"b13", "2", 400, 105.67, 44.83, 12.13},
    {"b13", "3", 400, 0.32, 37.55, 1.32},
    {"b13", "5", 400, 7.85, 1.09, 1.09},
    {"b13", "8", 400, 3.85, 1.21, 0.66},
};

const std::vector<Row> kQuickRows = {
    {"b01", "1", 50, 1.75, 1.46, 1.36},
    {"b01", "1", 100, 7.59, 10.36, 1.96},
    {"b02", "1", 50, 4.31, 3.51, 1.47},
    {"b04", "1", 50, 0.64, 0.06, 0.06},
    {"b04", "1", 100, 112.78, 0.34, 0.32},
    {"b13", "40", 13, 0.04, 0.02, 0.02},
    {"b13", "1", 50, 5.04, 0.34, 0.31},
    {"b13", "2", 50, 0.67, 1.13, 0.67},
    {"b13", "3", 50, 0.44, 0.05, 0.05},
    {"b13", "5", 50, 3.74, 2.19, 0.17},
    {"b13", "8", 50, 0.08, 0.35, 0.35},
    {"b13", "1", 100, 86.54, 0.73, 0.72},
    {"b13", "3", 100, 0.09, 1.94, 0.09},
    {"b13", "5", 100, 113.67, 52.96, 0.48},
    {"b13", "1", 200, 56.04, 4.39, 1.89},
    {"b13", "5", 200, 38.07, 16.34, 1.99},
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  const double timeout = args.smoke ? 10 : args.full ? 1200 : 60;
  const auto& rows = args.full ? kFullRows : kQuickRows;
  BenchJson json("table2_structural", args.json_path);
  BenchMetrics metrics(args);

  std::printf(
      "Table 2 — Structural Decision Strategy (ours [paper]); CDP stand-ins "
      "per DESIGN.md\n");
  std::printf("%-14s %-2s %7s %7s | %16s %16s %16s | %10s %10s | %12s",
              "Test-case", "R", "Arith", "Bool", "HDPLL", "HDPLL+S",
              "HDPLL+S+P", "bitblast", "chrono", "dp-impl(+S)");
  if (args.jobs > 0) std::printf(" | %10s", "portfolio");
  std::printf("\n");

  for (const Row& row : rows) {
    const ir::SeqCircuit seq = itc99::build(row.circuit);
    const bmc::BmcInstance instance =
        bmc::unroll(seq, row.property, row.bound);
    const auto counts = instance.circuit.op_counts();
    // §5.2: threshold = min(#predicate-logic gates, 2000).
    const int threshold = 2000;

    const auto with_gauges = [&](core::HdpllOptions options) {
      options.gauges = metrics.gauges();
      return options;
    };
    const RunResult plain = run_hdpll(
        instance, with_gauges(make_options(Config::kHdpll, timeout, 0)));
    const RunResult with_s = run_hdpll(
        instance, with_gauges(make_options(Config::kStructural, timeout, 0)));
    const RunResult with_sp = run_hdpll(
        instance,
        with_gauges(make_options(Config::kStructuralPred, timeout, threshold)));
    const RunResult blast = run_bitblast(instance, timeout);
    const RunResult chrono = run_hdpll(
        instance, with_gauges(make_options(Config::kChrono, timeout, 0)));

    const std::string name = str_format("%s_%s(%d)", row.circuit,
                                        row.property, row.bound);
    json.add_row(name, "HDPLL", plain);
    json.add_row(name, "HDPLL+S", with_s);
    json.add_row(name, "HDPLL+S+P", with_sp);
    json.add_row(name, "bitblast", blast);
    json.add_row(name, "chrono-CDP", chrono);
    std::printf(
        "%-14s %-2c %7zu %7zu | %7s [%6s] %7s [%6s] %7s [%6s] | %10s %10s | "
        "%12lld",
        name.c_str(), with_sp.verdict, counts.arith, counts.boolean,
        cell(plain).c_str(), paper_cell(row.paper_hdpll).c_str(),
        cell(with_s).c_str(), paper_cell(row.paper_s).c_str(),
        cell(with_sp).c_str(), paper_cell(row.paper_sp).c_str(),
        cell(blast).c_str(), cell(chrono).c_str(),
        static_cast<long long>(with_s.datapath_implications));
    if (args.jobs > 0) {
      const PortfolioRunResult race = run_portfolio(
          instance, args.jobs, args.share, timeout, metrics.registry());
      json.add_portfolio_row(name, "portfolio", race);
      std::printf(" | %10s", cell(race.run).c_str());
    }
    std::printf("\n");
    if (args.presolve) {
      const RunResult presolved = run_hdpll_presolved(
          instance,
          with_gauges(make_options(Config::kStructuralPred, timeout,
                                   threshold)));
      json.add_row(name, "HDPLL+S+P+presolve", presolved);
      std::printf("%-14s   +presolve %7s (removed %lld nets, shaved %lld "
                  "bits)\n",
                  name.c_str(), cell(presolved).c_str(),
                  static_cast<long long>(
                      presolved.stats.get("presolve.nets_removed")),
                  static_cast<long long>(
                      presolved.stats.get("presolve.width_bits_shaved")));
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nShape targets (§5): +S an order faster than HDPLL on most b04/b13 "
      "rows; +S+P adds up to another order on hard b13 rows; b13_3 prefers "
      "the plain heuristic over +S (watch dp-impl) with +P repairing it; "
      "the structure-blind columns degrade fastest with the bound.\n");
  (void)kTo;
  metrics.stop();
  json.set_metrics_samples(metrics.samples());
  return 0;
}
