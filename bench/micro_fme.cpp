// Microbenchmarks for the Fourier–Motzkin end-game solver.
#include <benchmark/benchmark.h>

#include "fme/fme.h"
#include "util/rng.h"

using namespace rtlsat;
using namespace rtlsat::fme;

namespace {

// A difference-constraint chain x0 < x1 < … < xn with bounds — the typical
// shape the arithmetic end-game hands over.
System chain_system(int n) {
  System s;
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) vars.push_back(s.add_var(Interval(0, 4 * n)));
  for (int i = 0; i + 1 < n; ++i)
    s.add_le({{vars[i], 1}, {vars[i + 1], -1}}, -1);
  return s;
}

void BM_FmeChainSat(benchmark::State& state) {
  const System s = chain_system(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Solver solver;
    std::vector<std::int64_t> model;
    benchmark::DoNotOptimize(solver.solve(s, &model));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FmeChainSat)->Arg(4)->Arg(16)->Arg(64)->Complexity();

void BM_FmeAdderNetwork(benchmark::State& state) {
  // Chained modular adders with overflow variables, as arith_check emits.
  const int n = static_cast<int>(state.range(0));
  System s;
  Rng rng(42);
  Var prev = s.add_var(Interval(0, 255));
  for (int i = 0; i < n; ++i) {
    const Var in = s.add_var(Interval(0, 255));
    const Var sum = s.add_var(Interval(0, 255));
    const Var ov = s.add_var(Interval(0, 1));
    s.add_eq({{prev, 1}, {in, 1}, {sum, -1}, {ov, -256}}, 0);
    prev = sum;
  }
  s.add_eq({{prev, 1}}, 123);
  for (auto _ : state) {
    Solver solver;
    std::vector<std::int64_t> model;
    benchmark::DoNotOptimize(solver.solve(s, &model));
  }
}
BENCHMARK(BM_FmeAdderNetwork)->Arg(4)->Arg(16);

void BM_FmeUnsatRefutation(benchmark::State& state) {
  System s;
  const Var x = s.add_var(Interval(0, 1000));
  const Var y = s.add_var(Interval(0, 1000));
  s.add_le({{x, 3}, {y, -2}}, 0);
  s.add_le({{y, 2}, {x, -3}}, -1);  // contradicts the first
  for (auto _ : state) {
    Solver solver;
    benchmark::DoNotOptimize(solver.solve(s, nullptr));
  }
}
BENCHMARK(BM_FmeUnsatRefutation);

}  // namespace

BENCHMARK_MAIN();
