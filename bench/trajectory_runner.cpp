// Produces a bench trajectory file (src/metrics/trajectory.h): runs the
// standard workload list with repeat-and-take-median timing and writes
// BENCH_<utc-date>_<gitsha>.json carrying the machine fingerprint, per-bench
// median/min/max wall time, and the first repeat's solver counters.
//
//   $ ./trajectory_runner                      # BENCH_*.json in cwd
//   $ ./trajectory_runner --dir out --repeats 5
//   $ ./trajectory_runner --out current.json   # fixed filename (CI)
//
// The workloads deliberately reuse the existing suites: two direct solver
// runs, the table1/table2 smoke rows, and a deterministic portfolio race —
// small enough that 3 repeats finish in well under a minute, large enough
// that a real slowdown in propagation, learning, or the portfolio shows up.
// bench/bench_compare.cpp diffs two of these files and gates CI.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bmc/sweep.h"
#include "metrics/trajectory.h"
#include "parser/rtl_format.h"
#include "sat/solver.h"
#include "serve/client.h"
#include "serve/server.h"

using namespace rtlsat;
using namespace rtlsat::bench;

namespace {

struct Workload {
  std::string name;
  // Runs once; fills `counters` (time.* is stripped afterwards).
  std::function<void(std::map<std::string, std::int64_t>*)> run;
};

void counters_from_stats(const Stats& stats,
                         std::map<std::string, std::int64_t>* out) {
  for (const auto& [name, value] : stats.all()) {
    if (name.rfind("time.", 0) == 0) continue;
    (*out)[name] = value;
  }
}

void add_pigeonhole(sat::Solver& s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<sat::Var>> p(pigeons, std::vector<sat::Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (auto& row : p) {
    std::vector<sat::Lit> clause;
    for (auto v : row) clause.push_back(sat::Lit(v, true));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j)
        s.add_clause({sat::Lit(p[i][h], false), sat::Lit(p[j][h], false)});
}

void run_hdpll_workload(const char* circuit, const char* property, int bound,
                        Config config,
                        std::map<std::string, std::int64_t>* counters) {
  const ir::SeqCircuit seq = itc99::build(circuit);
  const bmc::BmcInstance instance = bmc::unroll(seq, property, bound);
  const RunResult r =
      run_hdpll(instance, make_options(config, /*timeout=*/120, 2000));
  counters_from_stats(r.stats, counters);
}

std::vector<Workload> workloads() {
  std::vector<Workload> out;
  out.push_back({"sat.pigeonhole6", [](auto* counters) {
                   sat::Solver s;
                   add_pigeonhole(s, 6);
                   (void)s.solve();
                   counters_from_stats(s.stats(), counters);
                 }});
  out.push_back({"hdpll.b13_1_b15", [](auto* counters) {
                   run_hdpll_workload("b13", "1", 15, Config::kStructuralPred,
                                      counters);
                 }});
  out.push_back({"hdpll.b13_1_b30", [](auto* counters) {
                   run_hdpll_workload("b13", "1", 30, Config::kStructuralPred,
                                      counters);
                 }});
  out.push_back({"table1.smoke", [](auto* counters) {
                   // Mirrors table1 --smoke: the three CI instances.
                   const std::pair<const char*, const char*> rows[] = {
                       {"b01", "1"}, {"b02", "1"}, {"b13", "5"}};
                   for (const auto& [ckt, prop] : rows) {
                     run_hdpll_workload(ckt, prop, 10, Config::kHdpll,
                                        counters);
                   }
                 }});
  out.push_back({"table2.smoke", [](auto* counters) {
                   // One table2 row across the three HDPLL configurations.
                   run_hdpll_workload("b13", "5", 20, Config::kHdpll, counters);
                   run_hdpll_workload("b13", "5", 20, Config::kStructural,
                                      counters);
                   run_hdpll_workload("b13", "5", 20, Config::kStructuralPred,
                                      counters);
                 }});
  out.push_back({"presolve.table1", [](auto* counters) {
                   // The table1 smoke rows through the presolve lane, with
                   // a verdict cross-check against the direct solver. The
                   // presolve.* counters land in the trajectory so a rewrite
                   // that silently stops firing (or starts flipping
                   // verdicts) shows up in bench_compare.
                   const std::tuple<const char*, const char*, int> rows[] = {
                       {"b01", "1", 10}, {"b02", "1", 10}, {"b13", "5", 10}};
                   (*counters)["presolve.verdicts_agree"] = 1;
                   for (const auto& [ckt, prop, bound] : rows) {
                     const ir::SeqCircuit seq = itc99::build(ckt);
                     const bmc::BmcInstance instance =
                         bmc::unroll(seq, prop, bound);
                     const core::HdpllOptions options =
                         make_options(Config::kStructuralPred, 120, 2000);
                     const RunResult direct = run_hdpll(instance, options);
                     const RunResult presolved =
                         run_hdpll_presolved(instance, options);
                     if (presolved.verdict != direct.verdict)
                       (*counters)["presolve.verdicts_agree"] = 0;
                     counters_from_stats(presolved.stats, counters);
                   }
                 }});
  out.push_back({"bmc.incremental", [](auto* counters) {
                   // Incremental-vs-fresh deep sweep (docs/incremental.md):
                   // both paths solve every bound of the same sweep; the
                   // counters carry the wall-time split and the speedup as
                   // bmc.speedup_pct = 100 * fresh / incremental, which
                   // bench_compare gates at >= 150 (the 1.5x floor).
                   const ir::SeqCircuit seq = itc99::build("b13");
                   bmc::SweepOptions options;
                   options.solver =
                       make_options(Config::kStructuralPred, 120, 2000);
                   options.stop_at_sat = false;  // solve all bounds
                   options.incremental = true;
                   Timer inc_timer;
                   const bmc::SweepResult inc = bmc::sweep(seq, "2", 24,
                                                           options);
                   const double inc_s = inc_timer.seconds();
                   options.incremental = false;
                   Timer fresh_timer;
                   const bmc::SweepResult fresh = bmc::sweep(seq, "2", 24,
                                                             options);
                   const double fresh_s = fresh_timer.seconds();
                   (*counters)["bmc.bounds"] =
                       static_cast<std::int64_t>(inc.frames.size());
                   (*counters)["bmc.verdicts_agree"] =
                       inc.frames.size() == fresh.frames.size() ? 1 : 0;
                   for (std::size_t i = 0; i < inc.frames.size() &&
                                           i < fresh.frames.size();
                        ++i) {
                     if (inc.frames[i].status != fresh.frames[i].status)
                       (*counters)["bmc.verdicts_agree"] = 0;
                   }
                   (*counters)["bmc.incremental_us"] =
                       static_cast<std::int64_t>(inc_s * 1e6);
                   (*counters)["bmc.fresh_us"] =
                       static_cast<std::int64_t>(fresh_s * 1e6);
                   (*counters)["bmc.speedup_pct"] = static_cast<std::int64_t>(
                       100.0 * fresh_s / std::max(inc_s, 1e-9));
                 }});
  out.push_back({"portfolio.b13_1_b15", [](auto* counters) {
                   const ir::SeqCircuit seq = itc99::build("b13");
                   const bmc::BmcInstance instance = bmc::unroll(seq, "1", 15);
                   portfolio::PortfolioOptions options;
                   options.jobs = 4;
                   options.deterministic = true;  // reproducible counters
                   options.budget_seconds = 120;
                   portfolio::Portfolio race(instance.circuit, instance.goal,
                                             true, options);
                   const portfolio::PortfolioResult result = race.solve();
                   counters_from_stats(result.stats, counters);
                 }});
  out.push_back({"serve.warm_cache", [](auto* counters) {
                   // Warm-cache serve throughput: one priming solve, then
                   // 256 byte-identical queries over a real TCP loopback
                   // connection, all expected to hit the exact-text cache
                   // tier. A regression here means the hit path (framing,
                   // cache lookup, result encode) got slower.
                   const ir::SeqCircuit seq = itc99::build("b01");
                   bmc::BmcInstance bmc = bmc::unroll(seq, "1", 6);
                   bmc.circuit.set_name("b01_1_k6");
                   serve::Server server{serve::ServerOptions{}};
                   std::string error;
                   if (!server.start(&error)) return;
                   serve::Client client;
                   if (!client.connect("127.0.0.1", server.port(), &error))
                     return;
                   serve::SolveRequest request;
                   request.rtl = parser::write_circuit(bmc.circuit);
                   request.goal = bmc.circuit.net_name(bmc.goal);
                   request.deterministic = true;
                   constexpr int kQueries = 256;
                   std::int64_t hits = 0;
                   for (int i = 0; i < kQueries + 1; ++i) {
                     serve::ResultMsg result;
                     if (!client.solve(request, &result, &error)) break;
                     if (result.cache_hit) ++hits;
                   }
                   (*counters)["serve.requests"] = kQueries + 1;
                   (*counters)["serve.cache_hits"] = hits;
                   client.disconnect();
                   server.drain();
                   server.wait();
                 }});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string dir = ".";
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out <path>] [--dir <dir>] [--repeats <n>]\n",
                   argv[0]);
      return 2;
    }
  }
  repeats = std::max(repeats, 1);

  metrics::Trajectory trajectory;
  trajectory.utc_date = metrics::utc_date_string();
  trajectory.git_sha = metrics::git_sha_or_fallback();
  trajectory.fingerprint = metrics::local_fingerprint();

  for (const Workload& workload : workloads()) {
    metrics::BenchResult bench;
    bench.name = workload.name;
    bench.repeats = repeats;
    std::vector<double> times;
    for (int r = 0; r < repeats; ++r) {
      std::map<std::string, std::int64_t> counters;
      Timer timer;
      workload.run(&counters);
      times.push_back(timer.seconds());
      if (r == 0) bench.counters = std::move(counters);
    }
    std::sort(times.begin(), times.end());
    bench.min_s = times.front();
    bench.max_s = times.back();
    bench.median_s = times[times.size() / 2];
    trajectory.benches.push_back(std::move(bench));
    std::printf("%-24s median %8.4fs  (min %.4fs, max %.4fs, %d repeats)\n",
                workload.name.c_str(), trajectory.benches.back().median_s,
                trajectory.benches.back().min_s,
                trajectory.benches.back().max_s, repeats);
    std::fflush(stdout);
  }

  const metrics::ProcMemory mem = metrics::read_proc_memory();
  if (mem.ok) trajectory.rss_peak_kb = mem.rss_peak_kb;

  if (out_path.empty())
    out_path = dir + "/" + metrics::default_trajectory_filename(trajectory);
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const std::string json = metrics::trajectory_to_json(trajectory);
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("trajectory -> %s\n", out_path.c_str());
  return 0;
}
