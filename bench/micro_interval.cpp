// Microbenchmarks for the interval arithmetic kernel — the innermost loop
// of constraint propagation.
#include <benchmark/benchmark.h>

#include "interval/interval_ops.h"
#include "util/rng.h"

using namespace rtlsat;

namespace {

std::vector<Interval> random_intervals(int n, int width, std::uint64_t seed) {
  Rng rng(seed);
  const std::int64_t m = (std::int64_t{1} << width) - 1;
  std::vector<Interval> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::int64_t a = rng.range(0, m);
    std::int64_t b = rng.range(0, m);
    if (a > b) std::swap(a, b);
    out.emplace_back(a, b);
  }
  return out;
}

void BM_IntervalAddWrap(benchmark::State& state) {
  const auto xs = random_intervals(1024, 8, 1);
  const auto ys = random_intervals(1024, 8, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        iops::fwd_add_wrap(xs[i & 1023], ys[(i + 7) & 1023], 8));
    ++i;
  }
}
BENCHMARK(BM_IntervalAddWrap);

void BM_IntervalBackAddWrap(benchmark::State& state) {
  const auto xs = random_intervals(1024, 8, 3);
  const auto ys = random_intervals(1024, 8, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(iops::back_add_wrap_x(
        xs[i & 1023], ys[(i + 3) & 1023], Interval(0, 255), 8));
    ++i;
  }
}
BENCHMARK(BM_IntervalBackAddWrap);

void BM_IntervalComparatorNarrow(benchmark::State& state) {
  const auto xs = random_intervals(1024, 10, 5);
  const auto ys = random_intervals(1024, 10, 6);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto p = iops::narrow_lt(xs[i & 1023], ys[(i + 11) & 1023]);
    benchmark::DoNotOptimize(p.x);
    benchmark::DoNotOptimize(p.y);
    ++i;
  }
}
BENCHMARK(BM_IntervalComparatorNarrow);

void BM_IntervalExtract(benchmark::State& state) {
  const auto xs = random_intervals(1024, 16, 7);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(iops::fwd_extract(xs[i & 1023], 11, 4));
    ++i;
  }
}
BENCHMARK(BM_IntervalExtract);

void BM_IntervalIntersectHull(benchmark::State& state) {
  const auto xs = random_intervals(1024, 12, 8);
  std::size_t i = 0;
  for (auto _ : state) {
    const Interval a = xs[i & 1023].intersect(xs[(i + 5) & 1023]);
    benchmark::DoNotOptimize(a.hull(xs[(i + 9) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_IntervalIntersectHull);

}  // namespace

BENCHMARK_MAIN();
