// Prints the paper's worked examples as executable traces:
//   Fig. 1 — level-1 recursive learning on a Boolean cone,
//   Fig. 2 — predicate learning on the b04 fragment (the four clauses),
//   Fig. 3/4 — RTL justification walking a mux chain to SAT.
#include <cstdio>

#include "core/deduce.h"
#include "core/hdpll.h"
#include "core/predicate_learning.h"

using namespace rtlsat;
using namespace rtlsat::core;

namespace {

void figure1() {
  std::printf("— Figure 1: recursive learning to level 1 —\n");
  ir::Circuit c("fig1");
  const ir::NetId a = c.add_input("a", 1);
  const ir::NetId b = c.add_input("b", 1);
  const ir::NetId x1 = c.add_input("x1", 1);
  const ir::NetId x2 = c.add_input("x2", 1);
  const ir::NetId cc = c.add_and({a, b, x1});
  c.set_net_name(cc, "c");
  const ir::NetId dd = c.add_and({a, b, x2});
  c.set_net_name(dd, "d");
  const ir::NetId e = c.add_or(cc, dd);
  c.set_net_name(e, "e");
  c.add_mux(e, c.add_input("w1", 4), c.add_input("w2", 4));

  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  run_predicate_learning(engine, db, &cursor, {});
  std::printf("learned clauses:\n");
  for (const HybridClause& clause : db.all())
    std::printf("  %s\n", clause.to_string(c).c_str());
  std::printf("(paper: e=1 -> a=1 and e=1 -> b=1)\n\n");
}

void figure2() {
  std::printf("— Figure 2: predicate learning on the b04 fragment —\n");
  ir::Circuit c("fig2");
  const ir::NetId w0 = c.add_input("w0", 3);
  const ir::NetId w1 = c.add_input("w1", 3);
  const ir::NetId w2 = c.add_input("w2", 3);
  const ir::NetId w3 = c.add_input("w3", 3);
  const ir::NetId w4 = c.add_input("w4", 3);
  const ir::NetId b0 = c.add_input("b0", 1);
  const ir::NetId b1 = c.add_le(c.add_const(1, 3), w1);
  c.set_net_name(b1, "b1");
  const ir::NetId b2 = c.add_lt(c.add_const(0, 3), w1);
  c.set_net_name(b2, "b2");
  const ir::NetId b3 = c.add_le(c.add_const(1, 3), w2);
  c.set_net_name(b3, "b3");
  const ir::NetId b4 = c.add_le(w2, c.add_const(1, 3));
  c.set_net_name(b4, "b4");
  const ir::NetId b5 = c.add_and(b1, b0);
  c.set_net_name(b5, "b5");
  const ir::NetId b6 = c.add_and(b2, b0);
  c.set_net_name(b6, "b6");
  const ir::NetId b7 = c.add_and(b3, b4);
  c.set_net_name(b7, "b7");
  const ir::NetId b8 = c.add_or(b5, b7);
  c.set_net_name(b8, "b8");
  const ir::NetId b9 = c.add_or(b6, b7);
  c.set_net_name(b9, "b9");
  c.add_mux(b8, w3, w0);
  c.add_mux(b9, w4, w0);

  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  const auto report = run_predicate_learning(engine, db, &cursor, {});
  std::printf("%d relations learned in %d probes; binary clauses on b5..b9:\n",
              report.relations_learned, report.probes);
  for (const HybridClause& clause : db.all()) {
    bool relevant = false;
    for (const HybridLit& l : clause.lits)
      relevant = relevant ||
                 (l.net == b5 || l.net == b6 || l.net == b8 || l.net == b9);
    if (relevant && clause.lits.size() == 2)
      std::printf("  %s\n", clause.to_string(c).c_str());
  }
  std::printf("(paper: (b5|!b6), (b6|!b5), (!b8|b9), (!b9|b8))\n\n");
}

void figure4() {
  std::printf("— Figure 4: structural decision making —\n");
  ir::Circuit c("fig4");
  const ir::NetId w1 = c.add_input("w1", 3);
  const ir::NetId a1 = c.add_input("a1", 3);
  const ir::NetId a2 = c.add_input("a2", 3);
  const ir::NetId x0 = c.add_input("x0", 1);
  const ir::NetId w2 = c.add_concat(c.add_const(3, 2), c.add_zext(x0, 1));
  c.set_net_name(w2, "w2");
  const ir::NetId b1 = c.add_lt(a1, a2);
  c.set_net_name(b1, "b1");
  const ir::NetId b2 = c.add_lt(a2, a1);
  c.set_net_name(b2, "b2");
  const ir::NetId w3 = c.add_mux(b2, w2, w1);
  c.set_net_name(w3, "w3");
  const ir::NetId w4 = c.add_mux(b1, w2, w3);
  c.set_net_name(w4, "w4");
  const ir::NetId b7 = c.add_eq(w4, c.add_const(5, 3));

  HdpllOptions options;
  options.structural_decisions = true;
  HdpllSolver solver(c, options);
  solver.assume_bool(b7, true);
  const SolveResult result = solver.solve();
  std::printf("proposition w4 == 5: %s (%.4fs)\n",
              result.status == SolveStatus::kSat ? "SATISFIABLE" : "UNSAT",
              result.seconds);
  std::printf("  b1=%d b2=%d w3=%s w1=%s\n", solver.engine().bool_value(b1),
              solver.engine().bool_value(b2),
              solver.engine().interval(w3).to_string().c_str(),
              solver.engine().interval(w1).to_string().c_str());
  std::printf("(paper trace: decide b1=0 -> w3=<5>; decide b2=0 -> w1=<5>; "
              "SATISFIABLE)\n");
}

}  // namespace

int main() {
  figure1();
  figure2();
  figure4();
  return 0;
}
