// Proof-logging overhead guards.
//
// The zero-overhead-when-off contract (src/proof, docs/proofs.md) is that
// a solver holding a null proof pointer costs one predicted branch per
// cold event — BM_PigeonHoleNoProof and BM_HdpllNoProof must stay within
// measurement noise (≲1%) of the same workloads in micro_sat and
// micro_portfolio. The *Discard variant isolates the hook + formatting
// cost with no retained content; the *Text variants price full capture,
// and the *Check variants price the independent checkers, which are off
// the solving path entirely.
#include <benchmark/benchmark.h>

#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "itc99/itc99.h"
#include "proof/drat.h"
#include "proof/drat_check.h"
#include "proof/word_check.h"
#include "proof/word_writer.h"
#include "sat/solver.h"

using namespace rtlsat;

namespace {

void add_pigeonhole(sat::Solver& s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<sat::Var>> p(pigeons, std::vector<sat::Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (auto& row : p) {
    std::vector<sat::Lit> clause;
    for (auto v : row) clause.push_back(sat::Lit(v, true));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j)
        s.add_clause({sat::Lit(p[i][h], false), sat::Lit(p[j][h], false)});
}

// Baseline: identical workload to micro_sat's BM_PigeonHole. The guard is
// that this stays within noise of that benchmark — the null drat_ branch
// is the only code difference on this path.
void BM_PigeonHoleNoProof(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    add_pigeonhole(s, holes);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_PigeonHoleNoProof)->Arg(5)->Arg(6);

void BM_PigeonHoleDiscardProof(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    proof::DratWriter::Options drat_options;
    drat_options.discard = true;
    proof::DratWriter drat(drat_options);
    sat::SolverOptions options;
    options.drat = &drat;
    sat::Solver s(options);
    add_pigeonhole(s, holes);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_PigeonHoleDiscardProof)->Arg(5)->Arg(6);

void BM_PigeonHoleTextProof(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    proof::DratWriter drat;
    sat::SolverOptions options;
    options.drat = &drat;
    sat::Solver s(options);
    add_pigeonhole(s, holes);
    benchmark::DoNotOptimize(s.solve());
    benchmark::DoNotOptimize(drat.proof_bytes());
  }
}
BENCHMARK(BM_PigeonHoleTextProof)->Arg(5)->Arg(6);

void BM_DratCheck(benchmark::State& state) {
  proof::DratWriter drat;
  sat::SolverOptions options;
  options.drat = &drat;
  sat::Solver s(options);
  add_pigeonhole(s, static_cast<int>(state.range(0)));
  (void)s.solve();
  const std::string dimacs = drat.dimacs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        proof::drat_check(dimacs, drat.proof(), /*binary=*/false));
  }
}
BENCHMARK(BM_DratCheck)->Arg(5)->Arg(6);

bmc::BmcInstance b13_instance(int bound) {
  const auto seq = itc99::build("b13");
  return bmc::unroll(seq, "1", bound);
}

void solve_b13(const bmc::BmcInstance& instance,
               proof::WordCertWriter* cert) {
  core::HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = true;
  options.proof = cert;
  core::HdpllSolver solver(instance.circuit, options);
  solver.assume_bool(instance.goal, true);
  benchmark::DoNotOptimize(solver.solve());
}

void BM_HdpllNoProof(benchmark::State& state) {
  const auto instance = b13_instance(static_cast<int>(state.range(0)));
  for (auto _ : state) solve_b13(instance, nullptr);
}
BENCHMARK(BM_HdpllNoProof)->Arg(15)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_HdpllWordProof(benchmark::State& state) {
  const auto instance = b13_instance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    proof::WordCertWriter cert;
    solve_b13(instance, &cert);
    benchmark::DoNotOptimize(cert.bytes());
  }
}
BENCHMARK(BM_HdpllWordProof)->Arg(15)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_WordCheck(benchmark::State& state) {
  const auto instance = b13_instance(static_cast<int>(state.range(0)));
  proof::WordCertWriter cert;
  solve_b13(instance, &cert);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proof::word_check(cert.str()));
  }
}
BENCHMARK(BM_WordCheck)->Arg(15)->Arg(30)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
