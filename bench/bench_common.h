// Shared helpers for the paper-table benches: instance construction, the
// four solver configurations, and table formatting that mirrors the
// paper's layout (runtimes in seconds, "-to-" for timeouts).
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <memory>

#include "bitblast/bitblast.h"
#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "itc99/itc99.h"
#include "metrics/memory.h"
#include "metrics/sampler.h"
#include "metrics/solver_gauges.h"
#include "portfolio/portfolio.h"
#include "presolve/simplify.h"
#include "trace/sink.h"
#include "proof/drat.h"
#include "proof/drat_check.h"
#include "proof/word_check.h"
#include "proof/word_writer.h"
#include "trace/json.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/timer.h"

namespace rtlsat::bench {

struct RunResult {
  char verdict = '?';  // 'S', 'U', 'T' (timeout), or 'C' (cancelled)
  double seconds = 0;
  core::PredicateLearningReport learning;
  std::int64_t datapath_implications = 0;
  // Full solver counter/histogram dump (empty for the bit-blast oracle,
  // which does not expose its SAT solver).
  Stats stats;
};

enum class Config { kHdpll, kStructural, kStructuralPred, kChrono };

inline const char* config_name(Config c) {
  switch (c) {
    case Config::kHdpll: return "HDPLL";
    case Config::kStructural: return "HDPLL+S";
    case Config::kStructuralPred: return "HDPLL+S+P";
    case Config::kChrono: return "chrono-CDP";
  }
  return "?";
}

inline core::HdpllOptions make_options(Config config, double timeout,
                                       int learn_threshold) {
  core::HdpllOptions options;
  options.structural_decisions =
      config == Config::kStructural || config == Config::kStructuralPred;
  options.predicate_learning = config == Config::kStructuralPred;
  options.learning.max_relations = learn_threshold;
  options.conflict_learning = config != Config::kChrono;
  options.timeout_seconds = timeout;
  return options;
}

// Certificate logging for the table benches: with RTLSAT_PROOF set, every
// HDPLL solve logs a word certificate that is verified in-process, and —
// when the variable names a directory rather than "1" — also written as
// "<dir>/<instance>.<config>.cert.jsonl" for offline rtlsat_check runs
// (the CI proof-check job). A rejected certificate is reported on stderr
// and counted as proof.rejected in the row's counters, so the JSON report
// carries it too.
inline RunResult run_hdpll(const bmc::BmcInstance& instance,
                           const core::HdpllOptions& options_in) {
  core::HdpllOptions options = options_in;
  proof::WordCertWriter cert;
  const char* proof_env = std::getenv("RTLSAT_PROOF");
  const bool certify =
      proof_env != nullptr && *proof_env != '\0' && options.conflict_learning;
  if (certify) options.proof = &cert;
  core::HdpllSolver solver(instance.circuit, options);
  solver.assume_bool(instance.goal, true);
  const core::SolveResult result = solver.solve();
  RunResult out;
  out.seconds = result.seconds;
  out.learning = result.learning;
  out.datapath_implications = solver.engine().num_datapath_narrowings();
  out.stats = solver.stats();
  switch (result.status) {
    case core::SolveStatus::kSat: out.verdict = 'S'; break;
    case core::SolveStatus::kUnsat: out.verdict = 'U'; break;
    case core::SolveStatus::kTimeout: out.verdict = 'T'; break;
    case core::SolveStatus::kCancelled: out.verdict = 'C'; break;
  }
  if (certify) {
    const proof::WordCheckResult check = proof::word_check(cert.str());
    const bool refutation_ok = out.verdict != 'U' || check.refuted;
    if (!check.ok || !refutation_ok) {
      out.stats.add("proof.rejected", 1);
      std::fprintf(stderr, "%s: certificate REJECTED: %s\n",
                   instance.name.c_str(),
                   check.ok ? "no refutation for an UNSAT verdict"
                            : check.error.c_str());
    }
    if (std::strcmp(proof_env, "1") != 0) {
      std::string file = instance.name;
      for (char& ch : file) {
        if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_')
          ch = '_';
      }
      const std::string config =
          options.predicate_learning      ? "hdpll_sp"
          : options.structural_decisions ? "hdpll_s"
                                         : "hdpll";
      std::string error;
      if (!cert.save(std::string(proof_env) + "/" + file + "." + config +
                         ".cert.jsonl",
                     &error)) {
        std::fprintf(stderr, "%s: certificate not saved: %s\n",
                     instance.name.c_str(), error.c_str());
      }
    }
  }
  return out;
}

// The bit-blast lane mirrors run_hdpll's RTLSAT_PROOF contract with DRAT:
// verified in-process; with a directory, the formula and proof are saved
// as "<instance>.dimacs" / "<instance>.drat" for offline rtlsat_check.
inline RunResult run_bitblast(const bmc::BmcInstance& instance,
                              double timeout) {
  Timer timer;
  proof::DratWriter drat;
  sat::SolverOptions options;
  options.timeout_seconds = timeout;
  const char* proof_env = std::getenv("RTLSAT_PROOF");
  const bool certify = proof_env != nullptr && *proof_env != '\0';
  if (certify) options.drat = &drat;
  const auto oracle =
      bitblast::check_sat(instance.circuit, instance.goal, true, options);
  RunResult out;
  out.seconds = timer.seconds();
  out.verdict = oracle.result == sat::Result::kSat     ? 'S'
                : oracle.result == sat::Result::kUnsat ? 'U'
                                                       : 'T';
  if (certify && out.verdict == 'U') {
    const proof::DratCheckResult check =
        proof::drat_check(drat.dimacs(), drat.proof(), drat.binary());
    if (!check.ok) {
      out.stats.add("proof.rejected", 1);
      std::fprintf(stderr, "%s: DRAT proof REJECTED: %s\n",
                   instance.name.c_str(), check.error.c_str());
    }
    if (std::strcmp(proof_env, "1") != 0) {
      std::string file = instance.name;
      for (char& ch : file) {
        if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_')
          ch = '_';
      }
      const std::string base = std::string(proof_env) + "/" + file;
      std::string error;
      if (!drat.save(base + ".dimacs", base + ".drat", &error)) {
        std::fprintf(stderr, "%s: DRAT proof not saved: %s\n",
                     instance.name.c_str(), error.c_str());
      }
    }
  }
  return out;
}

// The presolve lane: interval presolve (src/presolve/) first, then HDPLL on
// the simplified instance when the presolver does not decide outright. The
// row's counters carry the presolve.* rewrite totals next to the solver's,
// so the bench JSON shows what the static pass bought. No proof logging —
// certificates must reference the original instance (see bmc/sweep.h).
inline RunResult run_hdpll_presolved(const bmc::BmcInstance& instance,
                                     const core::HdpllOptions& options) {
  Timer timer;
  const presolve::GoalPresolve pre =
      presolve::presolve_goal(instance.circuit, instance.goal, true);
  RunResult out;
  pre.stats.add_to(out.stats);
  if (pre.decided) {
    out.verdict = pre.sat ? 'S' : 'U';
    out.seconds = timer.seconds();
    out.stats.add("presolve.decided", 1);
    return out;
  }
  core::HdpllSolver solver(pre.circuit, options);
  solver.assume_bool(pre.goal, true);
  const core::SolveResult result = solver.solve();
  out.seconds = timer.seconds();
  out.learning = result.learning;
  out.datapath_implications = solver.engine().num_datapath_narrowings();
  out.stats.merge(solver.stats());
  switch (result.status) {
    case core::SolveStatus::kSat: out.verdict = 'S'; break;
    case core::SolveStatus::kUnsat: out.verdict = 'U'; break;
    case core::SolveStatus::kTimeout: out.verdict = 'T'; break;
    case core::SolveStatus::kCancelled: out.verdict = 'C'; break;
  }
  return out;
}

inline std::string cell(const RunResult& r) {
  return format_runtime(r.seconds, r.verdict == 'T', false);
}

// "paper: x.xx" annotation; negative means the paper reported a timeout,
// NaN (passed as < −1e8) means no paper figure for this row.
inline std::string paper_cell(double value) {
  if (value < -1e8) return "";
  if (value < 0) return "-to-";
  return str_format("%.2f", value);
}

// Runs the parallel portfolio on the instance and flattens the result into
// a RunResult (plus the full per-worker detail for JSON reporting).
struct PortfolioRunResult {
  RunResult run;
  portfolio::PortfolioResult detail;
};

inline PortfolioRunResult run_portfolio(
    const bmc::BmcInstance& instance, int jobs, bool share, double budget,
    metrics::MetricsRegistry* metrics_registry = nullptr) {
  portfolio::PortfolioOptions options;
  options.jobs = jobs;
  options.share_clauses = share;
  options.budget_seconds = budget;
  options.metrics = metrics_registry;
  portfolio::Portfolio race(instance.circuit, instance.goal, true, options);
  PortfolioRunResult out;
  out.detail = race.solve();
  out.run.seconds = out.detail.seconds;
  out.run.verdict = out.detail.winner >= 0
                        ? out.detail.workers[out.detail.winner].verdict
                        : 'T';
  out.run.stats = out.detail.stats;
  return out;
}

// Flags shared by all table benches:
//   --full          the paper's full instance list (1200 s timeouts)
//   --smoke         tiny instance subset + short timeout, for CI
//   --json <path>   additionally write machine-readable BENCH_*.json
//   --jobs N        add a parallel-portfolio column with N workers (0 = off)
//   --no-share      disable the portfolio's predicate-clause sharing
//   --metrics <path> sample live telemetry into a JSONL time series
//   --sample-ms N   sampling interval for --metrics (default 100)
//   --presolve      add a presolve-on lane next to each solver row
struct BenchArgs {
  bool full = false;
  bool smoke = false;
  std::string json_path;
  int jobs = 0;
  bool share = true;
  std::string metrics_path;
  int sample_ms = 100;
  bool presolve = false;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      args.full = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      args.jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-share") == 0) {
      args.share = false;
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      args.metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sample-ms") == 0 && i + 1 < argc) {
      args.sample_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--presolve") == 0) {
      args.presolve = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

// Live-telemetry harness behind --metrics/--sample-ms: owns the registry,
// the JSONL sink, and a background Sampler, and hands out the SolverGauges
// to thread into HdpllOptions/SolverOptions/PortfolioOptions. Constructed
// unconditionally — without --metrics every accessor returns null and the
// solvers pay one predicted branch per conflict.
class BenchMetrics {
 public:
  explicit BenchMetrics(const BenchArgs& args) {
    if (args.metrics_path.empty()) return;
    sink_ = std::make_unique<trace::JsonlSink>(args.metrics_path);
    metrics::SamplerOptions options;
    options.sink = sink_.get();
    options.interval_seconds = std::max(args.sample_ms, 1) / 1000.0;
    sampler_ = std::make_unique<metrics::Sampler>(&registry_, options);
    gauges_ = metrics::make_solver_gauges(&registry_, {{"solver", "hdpll"}});
    sampler_->start();
  }
  ~BenchMetrics() { stop(); }
  BenchMetrics(const BenchMetrics&) = delete;
  BenchMetrics& operator=(const BenchMetrics&) = delete;

  bool enabled() const { return sampler_ != nullptr; }
  metrics::MetricsRegistry* registry() {
    return enabled() ? &registry_ : nullptr;
  }
  metrics::SolverGauges* gauges() { return enabled() ? &gauges_ : nullptr; }

  // Final sample + thread join (idempotent; the destructor calls it too).
  void stop() {
    if (sampler_ != nullptr) sampler_->stop();
  }
  std::int64_t samples() const {
    return sampler_ != nullptr ? sampler_->samples() : 0;
  }

 private:
  metrics::MetricsRegistry registry_;
  std::unique_ptr<trace::JsonlSink> sink_;
  std::unique_ptr<metrics::Sampler> sampler_;
  metrics::SolverGauges gauges_;
};

// Streams bench rows into one JSON document:
//   {"bench": "...", "rows": [{"instance", "config", "verdict", "seconds",
//    "relations_learned", "units_learned", "learning_seconds",
//    "datapath_implications", "counters": {...}}, ...]}
// The file is written on close()/destruction; a null/empty path makes every
// call a no-op so benches can construct one unconditionally.
class BenchJson {
 public:
  BenchJson(std::string_view bench, std::string path)
      : path_(std::move(path)) {
    if (path_.empty()) return;
    writer_.begin_object();
    writer_.key("bench").value(bench);
    writer_.key("rows").begin_array();
  }
  ~BenchJson() { close(); }
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void add_row(const std::string& instance, const std::string& config,
               const RunResult& r) {
    if (path_.empty()) return;
    writer_.begin_object();
    writer_.key("instance").value(instance);
    writer_.key("config").value(config);
    const char verdict[2] = {r.verdict, '\0'};
    writer_.key("verdict").value(verdict);
    writer_.key("seconds").value(r.seconds);
    writer_.key("relations_learned").value(r.learning.relations_learned);
    writer_.key("units_learned").value(r.learning.units_learned);
    writer_.key("learning_seconds").value(r.learning.seconds);
    writer_.key("datapath_implications").value(r.datapath_implications);
    writer_.key("counters").begin_object();
    for (const auto& [name, value] : r.stats.all()) {
      writer_.key(name).value(value);
    }
    writer_.end_object();
    writer_.key("histograms").begin_object();
    for (const auto& [name, h] : r.stats.histograms()) {
      writer_.key(name).begin_object();
      writer_.key("count").value(h.count());
      writer_.key("sum").value(h.sum());
      writer_.key("min").value(h.min());
      writer_.key("max").value(h.max());
      writer_.key("mean").value(h.mean());
      writer_.end_object();
    }
    writer_.end_object();
    writer_.end_object();
  }

  // A portfolio row: the flattened RunResult fields plus a per-worker
  // array — verdict, seconds, clauses exported/imported, cancellation
  // latency (ms; -1 = not cancelled) — and the winner's name.
  void add_portfolio_row(const std::string& instance,
                         const std::string& config,
                         const PortfolioRunResult& r) {
    if (path_.empty()) return;
    writer_.begin_object();
    writer_.key("instance").value(instance);
    writer_.key("config").value(config);
    const char verdict[2] = {r.run.verdict, '\0'};
    writer_.key("verdict").value(verdict);
    writer_.key("seconds").value(r.run.seconds);
    writer_.key("winner").value(r.detail.winner_name);
    writer_.key("workers").begin_array();
    for (const portfolio::WorkerReport& worker : r.detail.workers) {
      writer_.begin_object();
      writer_.key("name").value(worker.name);
      const char wv[2] = {worker.verdict, '\0'};
      writer_.key("verdict").value(wv);
      writer_.key("seconds").value(worker.seconds);
      writer_.key("clauses_exported").value(worker.clauses_exported);
      writer_.key("clauses_imported").value(worker.clauses_imported);
      writer_.key("cancel_latency").value(worker.cancel_latency);
      writer_.end_object();
    }
    writer_.end_array();
    writer_.key("counters").begin_object();
    for (const auto& [name, value] : r.run.stats.all()) {
      writer_.key(name).value(value);
    }
    writer_.end_object();
    writer_.end_object();
  }

  // Sampler line count for the memory summary (0 = run was unsampled).
  void set_metrics_samples(std::int64_t samples) { metrics_samples_ = samples; }

  void close() {
    if (path_.empty() || closed_) return;
    closed_ = true;
    writer_.end_array();
    // Memory summary, shared field names with the trajectory schema
    // (src/metrics/trajectory.h) so the two report formats diff cleanly.
    const metrics::ProcMemory mem = metrics::read_proc_memory();
    writer_.key("rss_peak_kb").value(mem.ok ? mem.rss_peak_kb : 0);
    writer_.key("metrics_samples").value(metrics_samples_);
    writer_.end_object();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write bench json to %s\n", path_.c_str());
      return;
    }
    std::fputs(writer_.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }

 private:
  std::string path_;
  trace::JsonWriter writer_;
  std::int64_t metrics_samples_ = 0;
  bool closed_ = false;
};

}  // namespace rtlsat::bench
