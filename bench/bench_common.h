// Shared helpers for the paper-table benches: instance construction, the
// four solver configurations, and table formatting that mirrors the
// paper's layout (runtimes in seconds, "-to-" for timeouts).
#pragma once

#include <cstdio>
#include <string>

#include "bitblast/bitblast.h"
#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "itc99/itc99.h"
#include "util/strings.h"
#include "util/timer.h"

namespace rtlsat::bench {

struct RunResult {
  char verdict = '?';  // 'S', 'U', or 'T' (timeout)
  double seconds = 0;
  core::PredicateLearningReport learning;
  std::int64_t datapath_implications = 0;
};

enum class Config { kHdpll, kStructural, kStructuralPred, kChrono };

inline const char* config_name(Config c) {
  switch (c) {
    case Config::kHdpll: return "HDPLL";
    case Config::kStructural: return "HDPLL+S";
    case Config::kStructuralPred: return "HDPLL+S+P";
    case Config::kChrono: return "chrono-CDP";
  }
  return "?";
}

inline core::HdpllOptions make_options(Config config, double timeout,
                                       int learn_threshold) {
  core::HdpllOptions options;
  options.structural_decisions =
      config == Config::kStructural || config == Config::kStructuralPred;
  options.predicate_learning = config == Config::kStructuralPred;
  options.learning.max_relations = learn_threshold;
  options.conflict_learning = config != Config::kChrono;
  options.timeout_seconds = timeout;
  return options;
}

inline RunResult run_hdpll(const bmc::BmcInstance& instance,
                           const core::HdpllOptions& options) {
  core::HdpllSolver solver(instance.circuit, options);
  solver.assume_bool(instance.goal, true);
  const core::SolveResult result = solver.solve();
  RunResult out;
  out.seconds = result.seconds;
  out.learning = result.learning;
  out.datapath_implications = solver.engine().num_datapath_narrowings();
  switch (result.status) {
    case core::SolveStatus::kSat: out.verdict = 'S'; break;
    case core::SolveStatus::kUnsat: out.verdict = 'U'; break;
    case core::SolveStatus::kTimeout: out.verdict = 'T'; break;
  }
  return out;
}

inline RunResult run_bitblast(const bmc::BmcInstance& instance,
                              double timeout) {
  Timer timer;
  sat::SolverOptions options;
  options.timeout_seconds = timeout;
  const auto oracle =
      bitblast::check_sat(instance.circuit, instance.goal, true, options);
  RunResult out;
  out.seconds = timer.seconds();
  out.verdict = oracle.result == sat::Result::kSat     ? 'S'
                : oracle.result == sat::Result::kUnsat ? 'U'
                                                       : 'T';
  return out;
}

inline std::string cell(const RunResult& r) {
  return format_runtime(r.seconds, r.verdict == 'T', false);
}

// "paper: x.xx" annotation; negative means the paper reported a timeout,
// NaN (passed as < −1e8) means no paper figure for this row.
inline std::string paper_cell(double value) {
  if (value < -1e8) return "";
  if (value < 0) return "-to-";
  return str_format("%.2f", value);
}

}  // namespace rtlsat::bench
