// Portfolio overhead guard: a 1-worker portfolio must cost essentially the
// same as a direct HdpllSolver solve of the same configuration. The
// deterministic variant (no thread) isolates the wrapper + armed-StopToken
// cost, which must be noise-level; BM_Portfolio1 adds one spawn/join,
// whose cost is the scheduler's (microseconds on an idle multicore box,
// visible on a loaded single-core one). The cancellation poll itself is
// measured by BM_StopTokenPoll.
#include <benchmark/benchmark.h>

#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "itc99/itc99.h"
#include "portfolio/portfolio.h"
#include "util/stop_token.h"

using namespace rtlsat;

namespace {

void BM_DirectSolve(benchmark::State& state) {
  const auto seq = itc99::build("b13");
  const auto instance =
      bmc::unroll(seq, "1", static_cast<int>(state.range(0)));
  for (auto _ : state) {
    core::HdpllOptions options;
    options.structural_decisions = true;
    options.predicate_learning = true;
    core::HdpllSolver solver(instance.circuit, options);
    solver.assume_bool(instance.goal, true);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_DirectSolve)->Arg(15)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_Portfolio1(benchmark::State& state) {
  const auto seq = itc99::build("b13");
  const auto instance =
      bmc::unroll(seq, "1", static_cast<int>(state.range(0)));
  for (auto _ : state) {
    // jobs = 1 ⟹ default_lineup yields exactly the HDPLL+S+P worker that
    // BM_DirectSolve runs, wrapped in the full portfolio machinery.
    portfolio::PortfolioOptions options;
    options.jobs = 1;
    portfolio::Portfolio race(instance.circuit, instance.goal, true, options);
    benchmark::DoNotOptimize(race.solve());
  }
}
BENCHMARK(BM_Portfolio1)->Arg(15)->Arg(30)->Unit(benchmark::kMillisecond);

// Same 1-worker portfolio without the thread: isolates the wrapper +
// armed-StopToken cost from the spawn/join cost.
void BM_Portfolio1Deterministic(benchmark::State& state) {
  const auto seq = itc99::build("b13");
  const auto instance =
      bmc::unroll(seq, "1", static_cast<int>(state.range(0)));
  for (auto _ : state) {
    portfolio::PortfolioOptions options;
    options.jobs = 1;
    options.deterministic = true;
    portfolio::Portfolio race(instance.circuit, instance.goal, true, options);
    benchmark::DoNotOptimize(race.solve());
  }
}
BENCHMARK(BM_Portfolio1Deterministic)
    ->Arg(15)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

void BM_StopTokenPoll(benchmark::State& state) {
  StopSource source;
  const StopToken token = source.token().with_deadline(3600);
  bool sink = false;
  for (auto _ : state) {
    sink ^= token.stop_requested();
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_StopTokenPoll);

void BM_StopTokenPollInert(benchmark::State& state) {
  const StopToken token;
  bool sink = false;
  for (auto _ : state) {
    sink ^= token.stop_requested();
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_StopTokenPollInert);

}  // namespace

BENCHMARK_MAIN();
