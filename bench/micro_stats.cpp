// Microbenchmarks guarding the observability layer's hot-path costs:
//   * string-keyed Stats::add vs a cached counter reference (the reason
//     HdpllSolver/sat::Solver resolve handles once at construction),
//   * Histogram::add (per-conflict recording must stay a few instructions),
//   * Tracer::record with tracing disabled (the default: one relaxed load
//     and a predicted branch) and enabled (ring push + periodic drain),
//   * ProgressReporter::tick when the report interval has not elapsed.
#include <benchmark/benchmark.h>

#include "trace/progress.h"
#include "trace/trace.h"
#include "util/stats.h"

using namespace rtlsat;

namespace {

void BM_StatsStringAdd(benchmark::State& state) {
  Stats stats;
  for (auto _ : state) {
    stats.add("hdpll.decisions", 1);
  }
  benchmark::DoNotOptimize(stats.get("hdpll.decisions"));
}
BENCHMARK(BM_StatsStringAdd);

void BM_StatsCachedCounter(benchmark::State& state) {
  Stats stats;
  std::int64_t& counter = stats.counter("hdpll.decisions");
  for (auto _ : state) {
    ++counter;
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_StatsCachedCounter);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h;
  std::int64_t v = 0;
  for (auto _ : state) {
    h.add(v++ & 1023);
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramAdd);

void BM_TracerDisabledRecord(benchmark::State& state) {
  trace::Tracer tracer;  // no sinks ⟹ disabled; record() is a branch
  for (auto _ : state) {
    tracer.record(trace::EventKind::kDecision, 3, 42, 1);
  }
  benchmark::DoNotOptimize(tracer.events_recorded());
}
BENCHMARK(BM_TracerDisabledRecord);

void BM_TracerEnabledRecord(benchmark::State& state) {
  trace::TracerOptions options;
  options.collect_in_memory = true;
  trace::Tracer tracer(options);
  std::int64_t since_drain = 0;
  for (auto _ : state) {
    tracer.record(trace::EventKind::kDecision, 3, 42, 1);
    if (++since_drain >= 65536) {
      since_drain = 0;
      benchmark::DoNotOptimize(tracer.drain());
    }
  }
  benchmark::DoNotOptimize(tracer.events_recorded());
}
BENCHMARK(BM_TracerEnabledRecord);

void BM_ProgressTickNotDue(benchmark::State& state) {
  trace::ProgressOptions options;
  options.banner = false;
  options.interval_seconds = 1e9;  // never due: measures the early-out
  trace::ProgressReporter reporter(options);
  trace::ProgressSnapshot snapshot;
  for (auto _ : state) {
    ++snapshot.conflicts;
    reporter.tick(snapshot);
  }
  benchmark::DoNotOptimize(reporter.reports());
}
BENCHMARK(BM_ProgressTickNotDue);

}  // namespace

BENCHMARK_MAIN();
