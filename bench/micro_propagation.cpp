// Microbenchmarks for the hybrid propagation engine: fixpoint throughput
// on BMC-shaped circuits and the cost of trail rollbacks.
#include <benchmark/benchmark.h>

#include "bmc/unroll.h"
#include "itc99/itc99.h"
#include "prop/engine.h"

using namespace rtlsat;

namespace {

void BM_PropagateGoalImplication(benchmark::State& state) {
  const auto seq = itc99::build("b13");
  const auto instance = bmc::unroll(seq, "1", static_cast<int>(state.range(0)));
  for (auto _ : state) {
    prop::Engine engine(instance.circuit);
    benchmark::DoNotOptimize(engine.narrow(
        instance.goal, Interval::point(1), prop::ReasonKind::kAssumption));
    benchmark::DoNotOptimize(engine.propagate());
    benchmark::DoNotOptimize(engine.trail().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PropagateGoalImplication)->Arg(5)->Arg(10)->Arg(20)->Arg(40)
    ->Complexity();

void BM_ProbeRollbackCycle(benchmark::State& state) {
  // The static learner's inner loop: decide, propagate, roll back.
  const auto seq = itc99::build("b04");
  const auto instance = bmc::unroll(seq, "2", 10);
  prop::Engine engine(instance.circuit);
  (void)engine.propagate();
  // Find some free Boolean nets to probe.
  std::vector<ir::NetId> probes;
  for (ir::NetId id = 0; id < instance.circuit.num_nets(); ++id) {
    if (instance.circuit.is_bool(id) && engine.bool_value(id) < 0)
      probes.push_back(id);
    if (probes.size() >= 64) break;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const ir::NetId net = probes[i++ % probes.size()];
    engine.push_level();
    if (engine.narrow(net, Interval::point(1), prop::ReasonKind::kDecision))
      (void)engine.propagate();
    engine.backtrack_to_level(0);
  }
}
BENCHMARK(BM_ProbeRollbackCycle);

void BM_EngineConstruction(benchmark::State& state) {
  const auto seq = itc99::build("b13");
  const auto instance = bmc::unroll(seq, "1", static_cast<int>(state.range(0)));
  for (auto _ : state) {
    prop::Engine engine(instance.circuit);
    benchmark::DoNotOptimize(engine.interval(instance.goal));
  }
}
BENCHMARK(BM_EngineConstruction)->Arg(10)->Arg(40);

}  // namespace

BENCHMARK_MAIN();
