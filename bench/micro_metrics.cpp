// Live-telemetry overhead guards (ISSUE 7 acceptance criteria).
//
// The contract mirrors micro_proof's: a solver holding a null SolverGauges
// pointer costs one predicted branch per conflict, so BM_HdpllNoMetrics
// must stay within measurement noise (≲1%) of micro_proof's BM_HdpllNoProof
// (identical workload). BM_HdpllGauges prices publication alone (relaxed
// stores + LBD at conflict boundaries, no sampler); BM_HdpllSampled adds a
// background 100 ms Sampler, which must not perturb the search — the
// byte-identical-counters half of that guarantee is checked by CI's
// counters-equality validation, this bench prices the wall-clock half.
// The registry micro benches bound the primitive costs the solver pays.
#include <benchmark/benchmark.h>

#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "itc99/itc99.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "metrics/solver_gauges.h"
#include "trace/sink.h"

using namespace rtlsat;

namespace {

bmc::BmcInstance b13_instance(int bound) {
  const auto seq = itc99::build("b13");
  return bmc::unroll(seq, "1", bound);
}

void solve_b13(const bmc::BmcInstance& instance,
               metrics::SolverGauges* gauges) {
  core::HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = true;
  options.gauges = gauges;
  core::HdpllSolver solver(instance.circuit, options);
  solver.assume_bool(instance.goal, true);
  benchmark::DoNotOptimize(solver.solve());
}

// Baseline: identical workload to micro_proof's BM_HdpllNoProof. The null
// gauges_ branch is the only code difference on this path.
void BM_HdpllNoMetrics(benchmark::State& state) {
  const auto instance = b13_instance(static_cast<int>(state.range(0)));
  for (auto _ : state) solve_b13(instance, nullptr);
}
BENCHMARK(BM_HdpllNoMetrics)->Arg(15)->Arg(30)->Unit(benchmark::kMillisecond);

// Publication only: gauges attached, nobody scraping.
void BM_HdpllGauges(benchmark::State& state) {
  const auto instance = b13_instance(static_cast<int>(state.range(0)));
  metrics::MetricsRegistry registry;
  metrics::SolverGauges gauges =
      metrics::make_solver_gauges(&registry, {{"bench", "micro"}});
  for (auto _ : state) solve_b13(instance, &gauges);
}
BENCHMARK(BM_HdpllGauges)->Arg(15)->Arg(30)->Unit(benchmark::kMillisecond);

// Publication + a live background sampler at the default 100 ms cadence
// (in-memory sink: prices scraping, not disk).
void BM_HdpllSampled(benchmark::State& state) {
  const auto instance = b13_instance(static_cast<int>(state.range(0)));
  metrics::MetricsRegistry registry;
  metrics::SolverGauges gauges =
      metrics::make_solver_gauges(&registry, {{"bench", "micro"}});
  metrics::SamplerOptions options;
  options.interval_seconds = 0.1;
  options.collect_in_memory = true;
  metrics::Sampler sampler(&registry, options);
  sampler.start();
  for (auto _ : state) solve_b13(instance, &gauges);
  sampler.stop();
  benchmark::DoNotOptimize(sampler.samples());
}
BENCHMARK(BM_HdpllSampled)->Arg(15)->Arg(30)->Unit(benchmark::kMillisecond);

// Primitive costs: what one solver publication step pays.
void BM_CounterAdd(benchmark::State& state) {
  metrics::MetricsRegistry registry;
  metrics::Counter* c = registry.counter("micro.counter");
  for (auto _ : state) c->add(1);
  benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeSet(benchmark::State& state) {
  metrics::MetricsRegistry registry;
  metrics::Gauge* g = registry.gauge("micro.gauge");
  std::int64_t i = 0;
  for (auto _ : state) g->set(++i);
  benchmark::DoNotOptimize(g->value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  metrics::MetricsRegistry registry;
  metrics::HistogramMetric* h = registry.histogram("micro.hist");
  std::int64_t i = 0;
  for (auto _ : state) h->observe(++i & 63);
  benchmark::DoNotOptimize(h->snapshot().count());
}
BENCHMARK(BM_HistogramObserve);

// One full scrape of a solver-sized registry — the per-tick sampler cost.
void BM_RegistryScrape(benchmark::State& state) {
  metrics::MetricsRegistry registry;
  for (int w = 0; w < 4; ++w) {
    (void)metrics::make_solver_gauges(&registry,
                                      {{"worker", std::to_string(w)}});
  }
  for (auto _ : state) benchmark::DoNotOptimize(registry.scrape());
}
BENCHMARK(BM_RegistryScrape);

}  // namespace

BENCHMARK_MAIN();
