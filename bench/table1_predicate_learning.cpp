// Reproduces paper Table 1: "Run-Time Analysis of Predicate Learning".
//
// Columns: instance, S/U result, relations learned, learning time, HDPLL
// runtime without and with predicate learning (no structural decisions —
// Table 1 isolates the §3 technique). Paper values are printed alongside
// for the rows the paper reports.
//
//   $ ./table1_predicate_learning                 # default (scaled) bounds
//   $ ./table1_predicate_learning --full          # the paper's full list
//   $ ./table1_predicate_learning --smoke         # tiny subset, for CI
//   $ ./table1_predicate_learning --json out.json # machine-readable rows
//   $ ./table1_predicate_learning --metrics ts.jsonl --sample-ms 100
//                                          # live telemetry time series
#include <cstring>
#include <vector>

#include "bench_common.h"

using namespace rtlsat;
using namespace rtlsat::bench;

namespace {

struct Row {
  const char* circuit;
  const char* property;
  int bound;
  double paper_plain;  // HDPLL column of Table 1 (seconds; <-1e8 = none)
  double paper_learn;  // HDPLL+pred-learn column
};

constexpr double kNone = -1e9;

// The paper's Table 1 rows with their reported runtimes.
const std::vector<Row> kFullRows = {
    {"b01", "1", 10, 0.01, 0.02}, {"b01", "1", 20, 0.48, 0.19},
    {"b02", "1", 10, 0.16, 0.16}, {"b02", "1", 20, 0.65, 0.51},
    {"b04", "1", 20, 0.04, 0.04}, {"b13", "5", 10, 0.01, 0.00},
    {"b13", "1", 10, 0.01, 0.00}, {"b13", "5", 20, 0.09, 0.13},
    {"b13", "1", 20, 0.04, 0.11}, {"b13", "5", 30, 0.56, 0.41},
    {"b13", "1", 30, 0.14, 0.43}, {"b13", "5", 50, 3.86, 0.22},
    {"b13", "1", 50, 4.99, 0.30}, {"b13", "5", 100, 111.63, 11.50},
    {"b13", "1", 100, 85.31, 1.27}, {"b13", "5", 200, 37.69, 1.96},
    {"b13", "1", 200, 56.24, 1.85}, {"b13", "1", 300, 587.42, 21.76},
};

// Scaled-down default so the whole bench suite runs in minutes.
const std::vector<Row> kQuickRows = {
    {"b01", "1", 10, 0.01, 0.02},  {"b01", "1", 20, 0.48, 0.19},
    {"b02", "1", 10, 0.16, 0.16},  {"b02", "1", 20, 0.65, 0.51},
    {"b04", "1", 20, 0.04, 0.04},  {"b13", "5", 10, 0.01, 0.00},
    {"b13", "1", 10, 0.01, 0.00},  {"b13", "5", 20, 0.09, 0.13},
    {"b13", "1", 20, 0.04, 0.11},  {"b13", "5", 30, 0.56, 0.41},
    {"b13", "1", 30, 0.14, 0.43},  {"b13", "5", 50, 3.86, 0.22},
    {"b13", "1", 50, 4.99, 0.30},  {"b13", "1", 100, 85.31, 1.27},
    {"b13", "5", 100, 111.63, 11.50}, {"b13", "5", 200, 37.69, 1.96},
    {"b13", "1", 200, 56.24, 1.85}, {"b13", "1", 300, 587.42, 21.76},
};

// Small known-fast instances so CI can exercise the full pipeline
// (including --json and tracing) in seconds.
const std::vector<Row> kSmokeRows = {
    {"b01", "1", 10, 0.01, 0.02},
    {"b02", "1", 10, 0.16, 0.16},
    {"b13", "5", 10, 0.01, 0.00},
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  const double timeout = args.smoke ? 10 : args.full ? 1200 : 60;
  const auto& rows =
      args.smoke ? kSmokeRows : args.full ? kFullRows : kQuickRows;
  BenchJson json("table1_predicate_learning", args.json_path);
  BenchMetrics metrics(args);

  std::printf(
      "Table 1 — Run-Time Analysis of Predicate Learning (paper values in "
      "brackets)\n");
  std::printf("%-14s %-4s %8s %10s | %18s %18s\n", "Ckt", "Type", "Rels",
              "LearnTime", "HDPLL", "HDPLL+PredLearn");

  for (const Row& row : rows) {
    const ir::SeqCircuit seq = itc99::build(row.circuit);
    const bmc::BmcInstance instance =
        bmc::unroll(seq, row.property, row.bound);

    // Plain HDPLL (Table 1's baseline has neither +S nor +P).
    core::HdpllOptions plain_options = make_options(Config::kHdpll, timeout, 0);
    plain_options.gauges = metrics.gauges();
    const RunResult plain = run_hdpll(instance, plain_options);

    // HDPLL with predicate learning, threshold 2500 as in §3.1.
    core::HdpllOptions learn_options =
        make_options(Config::kHdpll, timeout, 2500);
    learn_options.predicate_learning = true;
    learn_options.gauges = metrics.gauges();
    const RunResult learned = run_hdpll(instance, learn_options);

    const std::string name = str_format("%s_%s(%d)", row.circuit,
                                        row.property, row.bound);
    json.add_row(name, "HDPLL", plain);
    json.add_row(name, "HDPLL+PredLearn", learned);
    std::printf("%-14s %-4c %8d %10.2f | %8s [%7s] %8s [%7s]\n", name.c_str(),
                learned.verdict, learned.learning.relations_learned,
                learned.learning.seconds, cell(plain).c_str(),
                paper_cell(row.paper_plain).c_str(), cell(learned).c_str(),
                paper_cell(row.paper_learn).c_str());
    if (args.presolve) {
      const RunResult presolved = run_hdpll_presolved(instance, learn_options);
      json.add_row(name, "HDPLL+PredLearn+presolve", presolved);
      std::printf("%-14s   +presolve %8s (removed %lld nets, shaved %lld "
                  "bits)\n",
                  name.c_str(), cell(presolved).c_str(),
                  static_cast<long long>(
                      presolved.stats.get("presolve.nets_removed")),
                  static_cast<long long>(
                      presolved.stats.get("presolve.width_bits_shaved")));
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nShape targets (§3.1): learning overhead dominates at small bounds; "
      "2x-80x wins on the large b13 instances.\n");
  metrics.stop();
  json.set_metrics_samples(metrics.samples());
  return 0;
}
