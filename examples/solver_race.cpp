// Races the word-level solver configurations against the bit-blasting
// baseline on one BMC instance — a one-instance preview of the paper's
// Table 2 comparison.
//
//   $ ./solver_race [circuit] [property] [bound]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bitblast/bitblast.h"
#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "itc99/itc99.h"
#include "util/timer.h"

using namespace rtlsat;

namespace {

void report(const char* name, const char* verdict, double seconds) {
  std::printf("  %-22s %-8s %8.3fs\n", name, verdict, seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string circuit_name = argc > 1 ? argv[1] : "b13";
  const std::string property = argc > 2 ? argv[2] : "1";
  const int bound = argc > 3 ? std::atoi(argv[3]) : 15;

  const ir::SeqCircuit seq = itc99::build(circuit_name);
  const bmc::BmcInstance instance = bmc::unroll(seq, property, bound);
  const auto counts = instance.circuit.op_counts();
  std::printf("%s — %zu arith / %zu bool ops\n", instance.name.c_str(),
              counts.arith, counts.boolean);

  struct Config {
    const char* name;
    bool structural;
    bool learning;
  };
  for (const Config config : {Config{"HDPLL", false, false},
                              Config{"HDPLL+S", true, false},
                              Config{"HDPLL+S+P", true, true}}) {
    core::HdpllOptions options;
    options.structural_decisions = config.structural;
    options.predicate_learning = config.learning;
    options.timeout_seconds = 120;
    core::HdpllSolver solver(instance.circuit, options);
    solver.assume_bool(instance.goal, true);
    const core::SolveResult result = solver.solve();
    report(config.name,
           result.status == core::SolveStatus::kSat     ? "SAT"
           : result.status == core::SolveStatus::kUnsat ? "UNSAT"
                                                        : "timeout",
           result.seconds);
  }

  {
    Timer timer;
    sat::SolverOptions options;
    options.timeout_seconds = 120;
    const auto oracle =
        bitblast::check_sat(instance.circuit, instance.goal, true, options);
    report("bit-blast + CDCL",
           oracle.result == sat::Result::kSat     ? "SAT"
           : oracle.result == sat::Result::kUnsat ? "UNSAT"
                                                  : "timeout",
           timer.seconds());
  }
  return 0;
}
