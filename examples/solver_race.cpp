// Races the solver configurations on one BMC instance — a one-instance
// preview of the paper's Table 2 comparison, now on the parallel portfolio
// (src/portfolio): N workers, first verdict wins, losers are cooperatively
// cancelled, HDPLL workers share predicate clauses.
//
//   $ ./solver_race [circuit] [property] [bound] [flags]
//
// Flags:
//   --jobs N          worker count (default 4)
//   --no-share        disable predicate-clause sharing
//   --deterministic   sequential deterministic mode (reproducible runs)
//   --budget S        wall-clock budget in seconds (default 120)
//   --json PATH       machine-readable report with per-worker rows
//   --metrics PATH    sample per-worker live telemetry (decisions/sec,
//                     clause-DB bytes, RSS …) into a JSONL time series
//   --sample-ms N     sampling interval for --metrics (default 100)
//   --progress PATH   per-worker heartbeat JSONL ("worker"-tagged lines)
//   --sequential      legacy mode: run the four configurations one after
//                     another, no portfolio (the pre-portfolio behaviour)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bitblast/bitblast.h"
#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "itc99/itc99.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "portfolio/portfolio.h"
#include "trace/json.h"
#include "trace/sink.h"
#include "util/timer.h"

using namespace rtlsat;

namespace {

void report(const std::string& name, const char* verdict, double seconds) {
  std::printf("  %-22s %-9s %8.3fs\n", name.c_str(), verdict, seconds);
}

const char* verdict_word(char v) {
  switch (v) {
    case 'S': return "SAT";
    case 'U': return "UNSAT";
    case 'T': return "timeout";
    case 'C': return "cancelled";
    default: return "?";
  }
}

int run_sequential(const bmc::BmcInstance& instance, double budget) {
  struct Config {
    const char* name;
    bool structural;
    bool learning;
  };
  for (const Config config : {Config{"HDPLL", false, false},
                              Config{"HDPLL+S", true, false},
                              Config{"HDPLL+S+P", true, true}}) {
    core::HdpllOptions options;
    options.structural_decisions = config.structural;
    options.predicate_learning = config.learning;
    options.timeout_seconds = budget;
    core::HdpllSolver solver(instance.circuit, options);
    solver.assume_bool(instance.goal, true);
    const core::SolveResult result = solver.solve();
    report(config.name,
           result.status == core::SolveStatus::kSat     ? "SAT"
           : result.status == core::SolveStatus::kUnsat ? "UNSAT"
                                                        : "timeout",
           result.seconds);
  }

  Timer timer;
  sat::SolverOptions options;
  options.timeout_seconds = budget;
  const auto oracle =
      bitblast::check_sat(instance.circuit, instance.goal, true, options);
  report("bit-blast + CDCL",
         oracle.result == sat::Result::kSat     ? "SAT"
         : oracle.result == sat::Result::kUnsat ? "UNSAT"
                                                : "timeout",
         timer.seconds());
  return 0;
}

void write_json(const std::string& path, const bmc::BmcInstance& instance,
                const portfolio::PortfolioResult& result) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("instance").value(instance.name);
  const char status[2] = {result.winner >= 0
                              ? result.workers[result.winner].verdict
                              : 'T',
                          '\0'};
  w.key("verdict").value(status);
  w.key("winner").value(result.winner_name);
  w.key("seconds").value(result.seconds);
  w.key("crosscheck_violations")
      .value(static_cast<std::int64_t>(result.crosscheck_violations.size()));
  w.key("workers").begin_array();
  for (const portfolio::WorkerReport& worker : result.workers) {
    w.begin_object();
    w.key("name").value(worker.name);
    const char verdict[2] = {worker.verdict, '\0'};
    w.key("verdict").value(verdict);
    w.key("seconds").value(worker.seconds);
    w.key("clauses_exported").value(worker.clauses_exported);
    w.key("clauses_imported").value(worker.clauses_imported);
    w.key("cancel_latency").value(worker.cancel_latency);
    w.end_object();
  }
  w.end_array();
  w.key("counters").begin_object();
  for (const auto& [name, value] : result.stats.all()) {
    w.key(name).value(value);
  }
  w.end_object();
  w.end_object();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write json to %s\n", path.c_str());
    return;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit_name = "b13";
  std::string property = "1";
  int bound = 15;
  int jobs = 4;
  bool share = true;
  bool deterministic = false;
  bool sequential = false;
  double budget = 120;
  std::string json_path;
  std::string metrics_path;
  std::string progress_path;
  int sample_ms = 100;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-share") == 0) {
      share = false;
    } else if (std::strcmp(argv[i], "--deterministic") == 0) {
      deterministic = true;
    } else if (std::strcmp(argv[i], "--sequential") == 0) {
      sequential = true;
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      budget = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--progress") == 0 && i + 1 < argc) {
      progress_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sample-ms") == 0 && i + 1 < argc) {
      sample_ms = std::atoi(argv[++i]);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    } else if (positional == 0) {
      circuit_name = argv[i];
      ++positional;
    } else if (positional == 1) {
      property = argv[i];
      ++positional;
    } else {
      bound = std::atoi(argv[i]);
      ++positional;
    }
  }
  if (jobs < 1) {
    std::fprintf(stderr, "--jobs must be >= 1\n");
    return 2;
  }

  const ir::SeqCircuit seq = itc99::build(circuit_name);
  const bmc::BmcInstance instance = bmc::unroll(seq, property, bound);
  const auto counts = instance.circuit.op_counts();
  std::printf("%s — %zu arith / %zu bool ops\n", instance.name.c_str(),
              counts.arith, counts.boolean);

  if (sequential) return run_sequential(instance, budget);

  portfolio::PortfolioOptions options;
  options.jobs = jobs;
  options.share_clauses = share;
  options.deterministic = deterministic;
  options.budget_seconds = budget;

  metrics::MetricsRegistry registry;
  std::unique_ptr<trace::JsonlSink> metrics_sink;
  std::unique_ptr<metrics::Sampler> sampler;
  if (!metrics_path.empty()) {
    metrics_sink = std::make_unique<trace::JsonlSink>(metrics_path);
    metrics::SamplerOptions sampler_options;
    sampler_options.sink = metrics_sink.get();
    sampler_options.interval_seconds = std::max(sample_ms, 1) / 1000.0;
    sampler = std::make_unique<metrics::Sampler>(&registry, sampler_options);
    options.metrics = &registry;
    sampler->start();
  }
  std::unique_ptr<trace::JsonlSink> progress_sink;
  if (!progress_path.empty()) {
    progress_sink = std::make_unique<trace::JsonlSink>(progress_path);
    options.progress_sink = progress_sink.get();
  }

  portfolio::Portfolio race(instance.circuit, instance.goal, true, options);
  const portfolio::PortfolioResult result = race.solve();
  if (sampler != nullptr) {
    sampler->stop();
    std::printf("metrics: %lld samples -> %s\n",
                static_cast<long long>(sampler->samples()),
                metrics_path.c_str());
  }

  std::printf("portfolio: %d workers%s%s\n", jobs, share ? "" : ", no sharing",
              deterministic ? ", deterministic" : "");
  for (const portfolio::WorkerReport& worker : result.workers) {
    report(worker.name, verdict_word(worker.verdict), worker.seconds);
    if (worker.cancel_latency >= 0) {
      std::printf("  %-22s cancelled after %.1f ms\n", "",
                  worker.cancel_latency * 1e3);
    }
    if (worker.clauses_exported > 0 || worker.clauses_imported > 0) {
      std::printf("  %-22s shared: %lld exported, %lld imported\n", "",
                  static_cast<long long>(worker.clauses_exported),
                  static_cast<long long>(worker.clauses_imported));
    }
  }
  switch (result.status) {
    case core::SolveStatus::kSat:
      std::printf("winner: %s — SAT in %.3fs\n", result.winner_name.c_str(),
                  result.seconds);
      break;
    case core::SolveStatus::kUnsat:
      std::printf("winner: %s — UNSAT in %.3fs\n", result.winner_name.c_str(),
                  result.seconds);
      break;
    default:
      std::printf("no verdict within the %.0fs budget\n", budget);
      break;
  }
  for (const std::string& v : result.crosscheck_violations) {
    std::fprintf(stderr, "CROSSCHECK VIOLATION: %s\n", v.c_str());
  }

  if (!json_path.empty()) write_json(json_path, instance, result);
  return result.crosscheck_violations.empty() ? 0 : 1;
}
