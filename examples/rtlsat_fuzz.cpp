// rtlsat_fuzz — the differential fuzzing driver (docs/fuzzing.md).
//
// Generates random word-level instances, runs each through the full oracle
// matrix (three HDPLL configs, bit-blast CDCL, deterministic portfolio,
// brute force at small widths), and on any disagreement delta-reduces the
// instance and writes a minimal .rtl repro. Also interleaves the
// property-based fuzzers for the interval rules and the FME solver.
//
//   rtlsat_fuzz --seconds 60 --seed 1            # CI smoke shape
//   rtlsat_fuzz --iters 200 --mode circuits      # fixed instance count
//   rtlsat_fuzz --replay tests/regress/foo.rtl   # re-run one repro
//
// Exit status: 0 all checks agreed, 1 at least one mismatch, 2 usage error.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/op_fuzz.h"
#include "fuzz/oracle.h"
#include "fuzz/reduce.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace rtlsat;

namespace {

struct Args {
  double seconds = 0;    // 0 ⟹ use iters
  int iters = 100;
  std::uint64_t seed = 1;
  std::string mode = "all";  // all | circuits | ops | fme | presolve
  std::string out_dir = "fuzz-repros";
  std::string replay_path;
  int max_width = 12;
  double timeout = 10;
  unsigned seq_percent = 20;
  unsigned wide_percent = 15;
  bool portfolio = true;
  bool quiet = false;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --seconds S       run until S wall-clock seconds elapse\n"
      << "  --iters N         run N iterations (default 100; ignored with --seconds)\n"
      << "  --seed K          base RNG seed (default 1)\n"
      << "  --mode M          all | circuits | ops | fme | presolve (default all)\n"
      << "  --out DIR         repro output directory (default fuzz-repros)\n"
      << "  --max-width W     largest base word width (default 12)\n"
      << "  --timeout T       per-engine solver timeout in seconds (default 10)\n"
      << "  --seq-percent P   share of sequential/BMC instances (default 20)\n"
      << "  --wide-percent P  share of near-kMaxWidth stress instances (default 15)\n"
      << "  --no-portfolio    drop the portfolio front-end from the matrix\n"
      << "  --replay FILE     run the oracle on one .rtl repro and exit\n"
      << "  --quiet           only report mismatches and the final summary\n";
  return 2;
}

struct Counters {
  std::int64_t instances = 0;
  std::int64_t sat = 0;
  std::int64_t unsat = 0;
  std::int64_t timeouts = 0;
  std::int64_t op_checks = 0;
  std::int64_t mismatches = 0;
  std::int64_t repros_written = 0;
};

fuzz::OracleOptions oracle_options(const Args& args) {
  fuzz::OracleOptions o;
  o.timeout_seconds = args.timeout;
  o.run_portfolio = args.portfolio;
  return o;
}

void report_mismatch(const std::string& what,
                     const std::vector<std::string>& details) {
  std::cerr << "MISMATCH: " << what << '\n';
  for (const std::string& d : details) std::cerr << "  " << d << '\n';
}

// Reduce a disagreeing instance and write the shrunken repro. The
// interestingness predicate is "the oracle still flags it" — run without
// the portfolio to keep the many reduction probes cheap; the verdict
// engines alone re-derive any disagreement the portfolio can.
void reduce_and_write(const ir::Circuit& circuit, ir::NetId goal,
                      const Args& args, Counters& counters,
                      std::uint64_t instance_seed,
                      const fuzz::Interesting& still_failing) {
  fuzz::ReduceResult reduced;
  try {
    reduced = fuzz::reduce(circuit, goal, still_failing);
  } catch (const std::exception& e) {
    std::cerr << "  reduction failed (" << e.what()
              << "); writing the unreduced instance\n";
    reduced.circuit = circuit;
    reduced.goal = goal;
  }
  std::filesystem::create_directories(args.out_dir);
  const std::string path = args.out_dir + "/mismatch-seed" +
                           std::to_string(instance_seed) + ".rtl";
  std::ofstream out(path);
  out << "; rtlsat_fuzz repro, instance seed " << instance_seed << "\n"
      << "; reduced " << reduced.initial_nodes << " -> "
      << reduced.final_nodes << " nets in " << reduced.attempts
      << " attempts\n"
      << fuzz::write_repro(reduced.circuit, reduced.goal);
  ++counters.repros_written;
  std::cerr << "  repro written to " << path << " (" << reduced.final_nodes
            << " nets)\n";
}

void run_circuit_instance(const Args& args, std::uint64_t instance_seed,
                          Counters& counters) {
  Rng rng(instance_seed);
  fuzz::GeneratorOptions gen;
  gen.max_width = args.max_width;
  gen.sequential_percent = args.seq_percent;
  gen.wide_stress_percent = args.wide_percent;
  const fuzz::FuzzInstance inst = fuzz::generate(rng, gen);

  const fuzz::OracleReport report =
      fuzz::run_oracle(inst.circuit, inst.goal, oracle_options(args));
  ++counters.instances;
  if (report.consensus == 'S') ++counters.sat;
  if (report.consensus == 'U') ++counters.unsat;
  if (report.consensus == '?') ++counters.timeouts;
  if (!args.quiet) {
    std::cout << "[" << instance_seed << "] " << inst.description << ": "
              << report.summary() << '\n';
  }
  if (report.ok()) return;
  counters.mismatches += static_cast<std::int64_t>(report.mismatches.size());
  report_mismatch("instance seed " + std::to_string(instance_seed) + " (" +
                      inst.description + ")",
                  report.mismatches);
  fuzz::OracleOptions probe = oracle_options(args);
  probe.run_portfolio = false;
  reduce_and_write(inst.circuit, inst.goal, args, counters, instance_seed,
                   [&probe](const ir::Circuit& c, ir::NetId g) {
                     return !fuzz::run_oracle(c, g, probe).ok();
                   });
}

// The presolve soundness mode: presolved-vs-original differential check
// (verdicts, witness transfer through the net map, fact audits).
void run_presolve_instance(const Args& args, std::uint64_t instance_seed,
                           Counters& counters) {
  Rng rng(instance_seed);
  fuzz::GeneratorOptions gen;
  gen.max_width = args.max_width;
  gen.sequential_percent = args.seq_percent;
  gen.wide_stress_percent = args.wide_percent;
  const fuzz::FuzzInstance inst = fuzz::generate(rng, gen);

  const std::vector<std::string> violations =
      fuzz::compare_presolve(inst.circuit, inst.goal, oracle_options(args));
  ++counters.instances;
  if (!args.quiet) {
    std::cout << "[" << instance_seed << "] presolve " << inst.description
              << (violations.empty() ? ": ok" : ": MISMATCH") << '\n';
  }
  if (violations.empty()) return;
  counters.mismatches += static_cast<std::int64_t>(violations.size());
  report_mismatch("presolve, instance seed " + std::to_string(instance_seed) +
                      " (" + inst.description + ")",
                  violations);
  fuzz::OracleOptions probe = oracle_options(args);
  reduce_and_write(inst.circuit, inst.goal, args, counters, instance_seed,
                   [&probe](const ir::Circuit& c, ir::NetId g) {
                     return !fuzz::compare_presolve(c, g, probe).empty();
                   });
}

void run_op_round(std::uint64_t round_seed, Counters& counters,
                  bool include_fme, bool include_intervals) {
  Rng rng(round_seed);
  if (include_intervals) {
    const std::vector<std::string> v = fuzz::fuzz_interval_ops(rng, 2000);
    counters.op_checks += 2000;
    if (!v.empty()) {
      counters.mismatches += static_cast<std::int64_t>(v.size());
      report_mismatch("interval ops, round seed " + std::to_string(round_seed),
                      v);
    }
  }
  if (include_fme) {
    const std::vector<std::string> v = fuzz::fuzz_fme(rng, 200);
    counters.op_checks += 200;
    if (!v.empty()) {
      counters.mismatches += static_cast<std::int64_t>(v.size());
      report_mismatch("fme, round seed " + std::to_string(round_seed), v);
    }
  }
}

int replay(const Args& args) {
  ir::NetId goal = ir::kNoNet;
  ir::Circuit circuit = fuzz::load_repro_file(args.replay_path, &goal);
  const fuzz::OracleReport report =
      fuzz::run_oracle(circuit, goal, oracle_options(args));
  std::cout << args.replay_path << ": " << report.summary() << '\n';
  if (!report.ok()) {
    report_mismatch(args.replay_path, report.mismatches);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << a << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seconds") args.seconds = std::atof(value());
    else if (a == "--iters") args.iters = std::atoi(value());
    else if (a == "--seed") args.seed = std::strtoull(value(), nullptr, 10);
    else if (a == "--mode") args.mode = value();
    else if (a == "--out") args.out_dir = value();
    else if (a == "--max-width") args.max_width = std::atoi(value());
    else if (a == "--timeout") args.timeout = std::atof(value());
    else if (a == "--seq-percent")
      args.seq_percent = static_cast<unsigned>(std::atoi(value()));
    else if (a == "--wide-percent")
      args.wide_percent = static_cast<unsigned>(std::atoi(value()));
    else if (a == "--no-portfolio") args.portfolio = false;
    else if (a == "--replay") args.replay_path = value();
    else if (a == "--quiet") args.quiet = true;
    else return usage(argv[0]);
  }
  if (args.mode != "all" && args.mode != "circuits" && args.mode != "ops" &&
      args.mode != "fme" && args.mode != "presolve") {
    return usage(argv[0]);
  }
  if (args.max_width < 2 || args.max_width > ir::kMaxWidth) {
    std::cerr << "--max-width must be in [2, " << ir::kMaxWidth << "]\n";
    return 2;
  }

  try {
    if (!args.replay_path.empty()) return replay(args);

    Counters counters;
    Timer timer;
    // Each iteration draws its own Rng from a distinct seed, so any
    // mismatch is reproducible from its instance seed alone regardless of
    // how many iterations ran before it.
    std::uint64_t i = 0;
    const auto keep_going = [&] {
      return args.seconds > 0 ? timer.seconds() < args.seconds
                              : i < static_cast<std::uint64_t>(args.iters);
    };
    for (; keep_going(); ++i) {
      const std::uint64_t instance_seed =
          args.seed + i * 0x9e3779b97f4a7c15ULL;
      if (args.mode == "circuits") {
        run_circuit_instance(args, instance_seed, counters);
      } else if (args.mode == "ops") {
        run_op_round(instance_seed, counters, /*include_fme=*/false,
                     /*include_intervals=*/true);
      } else if (args.mode == "fme") {
        run_op_round(instance_seed, counters, /*include_fme=*/true,
                     /*include_intervals=*/false);
      } else if (args.mode == "presolve") {
        run_presolve_instance(args, instance_seed, counters);
      } else {
        // Mode all: mostly circuits, with op/fme and presolve rounds
        // interleaved.
        if (i % 10 == 8) {
          run_op_round(instance_seed, counters, true, true);
        } else if (i % 10 == 4) {
          run_presolve_instance(args, instance_seed, counters);
        } else {
          run_circuit_instance(args, instance_seed, counters);
        }
      }
    }

    std::cout << "rtlsat_fuzz: " << counters.instances << " instances ("
              << counters.sat << " sat, " << counters.unsat << " unsat, "
              << counters.timeouts << " undecided), " << counters.op_checks
              << " op-fuzz rounds, " << counters.mismatches << " mismatches, "
              << counters.repros_written << " repros, "
              << static_cast<std::int64_t>(timer.seconds()) << " s\n";
    return counters.mismatches == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "rtlsat_fuzz: fatal: " << e.what() << '\n';
    return 1;
  }
}
