// Schema validator for the observability layer's machine-readable outputs,
// used by CI to prove that what the benches and the tracer emit actually
// parses back and carries the documented fields (docs/observability.md).
//
//   $ ./bench_json_validate bench  BENCH_table1.json   # bench --json output
//   $ ./bench_json_validate race   race.json           # solver_race --json
//   $ ./bench_json_validate chrome out.trace.json      # Chrome trace_event
//   $ ./bench_json_validate jsonl  out.jsonl           # tracer JSONL lines
//   $ ./bench_json_validate timeseries ts.jsonl        # sampler time series
//   $ ./bench_json_validate trajectory BENCH_*.json    # trajectory runner
//   $ ./bench_json_validate loadgen loadgen.json       # serve loadgen --json
//   $ ./bench_json_validate counters a.json b.json     # two bench --json
//                              # files must have identical solver counters
//                              # (time.* stripped) — the zero-drift gate
//
// Exit 0 when the file is valid; prints the first violation and exits 1
// otherwise.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "metrics/trajectory.h"
#include "trace/json.h"

using rtlsat::trace::JsonValue;
using rtlsat::trace::json_parse;

namespace {

bool fail(const std::string& message) {
  std::fprintf(stderr, "invalid: %s\n", message.c_str());
  return false;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool require_number(const JsonValue& object, const char* name,
                    const std::string& where) {
  const JsonValue* v = object.find(name);
  if (v == nullptr || !v->is_number())
    return fail(where + ": missing numeric field '" + name + "'");
  return true;
}

bool require_string(const JsonValue& object, const char* name,
                    const std::string& where) {
  const JsonValue* v = object.find(name);
  if (v == nullptr || !v->is_string())
    return fail(where + ": missing string field '" + name + "'");
  return true;
}

bool valid_verdict(const std::string& verdict) {
  return verdict == "S" || verdict == "U" || verdict == "T" ||
         verdict == "C" || verdict == "?";
}

// Per-worker array shared by bench portfolio rows and race documents.
bool validate_workers(const JsonValue& workers, const std::string& where) {
  if (!workers.is_array()) return fail(where + ": 'workers' is not an array");
  for (std::size_t j = 0; j < workers.array.size(); ++j) {
    const JsonValue& worker = workers.array[j];
    const std::string wwhere = where + ".workers[" + std::to_string(j) + "]";
    if (!worker.is_object()) return fail(wwhere + ": not an object");
    if (!require_string(worker, "name", wwhere)) return false;
    if (!require_string(worker, "verdict", wwhere)) return false;
    if (!require_number(worker, "seconds", wwhere)) return false;
    if (!require_number(worker, "clauses_exported", wwhere)) return false;
    if (!require_number(worker, "clauses_imported", wwhere)) return false;
    if (!require_number(worker, "cancel_latency", wwhere)) return false;
  }
  return true;
}

// Proof-logging counters flow from the solver into each row's counters
// when RTLSAT_PROOF is set (docs/proofs.md): every proof.* value must be
// a non-negative number, and proof.rejected must be zero — a rejected
// certificate anywhere in the run fails the whole document, which is how
// the CI proof-check job turns a bad proof into a red build.
bool validate_proof_counters(const JsonValue& counters,
                             const std::string& where, std::size_t* seen) {
  for (const auto& [key, value] : counters.object) {
    if (key.rfind("proof.", 0) != 0) continue;
    if (!value.is_number() || value.number < 0)
      return fail(where + ": counter '" + key +
                  "' is not a non-negative number");
    if (key == "proof.rejected" && value.number != 0)
      return fail(where + ": proof.rejected is " +
                  std::to_string(static_cast<long long>(value.number)) +
                  " (a certificate was rejected)");
    ++*seen;
  }
  return true;
}

// Presolve-lane rows (config contains "presolve", emitted by the table
// benches under --presolve) must carry the presolve.* rewrite counters:
// every one a non-negative number, and at least one present — a lane that
// stops exporting them would otherwise go green while the bench trajectory
// silently loses its presolve signal.
bool validate_presolve_counters(const JsonValue& row,
                                const JsonValue& counters,
                                const std::string& where, std::size_t* seen) {
  std::size_t in_row = 0;
  for (const auto& [key, value] : counters.object) {
    if (key.rfind("presolve.", 0) != 0) continue;
    if (!value.is_number() || value.number < 0)
      return fail(where + ": counter '" + key +
                  "' is not a non-negative number");
    ++in_row;
  }
  const JsonValue* config = row.find("config");
  const bool presolve_row =
      config != nullptr && config->is_string() &&
      config->string.find("presolve") != std::string::npos;
  if (presolve_row && in_row == 0)
    return fail(where + ": presolve row carries no presolve.* counters");
  *seen += in_row;
  return true;
}

// {"bench": "...", "rows": [{instance, config, verdict, seconds, ...}]}
bool validate_bench(const std::string& text) {
  JsonValue doc;
  std::string error;
  if (!json_parse(text, &doc, &error)) return fail(error);
  if (!doc.is_object()) return fail("top level is not an object");
  if (!require_string(doc, "bench", "top level")) return false;
  const JsonValue* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array())
    return fail("top level: missing array field 'rows'");
  std::size_t proof_counters = 0;
  std::size_t presolve_counters = 0;
  for (std::size_t i = 0; i < rows->array.size(); ++i) {
    const JsonValue& row = rows->array[i];
    const std::string where = "rows[" + std::to_string(i) + "]";
    if (!row.is_object()) return fail(where + ": not an object");
    if (!require_string(row, "instance", where)) return false;
    if (!require_string(row, "config", where)) return false;
    if (!require_string(row, "verdict", where)) return false;
    const std::string& verdict = row.find("verdict")->string;
    if (!valid_verdict(verdict))
      return fail(where + ": verdict '" + verdict + "' is not S/U/T/C/?");
    if (!require_number(row, "seconds", where)) return false;
    const JsonValue* counters = row.find("counters");
    if (counters == nullptr || !counters->is_object())
      return fail(where + ": missing object field 'counters'");
    if (!validate_proof_counters(*counters, where, &proof_counters))
      return false;
    if (!validate_presolve_counters(row, *counters, where,
                                    &presolve_counters)) {
      return false;
    }
    // Portfolio rows additionally carry a per-worker array.
    const JsonValue* workers = row.find("workers");
    if (workers != nullptr && !validate_workers(*workers, where)) return false;
  }
  std::printf("ok: %zu bench rows (%zu proof counters, %zu presolve "
              "counters)\n",
              rows->array.size(), proof_counters, presolve_counters);
  return true;
}

// solver_race --json: {instance, verdict, winner, seconds,
//  crosscheck_violations, workers: [...], counters: {...}}
bool validate_race(const std::string& text) {
  JsonValue doc;
  std::string error;
  if (!json_parse(text, &doc, &error)) return fail(error);
  if (!doc.is_object()) return fail("top level is not an object");
  const std::string where = "top level";
  if (!require_string(doc, "instance", where)) return false;
  if (!require_string(doc, "verdict", where)) return false;
  const std::string& verdict = doc.find("verdict")->string;
  if (!valid_verdict(verdict))
    return fail(where + ": verdict '" + verdict + "' is not S/U/T/C/?");
  if (!require_string(doc, "winner", where)) return false;
  if (!require_number(doc, "seconds", where)) return false;
  if (!require_number(doc, "crosscheck_violations", where)) return false;
  const JsonValue* counters = doc.find("counters");
  if (counters == nullptr || !counters->is_object())
    return fail(where + ": missing object field 'counters'");
  const JsonValue* workers = doc.find("workers");
  if (workers == nullptr)
    return fail(where + ": missing array field 'workers'");
  if (!validate_workers(*workers, where)) return false;
  std::printf("ok: race with %zu workers\n", workers->array.size());
  return true;
}

// {"displayTimeUnit": "ms", "traceEvents": [{ph, ts, name, ...}]}
bool validate_chrome(const std::string& text) {
  JsonValue doc;
  std::string error;
  if (!json_parse(text, &doc, &error)) return fail(error);
  if (!doc.is_object()) return fail("top level is not an object");
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array())
    return fail("top level: missing array field 'traceEvents'");
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    const std::string where = "traceEvents[" + std::to_string(i) + "]";
    if (!ev.is_object()) return fail(where + ": not an object");
    if (!require_string(ev, "ph", where)) return false;
    if (!require_number(ev, "ts", where)) return false;
    if (!require_string(ev, "name", where)) return false;
  }
  std::printf("ok: %zu trace events\n", events->array.size());
  return true;
}

// One JSON object per line, each with t_us/kind (trace events) or
// t_seconds/conflicts (progress heartbeats). Heartbeats come in two
// accepted forms: the pre-versioning shape (no "v") and the versioned
// shape, which must carry v == 1 and a numeric, per-stream non-decreasing
// sequence number "seq" (streams are keyed by the optional "worker" label —
// the serve wire protocol relies on both fields to detect dropped lines).
bool validate_jsonl(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  std::size_t count = 0;
  std::size_t lineno = 0;
  std::map<std::string, double> last_seq;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue doc;
    std::string error;
    if (!json_parse(line, &doc, &error))
      return fail("line " + std::to_string(lineno) + ": " + error);
    const std::string where = "line " + std::to_string(lineno);
    if (!doc.is_object()) return fail(where + ": not an object");
    const bool is_event = doc.find("kind") != nullptr;
    const bool is_heartbeat = doc.find("conflicts") != nullptr;
    if (!is_event && !is_heartbeat)
      return fail(where + ": neither a trace event ('kind') nor a progress "
                          "heartbeat ('conflicts')");
    if (is_event) {
      if (!require_number(doc, "t_us", where)) return false;
      if (!require_string(doc, "kind", where)) return false;
      if (!require_number(doc, "level", where)) return false;
    } else {
      if (!require_number(doc, "conflicts", where)) return false;
      if (!require_number(doc, "decisions", where)) return false;
      const JsonValue* version = doc.find("v");
      if (version != nullptr) {
        if (!version->is_number() || version->number != 1)
          return fail(where + ": unsupported heartbeat schema version");
        if (!require_number(doc, "seq", where)) return false;
        const JsonValue* worker = doc.find("worker");
        const std::string stream =
            worker != nullptr && worker->is_string() ? worker->string : "";
        const double seq = doc.find("seq")->number;
        const auto it = last_seq.find(stream);
        if (it != last_seq.end() && seq <= it->second)
          return fail(where + ": heartbeat seq did not advance for stream '" +
                      stream + "'");
        last_seq[stream] = seq;
      }
    }
    ++count;
  }
  std::printf("ok: %zu jsonl records\n", count);
  return true;
}

// Sampler time series (docs/observability.md "Time-series schema"): one
// JSON object per line with numeric t_s and string source; timestamps are
// non-decreasing per source; every other field is a number or a string
// (label echo); "process" lines carry rss_kb/rss_peak_kb.
bool validate_timeseries(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  std::size_t count = 0;
  std::size_t lineno = 0;
  std::map<std::string, double> last_t;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue doc;
    std::string error;
    if (!json_parse(line, &doc, &error))
      return fail("line " + std::to_string(lineno) + ": " + error);
    const std::string where = "line " + std::to_string(lineno);
    if (!doc.is_object()) return fail(where + ": not an object");
    if (!require_number(doc, "t_s", where)) return false;
    if (!require_string(doc, "source", where)) return false;
    const double t = doc.find("t_s")->number;
    const std::string& source = doc.find("source")->string;
    const auto it = last_t.find(source);
    if (it != last_t.end() && t < it->second)
      return fail(where + ": t_s moves backwards for source '" + source + "'");
    last_t[source] = t;
    if (source == "process") {
      if (!require_number(doc, "rss_kb", where)) return false;
      if (!require_number(doc, "rss_peak_kb", where)) return false;
    }
    for (const auto& [key, value] : doc.object) {
      if (!value.is_number() && !value.is_string())
        return fail(where + ": field '" + key +
                    "' is neither a number nor a string");
    }
    ++count;
  }
  if (count == 0) return fail("no samples");
  std::printf("ok: %zu samples over %zu sources\n", count, last_t.size());
  return true;
}

// Trajectory files delegate the heavy lifting to the same parser the
// bench_compare gate uses, then check what the comparison relies on.
bool validate_trajectory(const std::string& text) {
  rtlsat::metrics::Trajectory t;
  std::string error;
  if (!rtlsat::metrics::trajectory_from_json(text, &t, &error))
    return fail(error);
  if (t.schema != rtlsat::metrics::kTrajectorySchema)
    return fail("schema is '" + t.schema + "', expected '" +
                rtlsat::metrics::kTrajectorySchema + "'");
  if (t.utc_date.empty()) return fail("missing utc_date");
  if (t.git_sha.empty()) return fail("missing git_sha");
  if (t.fingerprint.host.empty() || t.fingerprint.cpu.empty() ||
      t.fingerprint.threads <= 0) {
    return fail("incomplete machine fingerprint");
  }
  if (t.benches.empty()) return fail("no benches");
  for (const rtlsat::metrics::BenchResult& b : t.benches) {
    if (b.name.empty()) return fail("bench with empty name");
    if (b.repeats < 1) return fail(b.name + ": repeats < 1");
    if (b.min_s > b.median_s || b.median_s > b.max_s)
      return fail(b.name + ": min/median/max not ordered");
  }
  std::printf("ok: trajectory %s@%s, %zu benches\n", t.utc_date.c_str(),
              t.git_sha.c_str(), t.benches.size());
  return true;
}

// Serve loadgen output (docs/serve.md "Load generation"):
// {"bench": "loadgen", "workloads": [{workload, clients, requests, ok,
//  errors, cache_hits, p50_ms, p99_ms, mean_ms, jobs_per_s}],
//  "warm_speedup": X}. The CI serve-smoke job additionally requires the
// warm workload to be all cache hits and every request to have succeeded.
bool validate_loadgen(const std::string& text) {
  JsonValue doc;
  std::string error;
  if (!json_parse(text, &doc, &error)) return fail(error);
  if (!doc.is_object()) return fail("top level is not an object");
  const JsonValue* bench = doc.find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string != "loadgen")
    return fail("top level: 'bench' is not \"loadgen\"");
  if (!require_number(doc, "warm_speedup", "top level")) return false;
  const JsonValue* workloads = doc.find("workloads");
  if (workloads == nullptr || !workloads->is_array())
    return fail("top level: missing array field 'workloads'");
  if (workloads->array.empty()) return fail("no workloads");
  for (std::size_t i = 0; i < workloads->array.size(); ++i) {
    const JsonValue& w = workloads->array[i];
    const std::string where = "workloads[" + std::to_string(i) + "]";
    if (!w.is_object()) return fail(where + ": not an object");
    if (!require_string(w, "workload", where)) return false;
    const std::string& name = w.find("workload")->string;
    if (name != "cold" && name != "warm" && name != "mixed")
      return fail(where + ": workload '" + name + "' is not cold/warm/mixed");
    for (const char* field : {"clients", "requests", "ok", "errors",
                              "cache_hits", "p50_ms", "p99_ms", "mean_ms",
                              "jobs_per_s"}) {
      if (!require_number(w, field, where)) return false;
    }
    const double requests = w.find("requests")->number;
    const double ok = w.find("ok")->number;
    const double errors = w.find("errors")->number;
    const double hits = w.find("cache_hits")->number;
    if (ok + errors != requests)
      return fail(where + ": ok + errors != requests");
    if (errors != 0) return fail(where + ": has request errors");
    if (name == "cold" && hits != 0)
      return fail(where + ": cold workload saw cache hits");
    if (name == "warm" && hits != ok)
      return fail(where + ": warm workload was not all cache hits");
    if (w.find("p50_ms")->number > w.find("p99_ms")->number)
      return fail(where + ": p50 exceeds p99");
  }
  std::printf("ok: %zu loadgen workloads, warm speedup %.1fx\n",
              workloads->array.size(), doc.find("warm_speedup")->number);
  return true;
}

// Flattens a bench --json document into "instance|config|counter" -> value,
// dropping time.* (wall-clock buckets legitimately differ run to run).
bool counter_map(const std::string& text, const std::string& label,
                 std::map<std::string, double>* out) {
  JsonValue doc;
  std::string error;
  if (!json_parse(text, &doc, &error)) return fail(label + ": " + error);
  const JsonValue* rows = doc.is_object() ? doc.find("rows") : nullptr;
  if (rows == nullptr || !rows->is_array())
    return fail(label + ": missing array field 'rows'");
  for (const JsonValue& row : rows->array) {
    if (!row.is_object()) return fail(label + ": row is not an object");
    const JsonValue* instance = row.find("instance");
    const JsonValue* config = row.find("config");
    const JsonValue* counters = row.find("counters");
    if (instance == nullptr || config == nullptr || counters == nullptr ||
        !counters->is_object()) {
      return fail(label + ": row without instance/config/counters");
    }
    for (const auto& [key, value] : counters->object) {
      if (key.rfind("time.", 0) == 0) continue;
      (*out)[instance->string + "|" + config->string + "|" + key] =
          value.number;
    }
  }
  return true;
}

// The zero-drift gate: two runs of the same bench (one sampled, one not)
// must agree on every search counter, or sampling perturbed the search.
bool validate_counters_equal(const std::string& text_a,
                             const std::string& text_b) {
  std::map<std::string, double> a, b;
  if (!counter_map(text_a, "first file", &a)) return false;
  if (!counter_map(text_b, "second file", &b)) return false;
  if (a.empty()) return fail("first file has no counters");
  for (const auto& [key, value] : a) {
    const auto it = b.find(key);
    if (it == b.end()) return fail("second file is missing '" + key + "'");
    if (it->second != value)
      return fail("counter drift: '" + key + "' is " + std::to_string(value) +
                  " vs " + std::to_string(it->second));
  }
  for (const auto& [key, value] : b) {
    if (a.find(key) == a.end())
      return fail("first file is missing '" + key + "'");
  }
  std::printf("ok: %zu counters identical\n", a.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc >= 2 ? argv[1] : "";
  const int want_files = mode == "counters" ? 2 : 1;
  if (argc != 2 + want_files) {
    std::fprintf(stderr,
                 "usage: %s <bench|race|chrome|jsonl|timeseries|trajectory"
                 "|loadgen> <file>\n       %s counters <file> <file>\n",
                 argv[0], argv[0]);
    return 2;
  }
  std::string text;
  if (!read_file(argv[2], &text)) return 1;
  bool ok = false;
  if (mode == "bench") {
    ok = validate_bench(text);
  } else if (mode == "race") {
    ok = validate_race(text);
  } else if (mode == "chrome") {
    ok = validate_chrome(text);
  } else if (mode == "jsonl") {
    ok = validate_jsonl(text);
  } else if (mode == "timeseries") {
    ok = validate_timeseries(text);
  } else if (mode == "trajectory") {
    ok = validate_trajectory(text);
  } else if (mode == "loadgen") {
    ok = validate_loadgen(text);
  } else if (mode == "counters") {
    std::string text_b;
    if (!read_file(argv[3], &text_b)) return 1;
    ok = validate_counters_equal(text, text_b);
  } else {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  return ok ? 0 : 1;
}
