// The rtlsat-serve daemon: a concurrent solve service with a structural-
// hash result cache (docs/serve.md).
//
//   $ ./rtlsat_serve [--host H] [--port P] [--port-file F] [--workers N]
//                    [--jobs N] [--queue-cap N] [--cache-cap N]
//                    [--bank-cap N] [--budget S] [--max-budget S]
//                    [--metrics <base>] [--sample-ms MS] [--no-verify-hits]
//
// Prints "listening on port <P>" once ready (CI and loadgen parse it;
// --port-file additionally writes the bare port number to F for scripts
// that start the daemon in the background). SIGTERM/SIGINT drain: stop
// accepting, finish queued jobs, then exit; a second signal cancels
// in-flight jobs and exits as soon as they acknowledge.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "serve/server.h"
#include "trace/sink.h"
#include "util/log.h"

using namespace rtlsat;

int main(int argc, char** argv) {
  serve::ServerOptions options;
  std::string port_file;
  std::string metrics_base;
  double sample_ms = 500;

  const auto next_arg = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs a value\n", argv[*i]);
      std::exit(2);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--host") == 0) options.host = next_arg(&i);
    else if (std::strcmp(arg, "--port") == 0) options.port = std::atoi(next_arg(&i));
    else if (std::strcmp(arg, "--port-file") == 0) port_file = next_arg(&i);
    else if (std::strcmp(arg, "--workers") == 0) options.solve_workers = std::atoi(next_arg(&i));
    else if (std::strcmp(arg, "--jobs") == 0) options.solve_jobs = std::atoi(next_arg(&i));
    else if (std::strcmp(arg, "--queue-cap") == 0) options.queue_capacity = static_cast<std::size_t>(std::atoi(next_arg(&i)));
    else if (std::strcmp(arg, "--cache-cap") == 0) options.cache_capacity = static_cast<std::size_t>(std::atoi(next_arg(&i)));
    else if (std::strcmp(arg, "--bank-cap") == 0) options.bank_capacity = static_cast<std::size_t>(std::atoi(next_arg(&i)));
    else if (std::strcmp(arg, "--budget") == 0) options.default_budget_seconds = std::atof(next_arg(&i));
    else if (std::strcmp(arg, "--max-budget") == 0) options.max_budget_seconds = std::atof(next_arg(&i));
    else if (std::strcmp(arg, "--metrics") == 0) metrics_base = next_arg(&i);
    else if (std::strcmp(arg, "--sample-ms") == 0) sample_ms = std::atof(next_arg(&i));
    else if (std::strcmp(arg, "--no-verify-hits") == 0) options.verify_cache_hits = false;
    else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg);
      return 2;
    }
  }

  // Block the drain signals before any thread exists so every thread
  // inherits the mask and only the dedicated sigwait thread sees them.
  sigset_t drain_set;
  sigemptyset(&drain_set);
  sigaddset(&drain_set, SIGTERM);
  sigaddset(&drain_set, SIGINT);
  pthread_sigmask(SIG_BLOCK, &drain_set, nullptr);

  metrics::MetricsRegistry registry;
  std::unique_ptr<trace::JsonlSink> metrics_sink;
  std::unique_ptr<metrics::Sampler> sampler;
  if (!metrics_base.empty()) {
    metrics_sink =
        std::make_unique<trace::JsonlSink>(metrics_base + ".metrics.jsonl");
    options.metrics = &registry;
    metrics::SamplerOptions sopts;
    sopts.sink = metrics_sink.get();
    sopts.interval_seconds = sample_ms / 1000.0;
    sampler = std::make_unique<metrics::Sampler>(&registry, sopts);
  }

  serve::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (sampler != nullptr) sampler->start();
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%d\n", server.port());
      std::fclose(f);
    }
  }
  std::printf("listening on port %d\n", server.port());
  std::fflush(stdout);

  // First signal drains, second gives up on in-flight work. Detached: once
  // wait() returns the process exits and takes the sigwait with it.
  std::thread([&server, drain_set] {
    for (int signals = 0;; ++signals) {
      int sig = 0;
      if (sigwait(&drain_set, &sig) != 0) return;
      if (signals == 0) {
        std::fprintf(stderr, "draining (signal %d)...\n", sig);
        server.drain();
      } else {
        std::fprintf(stderr, "cancelling in-flight jobs...\n");
        server.shutdown_now();
        return;
      }
    }
  }).detach();

  server.wait();
  if (sampler != nullptr) sampler->stop();
  const serve::ServerStats stats = server.snapshot();
  std::fprintf(stderr,
               "served %lld jobs in %.1fs (%.2f jobs/s, cache hit ratio "
               "%.2f)\n",
               static_cast<long long>(stats.jobs_done), stats.uptime_seconds,
               stats.jobs_per_second, stats.cache_hit_ratio);
  return 0;
}
