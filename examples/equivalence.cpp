// RTL–RTL equivalence checking with a miter — the application the paper's
// conclusion points at ("data-path that has considerable duplication such
// as in an RTL-RTL equivalence checking environment").
//
// We check two implementations of "average of two bytes":
//   spec: avg = (a + b) / 2         computed at width 9 then truncated
//   impl: avg = (a >> 1) + (b >> 1) + (a&1 ∧ b&1)   (carry-save trick)
// The miter asserts the outputs differ; UNSAT proves equivalence. A buggy
// variant (dropping the carry term) yields SAT with a concrete
// distinguishing input, which we print.
#include <cstdio>

#include "core/hdpll.h"

using namespace rtlsat;

namespace {

struct Miter {
  ir::Circuit c{"avg_miter"};
  ir::NetId a = c.add_input("a", 8);
  ir::NetId b = c.add_input("b", 8);

  ir::NetId spec() {
    const ir::NetId wide_sum =
        c.add_add(c.add_zext(a, 9), c.add_zext(b, 9));
    return c.add_trunc(c.add_shr(wide_sum, 1), 8);
  }

  ir::NetId impl(bool with_carry) {
    const ir::NetId half = c.add_add(c.add_shr(a, 1), c.add_shr(b, 1));
    if (!with_carry) return half;
    const ir::NetId carry =
        c.add_and(c.add_bit(a, 0), c.add_bit(b, 0));
    return c.add_add(half, c.add_zext(carry, 8));
  }

  // goal = (spec ≠ impl)
  ir::NetId goal(bool with_carry) {
    return c.add_ne(spec(), impl(with_carry));
  }
};

void check(bool with_carry) {
  Miter m;
  const ir::NetId goal = m.goal(with_carry);
  core::HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = true;
  core::HdpllSolver solver(m.c, options);
  solver.assume_bool(goal, true);
  const core::SolveResult result = solver.solve();
  std::printf("%-18s: ", with_carry ? "correct impl" : "bug (no carry)");
  if (result.status == core::SolveStatus::kUnsat) {
    std::printf("EQUIVALENT (miter UNSAT, %.3fs)\n", result.seconds);
  } else if (result.status == core::SolveStatus::kSat) {
    const std::int64_t av = result.input_model.at(m.a);
    const std::int64_t bv = result.input_model.at(m.b);
    std::printf(
        "NOT equivalent: a=%lld b=%lld (spec=%lld, impl=%lld) %.3fs\n",
        static_cast<long long>(av), static_cast<long long>(bv),
        static_cast<long long>((av + bv) / 2),
        static_cast<long long>(av / 2 + bv / 2), result.seconds);
  } else {
    std::printf("timeout\n");
  }
}

}  // namespace

int main() {
  check(/*with_carry=*/true);
  check(/*with_carry=*/false);
  return 0;
}
