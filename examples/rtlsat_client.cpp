// Command-line client for rtlsat-serve (docs/serve.md).
//
//   $ ./rtlsat_client [--host H] --port P solve <file.rtl> <goal>
//         [--value 0|1] [--budget S] [--jobs N] [--deterministic]
//         [--no-cache] [--no-bank] [--progress] [--no-wait]
//   $ ./rtlsat_client --port P bmc <seq.rtl> <property> <bound>
//         [--cumulative] [--budget S] [--no-cache] [--no-bank]
//   $ ./rtlsat_client --port P cancel <job>
//   $ ./rtlsat_client --port P stats
//   $ ./rtlsat_client --port P ping
//   $ ./rtlsat_client --port P shutdown
//
// solve submits and (unless --no-wait) blocks for the verdict; --progress
// re-emits the per-worker heartbeat JSONL lines on stdout as they stream.
// bmc asks one bound of a sequential design; successive bounds over the
// same design land on the server's warm incremental session
// (docs/incremental.md). Exit codes: 0 sat/unsat, 1 timeout/cancelled,
// 2 usage or error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/client.h"

using namespace rtlsat;

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] --port P solve <file.rtl> <goal>\n"
      "          [--value 0|1] [--budget S] [--jobs N] [--deterministic]\n"
      "          [--no-cache] [--no-bank] [--progress] [--no-wait]\n"
      "       %s [--host H] --port P bmc <seq.rtl> <property> <bound>\n"
      "          [--cumulative] [--budget S] [--no-cache] [--no-bank]\n"
      "       %s [--host H] --port P cancel <job> | stats | ping | shutdown\n",
      argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  serve::SolveRequest request;
  bool wait_for_result = true;
  std::vector<const char*> positional;

  const auto next_arg = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs a value\n", argv[*i]);
      std::exit(2);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--host") == 0) host = next_arg(&i);
    else if (std::strcmp(arg, "--port") == 0) port = std::atoi(next_arg(&i));
    else if (std::strcmp(arg, "--value") == 0) request.value = std::atoi(next_arg(&i)) != 0;
    else if (std::strcmp(arg, "--budget") == 0) request.budget_seconds = std::atof(next_arg(&i));
    else if (std::strcmp(arg, "--jobs") == 0) request.jobs = std::atoi(next_arg(&i));
    else if (std::strcmp(arg, "--deterministic") == 0) request.deterministic = true;
    else if (std::strcmp(arg, "--no-cache") == 0) request.use_cache = false;
    else if (std::strcmp(arg, "--no-bank") == 0) request.use_bank = false;
    else if (std::strcmp(arg, "--cumulative") == 0) request.cumulative = true;
    else if (std::strcmp(arg, "--progress") == 0) request.progress = true;
    else if (std::strcmp(arg, "--no-wait") == 0) wait_for_result = false;
    else positional.push_back(arg);
  }
  if (positional.empty() || port <= 0) return usage(argv[0]);
  const std::string command = positional[0];

  serve::Client client;
  std::string error;
  if (!client.connect(host, port, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  if (command == "ping") {
    if (!client.ping(&error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    std::printf("pong\n");
    return 0;
  }
  if (command == "shutdown") {
    if (!client.shutdown_server(&error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    std::printf("server draining\n");
    return 0;
  }
  if (command == "stats") {
    serve::ServerStats stats;
    if (!client.stats(&stats, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    std::printf("uptime_s         %.1f\n", stats.uptime_seconds);
    std::printf("connections      %lld\n", static_cast<long long>(stats.connections));
    std::printf("queue_depth      %lld\n", static_cast<long long>(stats.queue_depth));
    std::printf("in_flight        %lld\n", static_cast<long long>(stats.in_flight));
    std::printf("jobs_done        %lld\n", static_cast<long long>(stats.jobs_done));
    std::printf("jobs_per_s       %.2f\n", stats.jobs_per_second);
    std::printf("cache_hits       %lld\n", static_cast<long long>(stats.cache_hits));
    std::printf("cache_misses     %lld\n", static_cast<long long>(stats.cache_misses));
    std::printf("cache_hit_ratio  %.2f\n", stats.cache_hit_ratio);
    std::printf("cache_entries    %lld\n", static_cast<long long>(stats.cache_entries));
    std::printf("bank_pools       %lld\n", static_cast<long long>(stats.bank_pools));
    std::printf("bmc_sessions     %lld\n", static_cast<long long>(stats.bmc_sessions));
    return 0;
  }
  if (command == "cancel") {
    if (positional.size() < 2) return usage(argv[0]);
    const std::uint64_t job =
        static_cast<std::uint64_t>(std::strtoull(positional[1], nullptr, 10));
    if (!client.cancel(job, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    std::printf("cancel requested for job %llu\n",
                static_cast<unsigned long long>(job));
    return 0;
  }
  if (command == "bmc") {
    // BMC mode: the file is a sequential design, solved at one bound on the
    // server's warm incremental session for that design (docs/incremental.md).
    if (positional.size() < 4) return usage(argv[0]);
    if (!read_file(positional[1], &request.seq_rtl)) {
      std::fprintf(stderr, "error: cannot read %s\n", positional[1]);
      return 2;
    }
    request.property = positional[2];
    request.bound = std::atoi(positional[3]);
  } else if (command != "solve" || positional.size() < 3) {
    return usage(argv[0]);
  } else if (!read_file(positional[1], &request.rtl)) {
    std::fprintf(stderr, "error: cannot read %s\n", positional[1]);
    return 2;
  } else {
    request.goal = positional[2];
  }

  std::uint64_t job = 0;
  if (!client.submit(request, &job, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  std::fprintf(stderr, "job %llu queued\n",
               static_cast<unsigned long long>(job));
  if (!wait_for_result) return 0;

  serve::ResultMsg result;
  const auto on_progress = [](const std::string& heartbeat) {
    std::printf("%s\n", heartbeat.c_str());
  };
  if (!client.wait(job, &result, &error,
                   request.progress ? serve::Client::ProgressFn(on_progress)
                                    : serve::Client::ProgressFn())) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  std::printf("%s%s (solve %.3fs, service %.3fs%s%s)\n",
              result.verdict.c_str(), result.cache_hit ? " [cache hit]" : "",
              result.solve_seconds, result.service_seconds,
              result.winner.empty() ? "" : ", winner ",
              result.winner.c_str());
  for (const auto& [name, value] : result.model)
    std::printf("  %s = %lld\n", name.c_str(), static_cast<long long>(value));
  return (result.verdict == "sat" || result.verdict == "unsat") ? 0 : 1;
}
