// rtlsat_check — the independent certificate verifier.
//
// Two modes, picked by flag:
//
//   rtlsat_check --drat <formula.cnf> <proof.drat> [--binary]
//       Checks a DRAT refutation of a DIMACS formula by reverse unit
//       propagation (the Boolean core's certificates).
//
//   rtlsat_check --word <certificate.jsonl> [--trust-imports]
//       Checks a word-level HDPLL certificate: interval narrowings are
//       re-derived rule by rule, learned clauses replayed from their
//       antecedent cut, FME refutations re-added in exact arithmetic, and
//       predicate-learning probes re-checked for case coverage.
//
// The binary deliberately links only src/proof and its trust base
// (src/interval, src/fme linear structs, src/trace JSON, src/util); none
// of the solver's propagation, analysis, or SAT code is in the image. A
// bug in the solver cannot vouch for itself here.
//
// Exit status: 0 verified, 1 rejected (first bad step on stderr), 2 usage
// or I/O error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "proof/drat_check.h"
#include "proof/word_check.h"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rtlsat_check: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: rtlsat_check --drat <formula.cnf> <proof.drat> "
               "[--binary]\n"
               "       rtlsat_check --word <certificate.jsonl> "
               "[--trust-imports]\n");
  return 2;
}

int run_drat(int argc, char** argv) {
  std::string formula_path;
  std::string proof_path;
  bool binary = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--binary") == 0) {
      binary = true;
    } else if (formula_path.empty()) {
      formula_path = argv[i];
    } else if (proof_path.empty()) {
      proof_path = argv[i];
    } else {
      return usage();
    }
  }
  if (proof_path.empty()) return usage();

  std::string formula;
  std::string proof;
  if (!read_file(formula_path, &formula) || !read_file(proof_path, &proof))
    return 2;
  const rtlsat::proof::DratCheckResult result =
      rtlsat::proof::drat_check(formula, proof, binary);
  if (!result.ok) {
    std::fprintf(stderr, "rtlsat_check: REJECTED: %s\n",
                 result.error.c_str());
    return 1;
  }
  std::printf(
      "rtlsat_check: VERIFIED drat refutation (%lld steps checked, %lld "
      "deletions ignored)\n",
      static_cast<long long>(result.steps_checked),
      static_cast<long long>(result.deletions_ignored));
  return 0;
}

int run_word(int argc, char** argv) {
  std::string cert_path;
  rtlsat::proof::WordCheckOptions options;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trust-imports") == 0) {
      options.trust_imports = true;
    } else if (cert_path.empty()) {
      cert_path = argv[i];
    } else {
      return usage();
    }
  }
  if (cert_path.empty()) return usage();

  std::string cert;
  if (!read_file(cert_path, &cert)) return 2;
  const rtlsat::proof::WordCheckResult result =
      rtlsat::proof::word_check(cert, options);
  if (!result.ok) {
    std::fprintf(stderr, "rtlsat_check: REJECTED: %s\n",
                 result.error.c_str());
    return 1;
  }
  std::printf("rtlsat_check: VERIFIED word certificate (verdict %s, %lld "
              "records%s)\n",
              result.verdict.c_str(),
              static_cast<long long>(result.records),
              result.refuted ? ", refutation established" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "--drat") == 0)
    return run_drat(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "--word") == 0)
    return run_word(argc - 2, argv + 2);
  return usage();
}
