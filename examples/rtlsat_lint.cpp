// Netlist lint driver — runs the rule registry (src/lint/) over sequential
// netlists and prints structured diagnostics.
//
//   $ ./rtlsat_lint [--json] [--errors-only] <target>...
//   $ ./rtlsat_lint --list-rules
//
// A <target> is an ITC'99 model name ("b01"…), the word "all" (every
// registry model), or a path to a .rtl file. Exit status: 0 when no
// error-severity diagnostics were produced, 1 when at least one was,
// 2 on usage or load errors.
//
// Try it:
//   $ ./rtlsat_lint all
//   $ ./rtlsat_lint --json ../data/b13.rtl
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "itc99/itc99.h"
#include "lint/lint.h"
#include "lint/report.h"
#include "parser/rtl_format.h"

using namespace rtlsat;

namespace {

bool is_registry_model(const std::string& target) {
  for (const std::string& name : itc99::available()) {
    if (name == target) return true;
  }
  return false;
}

void list_rules() {
  for (const lint::RuleInfo& rule : lint::rule_catalog()) {
    const std::string_view severity = lint::severity_name(rule.severity);
    std::printf("%-20.*s %-8.*s %.*s%s\n",
                static_cast<int>(rule.id.size()), rule.id.data(),
                static_cast<int>(severity.size()), severity.data(),
                static_cast<int>(rule.description.size()),
                rule.description.data(),
                rule.seq_only ? " [sequential only]" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool errors_only = false;
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--errors-only") == 0) {
      errors_only = true;
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      list_rules();
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      targets.emplace_back(argv[i]);
    }
  }
  if (targets.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--errors-only] <target>...\n"
                 "       %s --list-rules\n"
                 "a target is an ITC'99 model name, 'all', or a .rtl path\n",
                 argv[0], argv[0]);
    return 2;
  }

  // Expand "all" into the full registry.
  std::vector<std::string> expanded;
  for (const std::string& target : targets) {
    if (target == "all") {
      for (const std::string& name : itc99::available())
        expanded.push_back(name);
    } else {
      expanded.push_back(target);
    }
  }

  lint::LintOptions options;
  options.warnings = !errors_only;

  bool any_errors = false;
  for (const std::string& target : expanded) {
    ir::SeqCircuit seq("empty");
    try {
      seq = is_registry_model(target) ? itc99::build(target)
                                      : parser::load_seq_circuit(target);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: %s\n", target.c_str(), e.what());
      return 2;
    }
    const lint::LintReport report = lint::lint_seq_circuit(seq, options);
    any_errors = any_errors || report.has_errors();
    const std::string text =
        json ? lint::to_json(report, seq.comb(), target)
             : lint::to_text(report, seq.comb(), target);
    std::fputs(text.c_str(), stdout);
  }
  return any_errors ? 1 : 0;
}
