// Command-line BMC solver over .rtl netlists and .v (Verilog subset)
// designs — the downstream-user entry point: bring your own design, pick a
// property, bound and configuration.
//
//   $ ./rtl_file_solver design.{rtl,v} <property> <bound> [base|s|sp] [timeout_s]
//
// Try it on the shipped models:
//   $ ./rtl_file_solver ../data/b13.rtl 5 20 sp
//   $ ./rtl_file_solver ../data/traffic.v ped_served 14 sp
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "parser/rtl_format.h"
#include "verilog/verilog.h"

using namespace rtlsat;

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <file.rtl> <property> <bound> [base|s|sp] "
                 "[timeout_s]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const std::string property = argv[2];
  const int bound = std::atoi(argv[3]);
  const std::string config = argc > 4 ? argv[4] : "sp";
  const double timeout = argc > 5 ? std::atof(argv[5]) : 1200;

  ir::SeqCircuit seq("empty");
  try {
    const bool is_verilog =
        path.size() > 2 && path.compare(path.size() - 2, 2, ".v") == 0;
    seq = is_verilog ? verilog::load_file(path)
                     : parser::load_seq_circuit(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (seq.property(property) == ir::kNoNet) {
    std::fprintf(stderr, "error: no property '%s'; available:", property.c_str());
    for (const auto& p : seq.properties())
      std::fprintf(stderr, " %s", p.name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }

  const bmc::BmcInstance instance = bmc::unroll(seq, property, bound);
  core::HdpllOptions options;
  options.structural_decisions = config == "s" || config == "sp";
  options.predicate_learning = config == "sp";
  options.timeout_seconds = timeout;
  core::HdpllSolver solver(instance.circuit, options);
  solver.assume_bool(instance.goal, true);
  const core::SolveResult result = solver.solve();

  switch (result.status) {
    case core::SolveStatus::kSat: {
      std::printf("SAT — property %s violated after exactly %d steps "
                  "(%.3fs)\n", property.c_str(), bound, result.seconds);
      std::printf("violating input sequence:\n");
      for (const ir::NetId in : instance.circuit.inputs()) {
        std::printf("  %s = %lld\n",
                    instance.circuit.net_name(in).c_str(),
                    static_cast<long long>(result.input_model.at(in)));
      }
      return 0;
    }
    case core::SolveStatus::kUnsat:
      std::printf("UNSAT — property %s holds at bound %d (%.3fs)\n",
                  property.c_str(), bound, result.seconds);
      return 0;
    case core::SolveStatus::kTimeout:
      std::printf("TIMEOUT after %.1fs\n", result.seconds);
      return 1;
  }
  return 1;
}
