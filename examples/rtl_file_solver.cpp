// Command-line BMC solver over .rtl netlists and .v (Verilog subset)
// designs — the downstream-user entry point: bring your own design, pick a
// property, bound and configuration.
//
//   $ ./rtl_file_solver design.{rtl,v} <property> <bound> [base|s|sp] [timeout_s]
//                       [--trace <base>] [--progress]
//
// Try it on the shipped models:
//   $ ./rtl_file_solver ../data/b13.rtl 5 20 sp
//   $ ./rtl_file_solver ../data/traffic.v ped_served 14 sp
//
// --trace writes <base>.jsonl + <base>.trace.json (open the latter in
// Perfetto / chrome://tracing); --progress prints a MiniSat-style banner.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "parser/rtl_format.h"
#include "trace/progress.h"
#include "trace/trace.h"
#include "verilog/verilog.h"

using namespace rtlsat;

int main(int argc, char** argv) {
  std::unique_ptr<trace::Tracer> tracer;
  std::unique_ptr<trace::ProgressReporter> progress;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace::TracerOptions topts;
      topts.jsonl_path = std::string(argv[++i]) + ".jsonl";
      topts.chrome_path = std::string(argv[i]) + ".trace.json";
      tracer = std::make_unique<trace::Tracer>(topts);
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      progress = std::make_unique<trace::ProgressReporter>();
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 3) {
    std::fprintf(stderr,
                 "usage: %s <file.rtl> <property> <bound> [base|s|sp] "
                 "[timeout_s] [--trace <base>] [--progress]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = positional[0];
  const std::string property = positional[1];
  const int bound = std::atoi(positional[2]);
  const std::string config = positional.size() > 3 ? positional[3] : "sp";
  const double timeout =
      positional.size() > 4 ? std::atof(positional[4]) : 1200;

  ir::SeqCircuit seq("empty");
  try {
    trace::ScopedPhase parse_phase(
        tracer != nullptr ? tracer.get() : &trace::global(), nullptr, "parse");
    const bool is_verilog =
        path.size() > 2 && path.compare(path.size() - 2, 2, ".v") == 0;
    seq = is_verilog ? verilog::load_file(path)
                     : parser::load_seq_circuit(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (seq.property(property) == ir::kNoNet) {
    std::fprintf(stderr, "error: no property '%s'; available:", property.c_str());
    for (const auto& p : seq.properties())
      std::fprintf(stderr, " %s", p.name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }

  const bmc::BmcInstance instance = bmc::unroll(seq, property, bound);
  core::HdpllOptions options;
  options.structural_decisions = config == "s" || config == "sp";
  options.predicate_learning = config == "sp";
  options.timeout_seconds = timeout;
  options.tracer = tracer.get();
  options.progress = progress.get();
  core::HdpllSolver solver(instance.circuit, options);
  solver.assume_bool(instance.goal, true);
  const core::SolveResult result = solver.solve();

  switch (result.status) {
    case core::SolveStatus::kSat: {
      std::printf("SAT — property %s violated after exactly %d steps "
                  "(%.3fs)\n", property.c_str(), bound, result.seconds);
      std::printf("violating input sequence:\n");
      for (const ir::NetId in : instance.circuit.inputs()) {
        std::printf("  %s = %lld\n",
                    instance.circuit.net_name(in).c_str(),
                    static_cast<long long>(result.input_model.at(in)));
      }
      return 0;
    }
    case core::SolveStatus::kUnsat:
      std::printf("UNSAT — property %s holds at bound %d (%.3fs)\n",
                  property.c_str(), bound, result.seconds);
      return 0;
    case core::SolveStatus::kTimeout:
      std::printf("TIMEOUT after %.1fs\n", result.seconds);
      return 1;
    case core::SolveStatus::kCancelled:
      std::printf("CANCELLED after %.1fs\n", result.seconds);
      return 1;
  }
  return 1;
}
