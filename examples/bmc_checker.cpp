// Bounded model checking driver over the bundled ITC'99-style circuits.
//
//   $ ./bmc_checker [circuit] [property] [bound] [config]
//   $ ./bmc_checker b13 5 20 sp
//
// config: "base" (plain HDPLL), "s" (+structural), "sp" (+structural and
// predicate learning, the paper's strongest configuration — default).
//
// With RTLSAT_PROOF set, the single solve becomes a certifying sweep
// (bmc/sweep.h): every bound from 1 up is solved with word-certificate
// logging, each certificate is verified in-process, and — when
// RTLSAT_PROOF names a directory — the per-frame certificates are written
// there for offline rtlsat_check runs. A rejected certificate is a
// non-zero exit.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bmc/sweep.h"
#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "itc99/itc99.h"

using namespace rtlsat;

namespace {

int run_certified_sweep(const ir::SeqCircuit& seq, const std::string& property,
                        int bound, const core::HdpllOptions& options,
                        const char* proof_env) {
  bmc::SweepOptions sweep_options;
  sweep_options.solver = options;
  sweep_options.certify = true;
  // RTLSAT_PROOF=1 keeps the certificates in memory; anything else names
  // the output directory.
  if (std::strcmp(proof_env, "1") != 0) sweep_options.cert_dir = proof_env;
  const bmc::SweepResult sweep = bmc::sweep(seq, property, bound, sweep_options);
  bool rejected = false;
  for (const bmc::FrameResult& frame : sweep.frames) {
    const char* verdict = frame.status == core::SolveStatus::kSat ? "SAT"
                          : frame.status == core::SolveStatus::kUnsat
                              ? "UNSAT"
                              : "TIMEOUT";
    std::printf("%-12s %-8s %.3fs  cert: %lld records, %lld bytes, %s\n",
                frame.name.c_str(), verdict, frame.seconds,
                static_cast<long long>(frame.cert_records),
                static_cast<long long>(frame.cert_bytes),
                frame.cert_error.empty() ? "VERIFIED"
                                         : frame.cert_error.c_str());
    if (!frame.cert_error.empty()) rejected = true;
  }
  if (sweep.first_sat_bound >= 0) {
    std::printf("counterexample at bound %d\n", sweep.first_sat_bound);
  } else {
    std::printf("no violation within bound %d (every frame certified)\n",
                bound);
  }
  return rejected ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string circuit_name = argc > 1 ? argv[1] : "b13";
  const std::string property = argc > 2 ? argv[2] : "5";
  const int bound = argc > 3 ? std::atoi(argv[3]) : 20;
  const std::string config = argc > 4 ? argv[4] : "sp";

  const ir::SeqCircuit seq = itc99::build(circuit_name);
  const bmc::BmcInstance instance = bmc::unroll(seq, property, bound);
  const auto counts = instance.circuit.op_counts();
  std::printf("instance %s: %zu arith ops, %zu bool ops, %zu nets\n",
              instance.name.c_str(), counts.arith, counts.boolean,
              instance.circuit.num_nets());

  core::HdpllOptions options;
  options.structural_decisions = config == "s" || config == "sp";
  options.predicate_learning = config == "sp";
  options.timeout_seconds = 1200;  // the paper's timeout

  if (const char* proof_env = std::getenv("RTLSAT_PROOF");
      proof_env != nullptr && *proof_env != '\0') {
    return run_certified_sweep(seq, property, bound, options, proof_env);
  }

  core::HdpllSolver solver(instance.circuit, options);
  solver.assume_bool(instance.goal, true);

  const core::SolveResult result = solver.solve();
  const char* verdict = result.status == core::SolveStatus::kSat ? "SAT"
                        : result.status == core::SolveStatus::kUnsat
                            ? "UNSAT"
                            : "TIMEOUT";
  std::printf("%s  (%s holds %s at bound %d)  %.3fs\n", verdict,
              property.c_str(),
              result.status == core::SolveStatus::kUnsat ? "" : "NOT",
              bound, result.seconds);
  if (options.predicate_learning) {
    std::printf("predicate learning: %d relations, %d units, %.3fs\n",
                result.learning.relations_learned, result.learning.units_learned,
                result.learning.seconds);
  }

  if (result.status == core::SolveStatus::kSat) {
    // Replay the counterexample trace frame by frame.
    const auto values = instance.circuit.evaluate(result.input_model);
    std::printf("counterexample trace (registers per frame):\n");
    for (int frame = 0; frame <= instance.bound; ++frame) {
      std::printf("  t=%-3d", frame);
      for (const auto& reg : seq.registers()) {
        const ir::NetId unrolled = instance.frame_map[frame][reg.q];
        std::printf(" %s=%lld", reg.name.c_str(),
                    static_cast<long long>(values[unrolled]));
      }
      std::printf("\n");
      if (frame >= 12) {
        std::printf("  ... (%d more frames)\n", instance.bound - frame);
        break;
      }
    }
  }
  return 0;
}
