// Quickstart: build a small word-level circuit, check a property with the
// hybrid DPLL solver, and print the witness.
//
//   $ ./quickstart
//   $ ./quickstart --trace out       # writes out.jsonl + out.trace.json
//   $ ./quickstart --progress        # MiniSat-style progress banner
//
// The circuit is a saturating accumulator step: out = min(acc + in, 200).
// We ask: can the output land exactly on the saturation boundary while the
// accumulator stays below 100?
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/hdpll.h"
#include "trace/progress.h"
#include "trace/trace.h"

using namespace rtlsat;

int main(int argc, char** argv) {
  std::unique_ptr<trace::Tracer> tracer;
  std::unique_ptr<trace::ProgressReporter> progress;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace::TracerOptions topts;
      topts.jsonl_path = std::string(argv[++i]) + ".jsonl";
      topts.chrome_path = std::string(argv[i]) + ".trace.json";
      tracer = std::make_unique<trace::Tracer>(topts);
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      progress = std::make_unique<trace::ProgressReporter>();
    } else {
      std::fprintf(stderr, "usage: %s [--trace <base>] [--progress]\n",
                   argv[0]);
      return 2;
    }
  }

  ir::Circuit c("quickstart");

  const ir::NetId acc = c.add_input("acc", 8);
  const ir::NetId in = c.add_input("in", 8);
  const ir::NetId cap = c.add_const(200, 8);

  const ir::NetId sum = c.add_add(acc, in);
  const ir::NetId saturated = c.add_min(sum, cap);  // lowers to lt + mux

  const ir::NetId on_boundary = c.add_eq(saturated, cap);
  const ir::NetId acc_small = c.add_lt(acc, c.add_const(100, 8));
  const ir::NetId goal = c.add_and(on_boundary, acc_small);

  core::HdpllOptions options;
  options.structural_decisions = true;  // the paper's +S strategy
  options.tracer = tracer.get();
  options.progress = progress.get();
  core::HdpllSolver solver(c, options);
  solver.assume_bool(goal, true);

  const core::SolveResult result = solver.solve();
  switch (result.status) {
    case core::SolveStatus::kSat: {
      std::printf("SAT in %.3fs\n", result.seconds);
      std::printf("  acc = %lld\n",
                  static_cast<long long>(result.input_model.at(acc)));
      std::printf("  in  = %lld\n",
                  static_cast<long long>(result.input_model.at(in)));
      const auto values = c.evaluate(result.input_model);
      std::printf("  saturated output = %lld (expected 200)\n",
                  static_cast<long long>(values[saturated]));
      break;
    }
    case core::SolveStatus::kUnsat:
      std::printf("UNSAT in %.3fs\n", result.seconds);
      break;
    case core::SolveStatus::kTimeout:
      std::printf("timeout\n");
      break;
    case core::SolveStatus::kCancelled:
      std::printf("cancelled\n");
      break;
  }
  std::printf("decisions=%lld conflicts=%lld\n",
              static_cast<long long>(solver.stats().get("hdpll.decisions")),
              static_cast<long long>(solver.stats().get("hdpll.conflicts")));
  return result.status == core::SolveStatus::kSat ? 0 : 1;
}
