// Quickstart: build a small word-level circuit, check a property with the
// hybrid DPLL solver, and print the witness.
//
//   $ ./quickstart
//   $ ./quickstart --trace out       # writes out.jsonl + out.trace.json
//   $ ./quickstart --progress        # MiniSat-style progress banner
//   $ ./quickstart --metrics ts.jsonl [--sample-ms N]
//                                    # live-telemetry time series
//
// The circuit is a saturating accumulator step: out = min(acc + in, 200).
// We ask: can the output land exactly on the saturation boundary while the
// accumulator stays below 100?
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/hdpll.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "metrics/solver_gauges.h"
#include "trace/progress.h"
#include "trace/sink.h"
#include "trace/trace.h"

using namespace rtlsat;

int main(int argc, char** argv) {
  std::unique_ptr<trace::Tracer> tracer;
  std::unique_ptr<trace::ProgressReporter> progress;
  std::string metrics_path;
  int sample_ms = 100;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace::TracerOptions topts;
      topts.jsonl_path = std::string(argv[++i]) + ".jsonl";
      topts.chrome_path = std::string(argv[i]) + ".trace.json";
      tracer = std::make_unique<trace::Tracer>(topts);
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      progress = std::make_unique<trace::ProgressReporter>();
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sample-ms") == 0 && i + 1 < argc) {
      sample_ms = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace <base>] [--progress] "
                   "[--metrics <path>] [--sample-ms <n>]\n",
                   argv[0]);
      return 2;
    }
  }

  metrics::MetricsRegistry registry;
  metrics::SolverGauges gauges;
  std::unique_ptr<trace::JsonlSink> metrics_sink;
  std::unique_ptr<metrics::Sampler> sampler;
  if (!metrics_path.empty()) {
    metrics_sink = std::make_unique<trace::JsonlSink>(metrics_path);
    gauges = metrics::make_solver_gauges(&registry, {{"solver", "hdpll"}});
    metrics::SamplerOptions sampler_options;
    sampler_options.sink = metrics_sink.get();
    sampler_options.interval_seconds = std::max(sample_ms, 1) / 1000.0;
    sampler = std::make_unique<metrics::Sampler>(&registry, sampler_options);
    sampler->start();
  }

  ir::Circuit c("quickstart");

  const ir::NetId acc = c.add_input("acc", 8);
  const ir::NetId in = c.add_input("in", 8);
  const ir::NetId cap = c.add_const(200, 8);

  const ir::NetId sum = c.add_add(acc, in);
  const ir::NetId saturated = c.add_min(sum, cap);  // lowers to lt + mux

  const ir::NetId on_boundary = c.add_eq(saturated, cap);
  const ir::NetId acc_small = c.add_lt(acc, c.add_const(100, 8));
  const ir::NetId goal = c.add_and(on_boundary, acc_small);

  core::HdpllOptions options;
  options.structural_decisions = true;  // the paper's +S strategy
  options.tracer = tracer.get();
  options.progress = progress.get();
  if (sampler != nullptr) options.gauges = &gauges;
  core::HdpllSolver solver(c, options);
  solver.assume_bool(goal, true);

  const core::SolveResult result = solver.solve();
  if (sampler != nullptr) {
    sampler->stop();
    std::printf("metrics: %lld samples -> %s\n",
                static_cast<long long>(sampler->samples()),
                metrics_path.c_str());
  }
  switch (result.status) {
    case core::SolveStatus::kSat: {
      std::printf("SAT in %.3fs\n", result.seconds);
      std::printf("  acc = %lld\n",
                  static_cast<long long>(result.input_model.at(acc)));
      std::printf("  in  = %lld\n",
                  static_cast<long long>(result.input_model.at(in)));
      const auto values = c.evaluate(result.input_model);
      std::printf("  saturated output = %lld (expected 200)\n",
                  static_cast<long long>(values[saturated]));
      break;
    }
    case core::SolveStatus::kUnsat:
      std::printf("UNSAT in %.3fs\n", result.seconds);
      break;
    case core::SolveStatus::kTimeout:
      std::printf("timeout\n");
      break;
    case core::SolveStatus::kCancelled:
      std::printf("cancelled\n");
      break;
  }
  std::printf("decisions=%lld conflicts=%lld\n",
              static_cast<long long>(solver.stats().get("hdpll.decisions")),
              static_cast<long long>(solver.stats().get("hdpll.conflicts")));
  return result.status == core::SolveStatus::kSat ? 0 : 1;
}
