// Word-level static analysis driver — runs the presolve analyzer
// (src/presolve/) over netlists and prints facts, findings, and (for
// sequential targets) per-register reach invariants.
//
//   $ ./rtlsat_analyze [--json] [--facts] <target>...
//
// A <target> is an ITC'99 model name ("b01"…), the word "all" (every
// registry model), or a path to a .rtl file (sequential or combinational
// format — tried in that order). By default only findings and invariants
// are printed; --facts adds every net whose proven range is strictly
// tighter than its width's domain. Exit status: 0 on success, 2 on usage
// or load errors.
//
// Try it:
//   $ ./rtlsat_analyze all
//   $ ./rtlsat_analyze --json --facts b13
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "itc99/itc99.h"
#include "parser/rtl_format.h"
#include "presolve/analyze.h"
#include "presolve/facts.h"
#include "presolve/findings.h"
#include "trace/json.h"

using namespace rtlsat;

namespace {

bool is_registry_model(const std::string& target) {
  for (const std::string& name : itc99::available()) {
    if (name == target) return true;
  }
  return false;
}

struct Analysis {
  std::string target;
  bool sequential = false;
  ir::SeqCircuit seq{"empty"};
  presolve::FactTable facts;
  std::vector<presolve::Finding> findings;
  std::vector<Interval> invariants;  // empty for combinational targets
};

const char* parity_name(presolve::Parity p) {
  switch (p) {
    case presolve::Parity::kEven: return "even";
    case presolve::Parity::kOdd: return "odd";
    default: return "unknown";
  }
}

// A fact is worth printing when it proves something the width alone does
// not: a range tighter than the domain, or a known parity.
bool nontrivial(const Analysis& a, ir::NetId id) {
  const ir::Circuit& c = a.seq.comb();
  if (c.node(id).op == ir::Op::kConst) return false;
  return a.facts.range[id] != c.domain(id) ||
         a.facts.parity[id] != presolve::Parity::kUnknown;
}

std::string to_text(const Analysis& a, bool print_facts) {
  const ir::Circuit& c = a.seq.comb();
  std::ostringstream os;
  os << a.target << ": " << c.num_nets() << " nets, " << a.findings.size()
     << " finding" << (a.findings.size() == 1 ? "" : "s") << '\n';
  for (const presolve::Finding& f : a.findings) {
    os << "  " << presolve::kind_name(f.kind) << " net n" << f.net << " '"
       << c.net_name(f.net) << "': " << f.message << '\n';
  }
  if (print_facts) {
    for (ir::NetId id = 0; id < c.num_nets(); ++id) {
      if (!nontrivial(a, id)) continue;
      os << "  fact net n" << id << " '" << c.net_name(id) << "': range "
         << a.facts.range[id].to_string();
      if (a.facts.parity[id] != presolve::Parity::kUnknown)
        os << " parity " << parity_name(a.facts.parity[id]);
      os << '\n';
    }
  }
  const std::vector<ir::Register>& regs = a.seq.registers();
  for (std::size_t i = 0; i < a.invariants.size(); ++i) {
    os << "  invariant " << regs[i].name << ": "
       << a.invariants[i].to_string() << " of domain "
       << c.domain(regs[i].q).to_string() << '\n';
  }
  return os.str();
}

std::string to_json(const Analysis& a, bool print_facts) {
  const ir::Circuit& c = a.seq.comb();
  trace::JsonWriter w;
  w.begin_object();
  w.key("target").value(a.target);
  w.key("sequential").value(a.sequential);
  w.key("nets").value(static_cast<std::int64_t>(c.num_nets()));
  w.key("findings").begin_array();
  for (const presolve::Finding& f : a.findings) {
    w.begin_object();
    w.key("kind").value(presolve::kind_name(f.kind));
    w.key("net").value(static_cast<std::int64_t>(f.net));
    w.key("name").value(c.net_name(f.net));
    w.key("lo").value(f.range.lo());
    w.key("hi").value(f.range.hi());
    w.key("message").value(f.message);
    w.end_object();
  }
  w.end_array();
  if (print_facts) {
    w.key("facts").begin_array();
    for (ir::NetId id = 0; id < c.num_nets(); ++id) {
      if (!nontrivial(a, id)) continue;
      w.begin_object();
      w.key("net").value(static_cast<std::int64_t>(id));
      w.key("name").value(c.net_name(id));
      w.key("lo").value(a.facts.range[id].lo());
      w.key("hi").value(a.facts.range[id].hi());
      w.key("parity").value(parity_name(a.facts.parity[id]));
      w.end_object();
    }
    w.end_array();
  }
  w.key("invariants").begin_array();
  const std::vector<ir::Register>& regs = a.seq.registers();
  for (std::size_t i = 0; i < a.invariants.size(); ++i) {
    w.begin_object();
    w.key("register").value(regs[i].name);
    w.key("lo").value(a.invariants[i].lo());
    w.key("hi").value(a.invariants[i].hi());
    w.key("domain_hi").value(c.domain(regs[i].q).hi());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take() + "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool print_facts = false;
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--facts") == 0) {
      print_facts = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      targets.emplace_back(argv[i]);
    }
  }
  if (targets.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--facts] <target>...\n"
                 "a target is an ITC'99 model name, 'all', or a .rtl path\n",
                 argv[0]);
    return 2;
  }

  std::vector<std::string> expanded;
  for (const std::string& target : targets) {
    if (target == "all") {
      for (const std::string& name : itc99::available())
        expanded.push_back(name);
    } else {
      expanded.push_back(target);
    }
  }

  for (const std::string& target : expanded) {
    Analysis a;
    a.target = target;
    if (is_registry_model(target)) {
      a.seq = itc99::build(target);
      a.sequential = true;
    } else {
      try {
        a.seq = parser::load_seq_circuit(target);
        a.sequential = true;
      } catch (const std::exception&) {
        try {
          ir::SeqCircuit wrapper(target);
          wrapper.comb() = parser::load_circuit(target);
          a.seq = std::move(wrapper);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "error: %s: %s\n", target.c_str(), e.what());
          return 2;
        }
      }
    }
    a.facts = presolve::analyze(a.seq.comb());
    a.findings = presolve::findings(a.seq.comb(), a.facts);
    if (a.sequential) a.invariants = presolve::reach_invariants(a.seq);
    const std::string text = json ? to_json(a, print_facts)
                                  : to_text(a, print_facts);
    std::fputs(text.c_str(), stdout);
  }
  return 0;
}
