# Empty compiler generated dependencies file for table2_structural.
# This may be replaced when dependencies are built.
