file(REMOVE_RECURSE
  "CMakeFiles/table2_structural.dir/table2_structural.cpp.o"
  "CMakeFiles/table2_structural.dir/table2_structural.cpp.o.d"
  "table2_structural"
  "table2_structural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_structural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
