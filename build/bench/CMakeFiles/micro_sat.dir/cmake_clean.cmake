file(REMOVE_RECURSE
  "CMakeFiles/micro_sat.dir/micro_sat.cpp.o"
  "CMakeFiles/micro_sat.dir/micro_sat.cpp.o.d"
  "micro_sat"
  "micro_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
