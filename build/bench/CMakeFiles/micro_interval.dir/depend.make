# Empty dependencies file for micro_interval.
# This may be replaced when dependencies are built.
