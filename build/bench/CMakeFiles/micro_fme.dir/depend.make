# Empty dependencies file for micro_fme.
# This may be replaced when dependencies are built.
