file(REMOVE_RECURSE
  "CMakeFiles/micro_fme.dir/micro_fme.cpp.o"
  "CMakeFiles/micro_fme.dir/micro_fme.cpp.o.d"
  "micro_fme"
  "micro_fme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
