file(REMOVE_RECURSE
  "CMakeFiles/figures_repro.dir/figures_repro.cpp.o"
  "CMakeFiles/figures_repro.dir/figures_repro.cpp.o.d"
  "figures_repro"
  "figures_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
