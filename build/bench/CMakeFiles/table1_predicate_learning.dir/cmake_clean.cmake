file(REMOVE_RECURSE
  "CMakeFiles/table1_predicate_learning.dir/table1_predicate_learning.cpp.o"
  "CMakeFiles/table1_predicate_learning.dir/table1_predicate_learning.cpp.o.d"
  "table1_predicate_learning"
  "table1_predicate_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_predicate_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
