# Empty dependencies file for table1_predicate_learning.
# This may be replaced when dependencies are built.
