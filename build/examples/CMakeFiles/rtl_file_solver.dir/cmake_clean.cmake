file(REMOVE_RECURSE
  "CMakeFiles/rtl_file_solver.dir/rtl_file_solver.cpp.o"
  "CMakeFiles/rtl_file_solver.dir/rtl_file_solver.cpp.o.d"
  "rtl_file_solver"
  "rtl_file_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_file_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
