# Empty compiler generated dependencies file for rtl_file_solver.
# This may be replaced when dependencies are built.
