# Empty compiler generated dependencies file for solver_race.
# This may be replaced when dependencies are built.
