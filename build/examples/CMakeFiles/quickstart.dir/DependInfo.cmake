
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/rtlsat_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/verilog/CMakeFiles/rtlsat_verilog.dir/DependInfo.cmake"
  "/root/repo/build/src/bitblast/CMakeFiles/rtlsat_bitblast.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/rtlsat_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtlsat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/prop/CMakeFiles/rtlsat_prop.dir/DependInfo.cmake"
  "/root/repo/build/src/fme/CMakeFiles/rtlsat_fme.dir/DependInfo.cmake"
  "/root/repo/build/src/bmc/CMakeFiles/rtlsat_bmc.dir/DependInfo.cmake"
  "/root/repo/build/src/itc99/CMakeFiles/rtlsat_itc99.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/rtlsat_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/rtlsat_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtlsat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
