# Empty dependencies file for bmc_checker.
# This may be replaced when dependencies are built.
