file(REMOVE_RECURSE
  "CMakeFiles/bmc_checker.dir/bmc_checker.cpp.o"
  "CMakeFiles/bmc_checker.dir/bmc_checker.cpp.o.d"
  "bmc_checker"
  "bmc_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmc_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
