# Empty dependencies file for equivalence.
# This may be replaced when dependencies are built.
