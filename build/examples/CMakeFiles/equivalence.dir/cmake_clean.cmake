file(REMOVE_RECURSE
  "CMakeFiles/equivalence.dir/equivalence.cpp.o"
  "CMakeFiles/equivalence.dir/equivalence.cpp.o.d"
  "equivalence"
  "equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
