file(REMOVE_RECURSE
  "CMakeFiles/rtlsat_verilog.dir/verilog.cpp.o"
  "CMakeFiles/rtlsat_verilog.dir/verilog.cpp.o.d"
  "librtlsat_verilog.a"
  "librtlsat_verilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlsat_verilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
