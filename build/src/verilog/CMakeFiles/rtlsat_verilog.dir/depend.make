# Empty dependencies file for rtlsat_verilog.
# This may be replaced when dependencies are built.
