file(REMOVE_RECURSE
  "librtlsat_verilog.a"
)
