file(REMOVE_RECURSE
  "librtlsat_sat.a"
)
