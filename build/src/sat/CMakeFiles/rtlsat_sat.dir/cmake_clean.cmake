file(REMOVE_RECURSE
  "CMakeFiles/rtlsat_sat.dir/solver.cpp.o"
  "CMakeFiles/rtlsat_sat.dir/solver.cpp.o.d"
  "librtlsat_sat.a"
  "librtlsat_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlsat_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
