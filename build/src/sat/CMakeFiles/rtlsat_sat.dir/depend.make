# Empty dependencies file for rtlsat_sat.
# This may be replaced when dependencies are built.
