file(REMOVE_RECURSE
  "librtlsat_fme.a"
)
