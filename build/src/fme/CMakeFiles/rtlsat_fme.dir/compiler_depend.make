# Empty compiler generated dependencies file for rtlsat_fme.
# This may be replaced when dependencies are built.
