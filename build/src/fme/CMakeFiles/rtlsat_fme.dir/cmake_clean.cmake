file(REMOVE_RECURSE
  "CMakeFiles/rtlsat_fme.dir/fme.cpp.o"
  "CMakeFiles/rtlsat_fme.dir/fme.cpp.o.d"
  "CMakeFiles/rtlsat_fme.dir/linear.cpp.o"
  "CMakeFiles/rtlsat_fme.dir/linear.cpp.o.d"
  "librtlsat_fme.a"
  "librtlsat_fme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlsat_fme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
