file(REMOVE_RECURSE
  "CMakeFiles/rtlsat_parser.dir/rtl_format.cpp.o"
  "CMakeFiles/rtlsat_parser.dir/rtl_format.cpp.o.d"
  "librtlsat_parser.a"
  "librtlsat_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlsat_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
