# Empty compiler generated dependencies file for rtlsat_parser.
# This may be replaced when dependencies are built.
