file(REMOVE_RECURSE
  "librtlsat_parser.a"
)
