file(REMOVE_RECURSE
  "CMakeFiles/rtlsat_itc99.dir/b01.cpp.o"
  "CMakeFiles/rtlsat_itc99.dir/b01.cpp.o.d"
  "CMakeFiles/rtlsat_itc99.dir/b02.cpp.o"
  "CMakeFiles/rtlsat_itc99.dir/b02.cpp.o.d"
  "CMakeFiles/rtlsat_itc99.dir/b03.cpp.o"
  "CMakeFiles/rtlsat_itc99.dir/b03.cpp.o.d"
  "CMakeFiles/rtlsat_itc99.dir/b04.cpp.o"
  "CMakeFiles/rtlsat_itc99.dir/b04.cpp.o.d"
  "CMakeFiles/rtlsat_itc99.dir/b06.cpp.o"
  "CMakeFiles/rtlsat_itc99.dir/b06.cpp.o.d"
  "CMakeFiles/rtlsat_itc99.dir/b10.cpp.o"
  "CMakeFiles/rtlsat_itc99.dir/b10.cpp.o.d"
  "CMakeFiles/rtlsat_itc99.dir/b13.cpp.o"
  "CMakeFiles/rtlsat_itc99.dir/b13.cpp.o.d"
  "CMakeFiles/rtlsat_itc99.dir/registry.cpp.o"
  "CMakeFiles/rtlsat_itc99.dir/registry.cpp.o.d"
  "librtlsat_itc99.a"
  "librtlsat_itc99.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlsat_itc99.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
