
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/itc99/b01.cpp" "src/itc99/CMakeFiles/rtlsat_itc99.dir/b01.cpp.o" "gcc" "src/itc99/CMakeFiles/rtlsat_itc99.dir/b01.cpp.o.d"
  "/root/repo/src/itc99/b02.cpp" "src/itc99/CMakeFiles/rtlsat_itc99.dir/b02.cpp.o" "gcc" "src/itc99/CMakeFiles/rtlsat_itc99.dir/b02.cpp.o.d"
  "/root/repo/src/itc99/b03.cpp" "src/itc99/CMakeFiles/rtlsat_itc99.dir/b03.cpp.o" "gcc" "src/itc99/CMakeFiles/rtlsat_itc99.dir/b03.cpp.o.d"
  "/root/repo/src/itc99/b04.cpp" "src/itc99/CMakeFiles/rtlsat_itc99.dir/b04.cpp.o" "gcc" "src/itc99/CMakeFiles/rtlsat_itc99.dir/b04.cpp.o.d"
  "/root/repo/src/itc99/b06.cpp" "src/itc99/CMakeFiles/rtlsat_itc99.dir/b06.cpp.o" "gcc" "src/itc99/CMakeFiles/rtlsat_itc99.dir/b06.cpp.o.d"
  "/root/repo/src/itc99/b10.cpp" "src/itc99/CMakeFiles/rtlsat_itc99.dir/b10.cpp.o" "gcc" "src/itc99/CMakeFiles/rtlsat_itc99.dir/b10.cpp.o.d"
  "/root/repo/src/itc99/b13.cpp" "src/itc99/CMakeFiles/rtlsat_itc99.dir/b13.cpp.o" "gcc" "src/itc99/CMakeFiles/rtlsat_itc99.dir/b13.cpp.o.d"
  "/root/repo/src/itc99/registry.cpp" "src/itc99/CMakeFiles/rtlsat_itc99.dir/registry.cpp.o" "gcc" "src/itc99/CMakeFiles/rtlsat_itc99.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rtlsat_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/rtlsat_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/rtlsat_interval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
