file(REMOVE_RECURSE
  "librtlsat_itc99.a"
)
