# Empty compiler generated dependencies file for rtlsat_itc99.
# This may be replaced when dependencies are built.
