# CMake generated Testfile for 
# Source directory: /root/repo/src/itc99
# Build directory: /root/repo/build/src/itc99
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
