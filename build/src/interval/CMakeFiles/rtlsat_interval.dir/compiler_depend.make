# Empty compiler generated dependencies file for rtlsat_interval.
# This may be replaced when dependencies are built.
