file(REMOVE_RECURSE
  "CMakeFiles/rtlsat_interval.dir/interval.cpp.o"
  "CMakeFiles/rtlsat_interval.dir/interval.cpp.o.d"
  "CMakeFiles/rtlsat_interval.dir/interval_ops.cpp.o"
  "CMakeFiles/rtlsat_interval.dir/interval_ops.cpp.o.d"
  "librtlsat_interval.a"
  "librtlsat_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlsat_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
