file(REMOVE_RECURSE
  "librtlsat_interval.a"
)
