file(REMOVE_RECURSE
  "librtlsat_bmc.a"
)
