
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bmc/unroll.cpp" "src/bmc/CMakeFiles/rtlsat_bmc.dir/unroll.cpp.o" "gcc" "src/bmc/CMakeFiles/rtlsat_bmc.dir/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rtlsat_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/rtlsat_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/rtlsat_interval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
