file(REMOVE_RECURSE
  "CMakeFiles/rtlsat_bmc.dir/unroll.cpp.o"
  "CMakeFiles/rtlsat_bmc.dir/unroll.cpp.o.d"
  "librtlsat_bmc.a"
  "librtlsat_bmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlsat_bmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
