# Empty compiler generated dependencies file for rtlsat_bmc.
# This may be replaced when dependencies are built.
