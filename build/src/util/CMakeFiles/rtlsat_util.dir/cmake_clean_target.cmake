file(REMOVE_RECURSE
  "librtlsat_util.a"
)
