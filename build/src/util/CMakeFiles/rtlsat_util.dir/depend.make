# Empty dependencies file for rtlsat_util.
# This may be replaced when dependencies are built.
