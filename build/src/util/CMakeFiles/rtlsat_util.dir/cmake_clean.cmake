file(REMOVE_RECURSE
  "CMakeFiles/rtlsat_util.dir/log.cpp.o"
  "CMakeFiles/rtlsat_util.dir/log.cpp.o.d"
  "CMakeFiles/rtlsat_util.dir/stats.cpp.o"
  "CMakeFiles/rtlsat_util.dir/stats.cpp.o.d"
  "CMakeFiles/rtlsat_util.dir/strings.cpp.o"
  "CMakeFiles/rtlsat_util.dir/strings.cpp.o.d"
  "librtlsat_util.a"
  "librtlsat_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlsat_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
