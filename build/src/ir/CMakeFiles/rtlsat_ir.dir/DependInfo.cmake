
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/analysis.cpp" "src/ir/CMakeFiles/rtlsat_ir.dir/analysis.cpp.o" "gcc" "src/ir/CMakeFiles/rtlsat_ir.dir/analysis.cpp.o.d"
  "/root/repo/src/ir/circuit.cpp" "src/ir/CMakeFiles/rtlsat_ir.dir/circuit.cpp.o" "gcc" "src/ir/CMakeFiles/rtlsat_ir.dir/circuit.cpp.o.d"
  "/root/repo/src/ir/transform.cpp" "src/ir/CMakeFiles/rtlsat_ir.dir/transform.cpp.o" "gcc" "src/ir/CMakeFiles/rtlsat_ir.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rtlsat_util.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/rtlsat_interval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
