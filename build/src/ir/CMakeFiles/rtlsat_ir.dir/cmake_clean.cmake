file(REMOVE_RECURSE
  "CMakeFiles/rtlsat_ir.dir/analysis.cpp.o"
  "CMakeFiles/rtlsat_ir.dir/analysis.cpp.o.d"
  "CMakeFiles/rtlsat_ir.dir/circuit.cpp.o"
  "CMakeFiles/rtlsat_ir.dir/circuit.cpp.o.d"
  "CMakeFiles/rtlsat_ir.dir/transform.cpp.o"
  "CMakeFiles/rtlsat_ir.dir/transform.cpp.o.d"
  "librtlsat_ir.a"
  "librtlsat_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlsat_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
