file(REMOVE_RECURSE
  "librtlsat_ir.a"
)
