# Empty compiler generated dependencies file for rtlsat_ir.
# This may be replaced when dependencies are built.
