# Empty dependencies file for rtlsat_bitblast.
# This may be replaced when dependencies are built.
