file(REMOVE_RECURSE
  "librtlsat_bitblast.a"
)
