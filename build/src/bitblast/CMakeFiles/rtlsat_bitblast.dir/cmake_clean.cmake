file(REMOVE_RECURSE
  "CMakeFiles/rtlsat_bitblast.dir/bitblast.cpp.o"
  "CMakeFiles/rtlsat_bitblast.dir/bitblast.cpp.o.d"
  "librtlsat_bitblast.a"
  "librtlsat_bitblast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlsat_bitblast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
