# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("interval")
subdirs("ir")
subdirs("parser")
subdirs("verilog")
subdirs("prop")
subdirs("fme")
subdirs("sat")
subdirs("bitblast")
subdirs("core")
subdirs("bmc")
subdirs("itc99")
