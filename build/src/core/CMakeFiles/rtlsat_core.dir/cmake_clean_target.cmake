file(REMOVE_RECURSE
  "librtlsat_core.a"
)
