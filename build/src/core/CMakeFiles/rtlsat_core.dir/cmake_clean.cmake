file(REMOVE_RECURSE
  "CMakeFiles/rtlsat_core.dir/analyze.cpp.o"
  "CMakeFiles/rtlsat_core.dir/analyze.cpp.o.d"
  "CMakeFiles/rtlsat_core.dir/arith_check.cpp.o"
  "CMakeFiles/rtlsat_core.dir/arith_check.cpp.o.d"
  "CMakeFiles/rtlsat_core.dir/clause_db.cpp.o"
  "CMakeFiles/rtlsat_core.dir/clause_db.cpp.o.d"
  "CMakeFiles/rtlsat_core.dir/hdpll.cpp.o"
  "CMakeFiles/rtlsat_core.dir/hdpll.cpp.o.d"
  "CMakeFiles/rtlsat_core.dir/hybrid_clause.cpp.o"
  "CMakeFiles/rtlsat_core.dir/hybrid_clause.cpp.o.d"
  "CMakeFiles/rtlsat_core.dir/ig_dump.cpp.o"
  "CMakeFiles/rtlsat_core.dir/ig_dump.cpp.o.d"
  "CMakeFiles/rtlsat_core.dir/justify.cpp.o"
  "CMakeFiles/rtlsat_core.dir/justify.cpp.o.d"
  "CMakeFiles/rtlsat_core.dir/predicate_learning.cpp.o"
  "CMakeFiles/rtlsat_core.dir/predicate_learning.cpp.o.d"
  "librtlsat_core.a"
  "librtlsat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlsat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
