
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyze.cpp" "src/core/CMakeFiles/rtlsat_core.dir/analyze.cpp.o" "gcc" "src/core/CMakeFiles/rtlsat_core.dir/analyze.cpp.o.d"
  "/root/repo/src/core/arith_check.cpp" "src/core/CMakeFiles/rtlsat_core.dir/arith_check.cpp.o" "gcc" "src/core/CMakeFiles/rtlsat_core.dir/arith_check.cpp.o.d"
  "/root/repo/src/core/clause_db.cpp" "src/core/CMakeFiles/rtlsat_core.dir/clause_db.cpp.o" "gcc" "src/core/CMakeFiles/rtlsat_core.dir/clause_db.cpp.o.d"
  "/root/repo/src/core/hdpll.cpp" "src/core/CMakeFiles/rtlsat_core.dir/hdpll.cpp.o" "gcc" "src/core/CMakeFiles/rtlsat_core.dir/hdpll.cpp.o.d"
  "/root/repo/src/core/hybrid_clause.cpp" "src/core/CMakeFiles/rtlsat_core.dir/hybrid_clause.cpp.o" "gcc" "src/core/CMakeFiles/rtlsat_core.dir/hybrid_clause.cpp.o.d"
  "/root/repo/src/core/ig_dump.cpp" "src/core/CMakeFiles/rtlsat_core.dir/ig_dump.cpp.o" "gcc" "src/core/CMakeFiles/rtlsat_core.dir/ig_dump.cpp.o.d"
  "/root/repo/src/core/justify.cpp" "src/core/CMakeFiles/rtlsat_core.dir/justify.cpp.o" "gcc" "src/core/CMakeFiles/rtlsat_core.dir/justify.cpp.o.d"
  "/root/repo/src/core/predicate_learning.cpp" "src/core/CMakeFiles/rtlsat_core.dir/predicate_learning.cpp.o" "gcc" "src/core/CMakeFiles/rtlsat_core.dir/predicate_learning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rtlsat_util.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/rtlsat_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/rtlsat_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/prop/CMakeFiles/rtlsat_prop.dir/DependInfo.cmake"
  "/root/repo/build/src/fme/CMakeFiles/rtlsat_fme.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
