# Empty dependencies file for rtlsat_core.
# This may be replaced when dependencies are built.
