file(REMOVE_RECURSE
  "librtlsat_prop.a"
)
