# Empty compiler generated dependencies file for rtlsat_prop.
# This may be replaced when dependencies are built.
