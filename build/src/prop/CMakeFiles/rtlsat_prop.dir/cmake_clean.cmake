file(REMOVE_RECURSE
  "CMakeFiles/rtlsat_prop.dir/engine.cpp.o"
  "CMakeFiles/rtlsat_prop.dir/engine.cpp.o.d"
  "CMakeFiles/rtlsat_prop.dir/rules.cpp.o"
  "CMakeFiles/rtlsat_prop.dir/rules.cpp.o.d"
  "librtlsat_prop.a"
  "librtlsat_prop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlsat_prop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
