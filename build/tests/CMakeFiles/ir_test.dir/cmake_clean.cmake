file(REMOVE_RECURSE
  "CMakeFiles/ir_test.dir/ir/analysis_test.cpp.o"
  "CMakeFiles/ir_test.dir/ir/analysis_test.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/circuit_test.cpp.o"
  "CMakeFiles/ir_test.dir/ir/circuit_test.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/seq_test.cpp.o"
  "CMakeFiles/ir_test.dir/ir/seq_test.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/transform_test.cpp.o"
  "CMakeFiles/ir_test.dir/ir/transform_test.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/width_semantics_test.cpp.o"
  "CMakeFiles/ir_test.dir/ir/width_semantics_test.cpp.o.d"
  "ir_test"
  "ir_test.pdb"
  "ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
