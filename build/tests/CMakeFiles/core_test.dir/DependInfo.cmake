
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/analyze_test.cpp" "tests/CMakeFiles/core_test.dir/core/analyze_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/analyze_test.cpp.o.d"
  "/root/repo/tests/core/arith_check_test.cpp" "tests/CMakeFiles/core_test.dir/core/arith_check_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/arith_check_test.cpp.o.d"
  "/root/repo/tests/core/clause_db_test.cpp" "tests/CMakeFiles/core_test.dir/core/clause_db_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/clause_db_test.cpp.o.d"
  "/root/repo/tests/core/deduce_test.cpp" "tests/CMakeFiles/core_test.dir/core/deduce_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/deduce_test.cpp.o.d"
  "/root/repo/tests/core/figures_test.cpp" "tests/CMakeFiles/core_test.dir/core/figures_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/figures_test.cpp.o.d"
  "/root/repo/tests/core/hdpll_test.cpp" "tests/CMakeFiles/core_test.dir/core/hdpll_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/hdpll_test.cpp.o.d"
  "/root/repo/tests/core/hybrid_clause_test.cpp" "tests/CMakeFiles/core_test.dir/core/hybrid_clause_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/hybrid_clause_test.cpp.o.d"
  "/root/repo/tests/core/ig_dump_test.cpp" "tests/CMakeFiles/core_test.dir/core/ig_dump_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ig_dump_test.cpp.o.d"
  "/root/repo/tests/core/justify_test.cpp" "tests/CMakeFiles/core_test.dir/core/justify_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/justify_test.cpp.o.d"
  "/root/repo/tests/core/justify_weighted_test.cpp" "tests/CMakeFiles/core_test.dir/core/justify_weighted_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/justify_weighted_test.cpp.o.d"
  "/root/repo/tests/core/learned_clause_validity_test.cpp" "tests/CMakeFiles/core_test.dir/core/learned_clause_validity_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/learned_clause_validity_test.cpp.o.d"
  "/root/repo/tests/core/predicate_learning_test.cpp" "tests/CMakeFiles/core_test.dir/core/predicate_learning_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/predicate_learning_test.cpp.o.d"
  "/root/repo/tests/core/stress_test.cpp" "tests/CMakeFiles/core_test.dir/core/stress_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/rtlsat_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/verilog/CMakeFiles/rtlsat_verilog.dir/DependInfo.cmake"
  "/root/repo/build/src/bitblast/CMakeFiles/rtlsat_bitblast.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/rtlsat_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtlsat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/prop/CMakeFiles/rtlsat_prop.dir/DependInfo.cmake"
  "/root/repo/build/src/fme/CMakeFiles/rtlsat_fme.dir/DependInfo.cmake"
  "/root/repo/build/src/bmc/CMakeFiles/rtlsat_bmc.dir/DependInfo.cmake"
  "/root/repo/build/src/itc99/CMakeFiles/rtlsat_itc99.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/rtlsat_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/rtlsat_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtlsat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
