file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/analyze_test.cpp.o"
  "CMakeFiles/core_test.dir/core/analyze_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/arith_check_test.cpp.o"
  "CMakeFiles/core_test.dir/core/arith_check_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/clause_db_test.cpp.o"
  "CMakeFiles/core_test.dir/core/clause_db_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/deduce_test.cpp.o"
  "CMakeFiles/core_test.dir/core/deduce_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/figures_test.cpp.o"
  "CMakeFiles/core_test.dir/core/figures_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/hdpll_test.cpp.o"
  "CMakeFiles/core_test.dir/core/hdpll_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/hybrid_clause_test.cpp.o"
  "CMakeFiles/core_test.dir/core/hybrid_clause_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/ig_dump_test.cpp.o"
  "CMakeFiles/core_test.dir/core/ig_dump_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/justify_test.cpp.o"
  "CMakeFiles/core_test.dir/core/justify_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/justify_weighted_test.cpp.o"
  "CMakeFiles/core_test.dir/core/justify_weighted_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/learned_clause_validity_test.cpp.o"
  "CMakeFiles/core_test.dir/core/learned_clause_validity_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/predicate_learning_test.cpp.o"
  "CMakeFiles/core_test.dir/core/predicate_learning_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/stress_test.cpp.o"
  "CMakeFiles/core_test.dir/core/stress_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
