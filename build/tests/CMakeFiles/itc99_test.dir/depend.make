# Empty dependencies file for itc99_test.
# This may be replaced when dependencies are built.
