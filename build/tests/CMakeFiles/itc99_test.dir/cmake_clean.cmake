file(REMOVE_RECURSE
  "CMakeFiles/itc99_test.dir/itc99/itc99_test.cpp.o"
  "CMakeFiles/itc99_test.dir/itc99/itc99_test.cpp.o.d"
  "itc99_test"
  "itc99_test.pdb"
  "itc99_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itc99_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
