# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/interval_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/prop_test[1]_include.cmake")
include("/root/repo/build/tests/fme_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/bitblast_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/bmc_test[1]_include.cmake")
include("/root/repo/build/tests/itc99_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/verilog_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
